//! Pipelined vs barrier execution of a two-stage query plan.
//!
//! The paper's architecture "pipelines data from mappers to reducers and
//! between jobs" (§IV): when a query compiles to several MapReduce jobs,
//! a downstream job can start consuming upstream finals the moment they
//! emerge instead of waiting for the whole stage to materialize. This
//! experiment runs the exact top-k plan (stage 1: clicks summed per URL;
//! stage 2: the k most-clicked URLs) in both modes over identical input
//! and reports, per trial:
//!
//! * **wall** — total plan time;
//! * **first answer** — when the sink stage emitted its first final
//!   (the plan's time-to-first-answer);
//! * **sink start** — when the sink stage's first map task began
//!   consuming upstream finals, against the same plan clock as the
//!   upstream stage's completion. Pipelining moves this *inside* the
//!   upstream stage's lifetime (the first edge split arrives while
//!   upstream reducers are still draining), where the barrier run waits
//!   for full materialization and a re-split — so `sink start < stage 0
//!   done` is the pipeline's structural head start, a within-run
//!   invariant independent of how many cores the host has (and of
//!   run-to-run noise in how long stage 0 itself takes);
//! * an exact comparison of the sorted final outputs, which must be
//!   byte-identical between modes — pipelining must never change
//!   answers.
//!
//! The head start converts into a strictly earlier first answer when
//! workers are free to run the overlapped stages in parallel; on a
//! single hardware thread the two modes' first answers converge to
//! parity (total compute is conserved), which the assertions below
//! encode: every pipelined run must start its sink before stage 0
//! completes (and every barrier run after), and the first answer must
//! never regress past parity noise.
//!
//! Flags: `--records N` (default 600k clicks), `--urls U` (distinct
//! URLs, 200k — more URLs mean more stage-1 groups, a longer final
//! drain, and more downstream work to overlap), `--reducers R` (stage-1
//! reducers, 4), `--k K` (10), `--trials T` (5).

use std::time::Duration;

use onepass_bench::{arg_usize, pct, save};
use onepass_core::config::fmt_secs;
use onepass_core::table::Table;
use onepass_runtime::map_task::Split;
use onepass_runtime::{Engine, Plan, PlanConfig, PlanMode, PlanReport, TaskKind};
use onepass_workloads::{make_splits, top_k, ClickGen, ClickGenConfig};

fn run_once(plan: &Plan, splits: &[Split], mode: PlanMode) -> PlanReport {
    let report = Engine::new()
        .run_plan(plan, splits.to_vec(), &PlanConfig::new(mode))
        .expect("plan failed");
    onepass_bench::append_report_jsonl(&report.to_jsonl());
    report
}

/// When the sink stage's first map task started, relative to plan start.
fn sink_start(report: &PlanReport) -> Duration {
    report
        .stages
        .iter()
        .filter(|s| s.is_sink)
        .flat_map(|s| s.report.task_spans.iter())
        .filter(|t| t.kind == TaskKind::Map)
        .map(|t| t.start)
        .min()
        .expect("sink stage ran map tasks")
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let records = arg_usize("records", 600_000);
    let urls = arg_usize("urls", 200_000);
    let reducers = arg_usize("reducers", 4);
    let k = arg_usize("k", 10);
    let trials = arg_usize("trials", 5);

    println!(
        "== pipelined vs barrier: exact top-{k} plan, {records} clicks over {urls} urls, \
         {reducers} stage-1 reducers, {trials} trials ==\n"
    );

    let mut gen = ClickGen::new(ClickGenConfig {
        urls,
        ..Default::default()
    });
    let splits = make_splits(gen.text_records(records), records / 16 + 1);
    let plan = top_k::plan(k, reducers).expect("valid plan");

    let mut table = Table::new(
        "Two-stage top-k, per trial",
        &[
            "trial",
            "mode",
            "wall",
            "first answer",
            "sink start",
            "stage 0 done",
            "output",
        ],
    );
    let mut csv =
        String::from("trial,mode,wall_s,first_final_s,sink_start_s,stage0_wall_s,outputs_match\n");
    let mut walls = [Vec::new(), Vec::new()];
    let mut firsts = [Vec::new(), Vec::new()];
    let mut starts = [Vec::new(), Vec::new()];
    let mut all_match = true;
    let mut overlap_ok = true;

    for trial in 0..trials {
        let mut outputs = Vec::new();
        for (m, mode) in [PlanMode::Barrier, PlanMode::Pipelined]
            .into_iter()
            .enumerate()
        {
            let report = run_once(&plan, &splits, mode);
            let first = report.first_final_at.expect("sink emitted finals");
            let start = sink_start(&report);
            let stage0_done = report.stages[0].report.wall;
            // The structural invariant, per run on one clock: pipelined
            // sinks begin inside the upstream stage's lifetime, barrier
            // sinks strictly after it.
            overlap_ok &= match mode {
                PlanMode::Pipelined => start < stage0_done,
                PlanMode::Barrier => start >= stage0_done,
            };
            outputs.push(report.sorted_final_outputs());
            let matches = outputs.windows(2).all(|w| w[0] == w[1]);
            all_match &= matches;
            walls[m].push(report.wall);
            firsts[m].push(first);
            starts[m].push(stage0_done.saturating_sub(start));
            table.row(&[
                trial.to_string(),
                report.mode.to_string(),
                fmt_secs(report.wall.as_secs_f64()),
                fmt_secs(first.as_secs_f64()),
                fmt_secs(start.as_secs_f64()),
                fmt_secs(report.stages[0].report.wall.as_secs_f64()),
                if matches { "identical" } else { "DIVERGED" }.to_string(),
            ]);
            csv.push_str(&format!(
                "{trial},{},{:.6},{:.6},{:.6},{:.6},{}\n",
                report.mode,
                report.wall.as_secs_f64(),
                first.as_secs_f64(),
                start.as_secs_f64(),
                report.stages[0].report.wall.as_secs_f64(),
                matches,
            ));
        }
    }
    println!("{}", table.to_text());

    let (barrier_first, pipelined_first) = (median(firsts[0].clone()), median(firsts[1].clone()));
    let head_start = median(starts[1].clone());
    let ttfa_gain = 1.0 - pipelined_first.as_secs_f64() / barrier_first.as_secs_f64();
    println!(
        "Median head start:   pipelined sink began {} before its upstream stage finished; \
         the barrier sink never did.",
        fmt_secs(head_start.as_secs_f64()),
    );
    println!(
        "Median first answer: barrier {} -> pipelined {} ({} earlier).",
        fmt_secs(barrier_first.as_secs_f64()),
        fmt_secs(pipelined_first.as_secs_f64()),
        pct(ttfa_gain),
    );
    println!(
        "Median wall:         barrier {} -> pipelined {}.",
        fmt_secs(median(walls[0].clone()).as_secs_f64()),
        fmt_secs(median(walls[1].clone()).as_secs_f64()),
    );
    println!(
        "Outputs: {}.",
        if all_match {
            "byte-identical across every trial and mode"
        } else {
            "DIVERGENCE DETECTED — pipelining changed answers"
        }
    );
    save("exp_plan.csv", &csv);

    assert!(all_match, "pipelined plan changed job output");
    assert!(
        overlap_ok,
        "stage overlap invariant violated: every pipelined sink must start before \
         its upstream stage completes, every barrier sink after"
    );
    // Parity guard, not a strict win: with a single hardware thread the
    // overlapped work is serialized and first answers converge (see the
    // module docs); what must never happen is pipelining *costing* more
    // than noise. Plenty of margin for the win case on parallel hosts.
    assert!(
        pipelined_first.as_secs_f64() <= barrier_first.as_secs_f64() * 1.15,
        "pipelined time-to-first-answer regressed past parity \
         (barrier {barrier_first:?} vs pipelined {pipelined_first:?})"
    );
}
