//! End-to-end engine throughput: the same page-frequency job under the
//! three system presets — the whole-pipeline version of the §V
//! comparison (map parse + grouping + shuffle + reduce) — plus the
//! iterative PageRank loop through the dataset cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use onepass_runtime::{CacheConfig, CollectOutput, DatasetCache, Engine, JobSpec};
use onepass_workloads::pagerank::{self, GraphConfig, PageRankConfig};
use onepass_workloads::{make_splits, page_frequency, ClickGen, ClickGenConfig};

fn data(n: usize) -> Vec<Vec<u8>> {
    let mut gen = ClickGen::new(ClickGenConfig {
        users: 5_000,
        urls: 8_000,
        ..Default::default()
    });
    gen.text_records(n)
}

fn pipeline(c: &mut Criterion) {
    let n = 100_000;
    let records = data(n);
    let mut group = c.benchmark_group("pipeline-pagefreq");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);

    let presets: Vec<(&str, JobSpec)> = vec![
        (
            "hadoop",
            page_frequency::job()
                .reducers(2)
                .collect_mode(CollectOutput::Discard)
                .preset_hadoop()
                .build()
                .unwrap(),
        ),
        (
            "hop",
            page_frequency::job()
                .reducers(2)
                .collect_mode(CollectOutput::Discard)
                .preset_hop()
                .build()
                .unwrap(),
        ),
        (
            "onepass",
            page_frequency::job()
                .reducers(2)
                .collect_mode(CollectOutput::Discard)
                .preset_onepass()
                .build()
                .unwrap(),
        ),
    ];

    for (name, job) in presets {
        group.bench_with_input(BenchmarkId::from_parameter(name), &job, |b, job| {
            b.iter(|| {
                let splits = make_splits(records.clone(), 10_000);
                let report = Engine::new().run(job, splits).unwrap();
                report.groups_out
            })
        });
    }
    group.finish();
}

fn pipeline_pagerank(c: &mut Criterion) {
    let nodes = 20_000;
    let records = pagerank::graph_records(GraphConfig {
        nodes,
        max_out: 2,
        seed: 42,
    });
    let mut cfg = PageRankConfig::new(nodes);
    cfg.rounds = 4;
    cfg.eps = None;
    cfg.reducers = 2;

    let mut group = c.benchmark_group("pipeline-pagerank");
    group.throughput(Throughput::Elements((nodes * cfg.rounds) as u64));
    group.sample_size(10);

    group.bench_function(BenchmarkId::from_parameter("cached"), |b| {
        b.iter(|| {
            let engine = Engine::new();
            let cache = DatasetCache::new(CacheConfig::default());
            pagerank::run_cached(&engine, &cache, &records, &cfg).unwrap()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("uncached"), |b| {
        b.iter(|| {
            let engine = Engine::new();
            pagerank::run_uncached(&engine, &records, &cfg).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, pipeline, pipeline_pagerank);
criterion_main!(benches);
