//! End-to-end engine throughput: the same page-frequency job under the
//! three system presets — the whole-pipeline version of the §V
//! comparison (map parse + grouping + shuffle + reduce).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use onepass_runtime::{CollectOutput, Engine, JobSpec};
use onepass_workloads::{make_splits, page_frequency, ClickGen, ClickGenConfig};

fn data(n: usize) -> Vec<Vec<u8>> {
    let mut gen = ClickGen::new(ClickGenConfig {
        users: 5_000,
        urls: 8_000,
        ..Default::default()
    });
    gen.text_records(n)
}

fn pipeline(c: &mut Criterion) {
    let n = 100_000;
    let records = data(n);
    let mut group = c.benchmark_group("pipeline-pagefreq");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);

    let presets: Vec<(&str, JobSpec)> = vec![
        (
            "hadoop",
            page_frequency::job()
                .reducers(2)
                .collect_mode(CollectOutput::Discard)
                .preset_hadoop()
                .build()
                .unwrap(),
        ),
        (
            "hop",
            page_frequency::job()
                .reducers(2)
                .collect_mode(CollectOutput::Discard)
                .preset_hop()
                .build()
                .unwrap(),
        ),
        (
            "onepass",
            page_frequency::job()
                .reducers(2)
                .collect_mode(CollectOutput::Discard)
                .preset_onepass()
                .build()
                .unwrap(),
        ),
    ];

    for (name, job) in presets {
        group.bench_with_input(BenchmarkId::from_parameter(name), &job, |b, job| {
            b.iter(|| {
                let splits = make_splits(records.clone(), 10_000);
                let report = Engine::new().run(job, splits).unwrap();
                report.groups_out
            })
        });
    }
    group.finish();
}

criterion_group!(benches, pipeline);
criterion_main!(benches);
