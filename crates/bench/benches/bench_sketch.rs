//! Ablation: the frequent-items detector choice (Misra-Gries default vs
//! Space-Saving vs Lossy Counting) — update throughput on a skewed
//! stream. This is the per-record overhead the frequent-hash operator
//! pays on its hot path, and the reason Misra-Gries is the default.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use onepass_sketch::{FrequentItems, LossyCounting, MisraGries, SpaceSaving};

fn keys(n: usize) -> Vec<Vec<u8>> {
    (0..n as u32)
        .map(|i| {
            let k = (i.wrapping_mul(2_654_435_761) % 10_000) as u64;
            let k = k * k / 10_000; // skew
            format!("key{k}").into_bytes()
        })
        .collect()
}

fn sketch_offers(c: &mut Criterion) {
    let n = 200_000;
    let stream = keys(n);
    let mut group = c.benchmark_group("sketch-offer");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);

    for capacity in [256usize, 1024] {
        group.bench_with_input(
            BenchmarkId::new("misra-gries", capacity),
            &capacity,
            |b, &k| {
                b.iter(|| {
                    let mut s = MisraGries::new(k);
                    for key in &stream {
                        s.offer(key);
                    }
                    s.items().len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("space-saving", capacity),
            &capacity,
            |b, &k| {
                b.iter(|| {
                    let mut s = SpaceSaving::new(k);
                    for key in &stream {
                        s.offer(key);
                    }
                    s.items().len()
                })
            },
        );
    }
    group.bench_function("lossy-counting eps=1e-3", |b| {
        b.iter(|| {
            let mut s = LossyCounting::new(0.001);
            for key in &stream {
                s.offer(key);
            }
            s.items().len()
        })
    });
    group.finish();
}

criterion_group!(benches, sketch_offers);
criterion_main!(benches);
