//! Zero-copy shuffle path ablation: building per-partition shuffle
//! segments the old way (scatter into boxed `Vec<(Vec<u8>, Vec<u8>)>`
//! per partition — two heap allocations per record) vs the arena way
//! (`KvBuf::push` + `freeze_into_segments` — one shared arena, O(1)
//! allocations per batch).
//!
//! Besides the Criterion timing comparison, a counting global allocator
//! prints the exact allocations-per-record figure for both paths; these
//! numbers back the README's Performance section.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, Criterion, Throughput};
use onepass_core::bytes_kv::KvBuf;
use onepass_core::SegmentBuf;

/// System allocator wrapper counting every allocation.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const N: usize = 100_000;
const PARTITIONS: usize = 8;

fn key(i: usize) -> [u8; 12] {
    let mut k = [0u8; 12];
    k[..4].copy_from_slice(&((i as u32).wrapping_mul(2_654_435_761) % 50_000).to_le_bytes());
    k[4..8].copy_from_slice(b"pad0");
    k[8..].copy_from_slice(&(i as u32).to_le_bytes());
    k
}

/// Old path: scatter records into one boxed vec per partition.
fn boxed_segments() -> usize {
    let mut parts: Vec<Vec<(Vec<u8>, Vec<u8>)>> = (0..PARTITIONS).map(|_| Vec::new()).collect();
    for i in 0..N {
        parts[i % PARTITIONS].push((key(i).to_vec(), b"value!!!".to_vec()));
    }
    parts.iter().map(|p| p.len()).sum()
}

/// New path: one arena, per-partition entry tables sharing it.
fn arena_segments() -> usize {
    let mut buf = KvBuf::new();
    for i in 0..N {
        buf.push((i % PARTITIONS) as u32, &key(i), b"value!!!");
    }
    let segs: Vec<SegmentBuf> = buf.freeze_into_segments(PARTITIONS);
    segs.iter().map(|s| s.len()).sum()
}

fn measure_allocs(f: impl FnOnce() -> usize) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    let n = f();
    assert_eq!(n, N);
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Print the allocations-per-record comparison (the README numbers).
fn print_alloc_comparison() {
    let boxed = measure_allocs(boxed_segments);
    let arena = measure_allocs(arena_segments);
    println!("--- allocations for {N} records across {PARTITIONS} partitions ---");
    println!(
        "boxed Vec<(Vec,Vec)> path: {boxed} allocations ({:.3}/record)",
        boxed as f64 / N as f64
    );
    println!(
        "arena SegmentBuf path:     {arena} allocations ({:.5}/record)",
        arena as f64 / N as f64
    );
}

fn segment_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("shuffle-segments");
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(10);
    group.bench_function("boxed: scatter into Vec<(Vec,Vec)>", |b| {
        b.iter(boxed_segments)
    });
    group.bench_function("arena: KvBuf + freeze_into_segments", |b| {
        b.iter(arena_segments)
    });
    group.finish();
}

criterion_group!(benches, segment_path);

fn main() {
    print_alloc_comparison();
    benches();
    // Custom main (not criterion_main!): honour --save-baseline for the
    // CI perf gate explicitly.
    criterion::finalize();
}
