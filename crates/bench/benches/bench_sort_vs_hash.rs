//! The paper's central CPU claim, as a microbenchmark: grouping via
//! sort-merge vs the three hash operators, in-memory and under memory
//! pressure. Also the map-side choice in isolation: the `(partition,
//! key)` block sort vs the partition-clustering scan (§V map option 1).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use onepass_core::bytes_kv::KvBuf;
use onepass_core::io::SharedMemStore;
use onepass_core::memory::MemoryBudget;
use onepass_groupby::{
    CountAgg, FreqHashGrouper, GroupBy, HybridHashGrouper, IncHashGrouper, SortMergeGrouper,
    VecSink,
};

fn records(n: usize, distinct: u32) -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..n as u32)
        .map(|i| {
            // Zipf-ish skew via squaring.
            let k = (i.wrapping_mul(2_654_435_761) % distinct) as u64;
            let k = (k * k / distinct as u64) as u32;
            (
                format!("key{k:06}").into_bytes(),
                (i as u64).to_le_bytes().to_vec(),
            )
        })
        .collect()
}

fn run_grouper(mut g: Box<dyn GroupBy>, recs: &[(Vec<u8>, Vec<u8>)]) -> u64 {
    let mut sink = VecSink::default();
    // Shuffle-sized batches, like the engine delivers.
    for chunk in recs.chunks(4096) {
        let batch = onepass_core::bytes_kv::SegmentBuf::from_pairs(
            chunk.iter().map(|(k, v)| (&k[..], &v[..])),
        );
        g.push_batch(&batch, &mut sink).unwrap();
    }
    let stats = g.finish(&mut sink).unwrap();
    stats.groups_out
}

fn groupby_ops(c: &mut Criterion) {
    let n = 100_000;
    let recs = records(n, 5_000);
    let mut group = c.benchmark_group("groupby");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);

    for (name, budget) in [
        ("in-memory", usize::MAX / 4),
        ("mem-constrained", 64 * 1024),
    ] {
        group.bench_with_input(BenchmarkId::new("sort-merge", name), &budget, |b, &bud| {
            b.iter(|| {
                run_grouper(
                    Box::new(
                        SortMergeGrouper::new(
                            Arc::new(SharedMemStore::new()),
                            MemoryBudget::new(bud),
                            10,
                            Arc::new(CountAgg),
                        )
                        .unwrap(),
                    ),
                    &recs,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("hybrid-hash", name), &budget, |b, &bud| {
            b.iter(|| {
                run_grouper(
                    Box::new(
                        HybridHashGrouper::new(
                            Arc::new(SharedMemStore::new()),
                            MemoryBudget::new(bud),
                            8,
                            Arc::new(CountAgg),
                        )
                        .unwrap(),
                    ),
                    &recs,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("inc-hash", name), &budget, |b, &bud| {
            b.iter(|| {
                run_grouper(
                    Box::new(IncHashGrouper::new(
                        Arc::new(SharedMemStore::new()),
                        MemoryBudget::new(bud),
                        Arc::new(CountAgg),
                    )),
                    &recs,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("freq-hash", name), &budget, |b, &bud| {
            b.iter(|| {
                run_grouper(
                    Box::new(FreqHashGrouper::new(
                        Arc::new(SharedMemStore::new()),
                        MemoryBudget::new(bud),
                        Arc::new(CountAgg),
                    )),
                    &recs,
                )
            })
        });
    }
    group.finish();
}

fn map_side(c: &mut Criterion) {
    let n = 200_000u32;
    let mut group = c.benchmark_group("map-side");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);

    let fill = |partitions: u32| {
        let mut buf = KvBuf::with_capacity(n as usize * 16, n as usize);
        for i in 0..n {
            let key = (i.wrapping_mul(2_654_435_761) % 40_000).to_le_bytes();
            buf.push(i % partitions, &key, b"v");
        }
        buf
    };

    group.bench_function("sort (partition,key)", |b| {
        b.iter_batched(
            || fill(30),
            |mut buf| buf.sort_by_partition_key(),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("hash partition-only scan", |b| {
        b.iter_batched(
            || fill(30),
            |mut buf| buf.group_by_partition(30),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, groupby_ops, map_side);
criterion_main!(benches);
