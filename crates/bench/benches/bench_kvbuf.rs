//! Ablation: the byte-array record layout (§V's "byte array based memory
//! management library") vs the naive per-record allocation layout.
//! Measures fill + sort — the map task's hot loop.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use onepass_core::bytes_kv::KvBuf;

const N: usize = 200_000;

fn key(i: usize) -> [u8; 12] {
    let mut k = [0u8; 12];
    k[..4].copy_from_slice(&((i as u32).wrapping_mul(2_654_435_761) % 50_000).to_le_bytes());
    k[4..8].copy_from_slice(b"pad0");
    k[8..].copy_from_slice(&(i as u32).to_le_bytes());
    k
}

fn kvbuf_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("record-layout");
    group.throughput(Throughput::Elements(N as u64));
    group.sample_size(10);

    group.bench_function("KvBuf arena: fill+sort", |b| {
        b.iter(|| {
            let mut buf = KvBuf::with_capacity(N * 20, N);
            for i in 0..N {
                buf.push((i % 30) as u32, &key(i), b"value!!!");
            }
            buf.sort_by_partition_key();
            buf.len()
        })
    });

    group.bench_function("Vec<(Vec,Vec)>: fill+sort", |b| {
        b.iter(|| {
            let mut v: Vec<(u32, Vec<u8>, Vec<u8>)> = Vec::with_capacity(N);
            for i in 0..N {
                v.push(((i % 30) as u32, key(i).to_vec(), b"value!!!".to_vec()));
            }
            v.sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            v.len()
        })
    });

    group.finish();
}

criterion_group!(benches, kvbuf_layout);
criterion_main!(benches);
