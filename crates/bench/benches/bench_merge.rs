//! Ablation: multi-pass merge cost vs the merge factor F (Hadoop's
//! `io.sort.factor`). Lower F ⇒ more passes ⇒ more I/O amplification and
//! more CPU — quantifying why the multi-pass merge dominates the paper's
//! reduce side.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use onepass_core::io::{RunMeta, SharedMemStore, SpillStore};
use onepass_groupby::MultiPassMerger;

/// Write `runs` sorted runs of `per_run` records each.
fn make_runs(store: &SharedMemStore, runs: usize, per_run: usize) -> Vec<RunMeta> {
    (0..runs)
        .map(|r| {
            let mut w = store.begin_run().unwrap();
            for i in 0..per_run {
                // Keys interleave across runs so merging actually works.
                let key = format!("k{:08}", i * runs + r);
                w.write_record(key.as_bytes(), b"0123456789abcdef").unwrap();
            }
            w.finish().unwrap()
        })
        .collect()
}

fn merge_factor_sweep(c: &mut Criterion) {
    let runs = 64;
    let per_run = 500;
    let mut group = c.benchmark_group("multipass-merge");
    group.throughput(Throughput::Elements((runs * per_run) as u64));
    group.sample_size(10);

    for factor in [2usize, 4, 10, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(factor),
            &factor,
            |b, &factor| {
                b.iter(|| {
                    let store = SharedMemStore::new();
                    let metas = make_runs(&store, runs, per_run);
                    let mut merger = MultiPassMerger::new(Arc::new(store.clone()), factor).unwrap();
                    for m in metas {
                        merger.add_run(m).unwrap();
                    }
                    let mut grouped = merger.into_grouped().unwrap();
                    let mut groups = 0u64;
                    while let Some((_, vals)) = grouped.next_group().unwrap() {
                        groups += vals.len() as u64;
                    }
                    groups
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, merge_factor_sweep);
criterion_main!(benches);
