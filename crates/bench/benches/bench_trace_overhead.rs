//! Overhead guard for the trace layer: a *disabled* tracer's probe
//! sites must be free in the engine's hottest loop. The probe compiles
//! to a branch on a bool cached at `LocalTracer` creation, so even one
//! probe per record in a hash-aggregation loop should cost under 2% —
//! this bench asserts that, then reports the disabled/enabled costs
//! through Criterion for the record.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use onepass_core::trace::{LocalTracer, Tracer, Track};

const RECORDS: usize = 400_000;
const DISTINCT: u64 = 1 << 16;

/// Pseudorandom key stream with a realistic repeat distribution.
fn make_keys() -> Vec<u64> {
    (0..RECORDS as u64)
        .map(|i| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 17) % DISTINCT)
        .collect()
}

fn aggregate_plain(keys: &[u64]) -> u64 {
    let mut map: HashMap<u64, u64> = HashMap::with_capacity(2 * DISTINCT as usize);
    for &k in keys {
        *map.entry(k).or_insert(0) += 1;
    }
    map.len() as u64
}

/// The same loop with a trace probe per record — far denser than the
/// engine's real probe placement (per flush/spill), so it bounds the
/// worst case.
fn aggregate_probed(keys: &[u64], trace: &mut LocalTracer) -> u64 {
    let mut map: HashMap<u64, u64> = HashMap::with_capacity(2 * DISTINCT as usize);
    for &k in keys {
        *map.entry(k).or_insert(0) += 1;
        trace.instant("update", "probe", &[]);
    }
    map.len() as u64
}

fn time_once(f: impl FnOnce() -> u64) -> Duration {
    let t = Instant::now();
    black_box(f());
    t.elapsed()
}

fn trace_overhead(c: &mut Criterion) {
    let keys = make_keys();
    let disabled = Tracer::disabled();

    // Hard guard. Interleaved back-to-back pairs keep both variants
    // under the same thermal/scheduler conditions; scheduler noise only
    // ever *adds* time, so a real regression inflates every pair while
    // noise inflates scattered ones. Two noise-robust estimators — the
    // ratio of minima and the best paired ratio — must both exceed the
    // budget before we call it a regression.
    let mut best_plain = Duration::MAX;
    let mut best_probed = Duration::MAX;
    let mut best_pair_ratio = f64::INFINITY;
    for _ in 0..30 {
        let plain = time_once(|| aggregate_plain(&keys));
        let probed = time_once(|| {
            let mut t = disabled.local(Track::new("bench", 0));
            aggregate_probed(&keys, &mut t)
        });
        best_plain = best_plain.min(plain);
        best_probed = best_probed.min(probed);
        best_pair_ratio = best_pair_ratio.min(probed.as_secs_f64() / plain.as_secs_f64());
    }
    let min_ratio = best_probed.as_secs_f64() / best_plain.as_secs_f64();
    let ratio = min_ratio.min(best_pair_ratio);
    println!(
        "disabled-tracer probe overhead: {:+.2}% ({best_probed:?} vs {best_plain:?})",
        (min_ratio - 1.0) * 100.0
    );
    assert!(
        ratio < 1.02,
        "disabled tracer added {:.2}% to the hash-aggregation loop (budget 2%)",
        (ratio - 1.0) * 100.0
    );

    let mut group = c.benchmark_group("trace_overhead");
    group.throughput(Throughput::Elements(RECORDS as u64));
    group.sample_size(10);
    group.bench_function("hash-agg/no-probes", |b| b.iter(|| aggregate_plain(&keys)));
    group.bench_function("hash-agg/disabled-probes", |b| {
        b.iter(|| {
            let mut t = disabled.local(Track::new("bench", 0));
            aggregate_probed(&keys, &mut t)
        })
    });
    let enabled = Tracer::enabled();
    group.bench_function("hash-agg/enabled-probes", |b| {
        b.iter(|| {
            let n = {
                let mut t = enabled.local(Track::new("bench", 0));
                aggregate_probed(&keys, &mut t)
            };
            black_box(enabled.drain().len());
            n
        })
    });
    group.finish();
}

criterion_group!(benches, trace_overhead);
criterion_main!(benches);
