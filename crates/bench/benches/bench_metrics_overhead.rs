//! Overhead guard for the live-metrics layer: an engine run with a
//! [`MetricsRegistry`] installed must stay within 2% of the same run
//! with metrics disabled (`EngineConfig::metrics = None`, the default).
//! The instrumentation strategy under test is the batched one the
//! runtime uses — per-record counts accumulate in task-local integers
//! and flush to shared atomics every ~1k records — so the hot path
//! costs no atomics and the probe sites cost one `Option` branch.
//! Mirrors `bench_trace_overhead`'s noise-robust dual estimator, then
//! reports both variants through Criterion for the record.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use onepass_core::obs::MetricsRegistry;
use onepass_runtime::map_task::Split;
use onepass_runtime::{CollectOutput, Engine, EngineConfig, JobSpec};
use onepass_workloads::{make_splits, page_frequency, ClickGen, ClickGenConfig};

const RECORDS: usize = 120_000;

fn make_job() -> JobSpec {
    page_frequency::job()
        .reducers(2)
        .collect_mode(CollectOutput::Discard)
        .preset_onepass()
        .build()
        .expect("valid job")
}

fn make_input() -> Vec<Split> {
    let mut gen = ClickGen::new(ClickGenConfig::default());
    make_splits(gen.text_records(RECORDS), RECORDS / 16)
}

fn run_once(engine: &Engine, job: &JobSpec, splits: &[Split]) -> Duration {
    let input = splits.to_vec();
    let t = Instant::now();
    let report = engine.run(job, input).expect("job runs");
    black_box(report.groups_out);
    t.elapsed()
}

fn metrics_overhead(c: &mut Criterion) {
    let job = make_job();
    let splits = make_input();
    let plain_engine = Engine::new();
    let registry = MetricsRegistry::new();
    let metered_engine =
        Engine::with_config(EngineConfig::builder().metrics(registry.clone()).build());

    // Hard guard, as in bench_trace_overhead: interleaved back-to-back
    // pairs share thermal/scheduler conditions, and scheduler noise only
    // ever *adds* time — so a real regression inflates every pair while
    // noise inflates scattered ones. Both the ratio of minima and the
    // best paired ratio must exceed the budget before we call it a
    // regression.
    let mut best_plain = Duration::MAX;
    let mut best_metered = Duration::MAX;
    let mut best_pair_ratio = f64::INFINITY;
    for _ in 0..30 {
        let plain = run_once(&plain_engine, &job, &splits);
        let metered = run_once(&metered_engine, &job, &splits);
        best_plain = best_plain.min(plain);
        best_metered = best_metered.min(metered);
        best_pair_ratio = best_pair_ratio.min(metered.as_secs_f64() / plain.as_secs_f64());
    }
    let min_ratio = best_metered.as_secs_f64() / best_plain.as_secs_f64();
    let ratio = min_ratio.min(best_pair_ratio);
    println!(
        "metrics-registry overhead: {:+.2}% ({best_metered:?} vs {best_plain:?})",
        (min_ratio - 1.0) * 100.0
    );
    assert!(
        ratio < 1.02,
        "live metrics added {:.2}% to an instrumented engine run (budget 2%)",
        (ratio - 1.0) * 100.0
    );
    // Sanity: the metered runs actually published (guard isn't passing
    // because instrumentation silently vanished).
    assert!(
        !registry.snapshot().metrics.is_empty(),
        "metered engine published no metrics — the guard measured nothing"
    );

    let mut group = c.benchmark_group("metrics_overhead");
    group.throughput(Throughput::Elements(RECORDS as u64));
    group.sample_size(10);
    group.bench_function("engine/no-metrics", |b| {
        b.iter(|| run_once(&plain_engine, &job, &splits))
    });
    group.bench_function("engine/metrics-registry", |b| {
        b.iter(|| run_once(&metered_engine, &job, &splits))
    });
    group.finish();
}

criterion_group!(benches, metrics_overhead);
criterion_main!(benches);
