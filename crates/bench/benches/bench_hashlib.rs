//! Ablation: the hash-function family (§V's "hash function library") —
//! multiply-shift vs tabulation vs std's SipHash, on short byte keys.

use std::hash::{BuildHasher, Hasher};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use onepass_core::hashlib::{FastBuildHasher, KeyHasher, MultiplyShift, Tabulation};

fn keys(n: usize) -> Vec<Vec<u8>> {
    (0..n as u32)
        .map(|i| format!("user{:08x}", i.wrapping_mul(0x9e3779b9)).into_bytes())
        .collect()
}

fn hash_families(c: &mut Criterion) {
    let n = 500_000;
    let ks = keys(n);
    let mut group = c.benchmark_group("hashlib");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);

    let ms = MultiplyShift::new(42);
    group.bench_function("multiply-shift", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in &ks {
                acc ^= ms.hash(k);
            }
            acc
        })
    });

    let tab = Tabulation::new(42);
    group.bench_function("tabulation", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in &ks {
                acc ^= tab.hash(k);
            }
            acc
        })
    });

    group.bench_function("fast-hasher (ByteMap)", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in &ks {
                let mut h = FastBuildHasher.build_hasher();
                h.write(k);
                acc ^= h.finish();
            }
            acc
        })
    });

    group.bench_function("std SipHash", |b| {
        b.iter(|| {
            let s = std::collections::hash_map::RandomState::new();
            let mut acc = 0u64;
            for k in &ks {
                let mut h = s.build_hasher();
                h.write(k);
                acc ^= h.finish();
            }
            acc
        })
    });

    // Bucketing (the actual partitioning operation).
    group.bench_function("multiply-shift bucket30", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for k in &ks {
                acc += ms.bucket(k, 30);
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, hash_families);
criterion_main!(benches);
