//! # onepass-simcluster
//!
//! A deterministic discrete-event simulator of a MapReduce cluster, used
//! to regenerate the paper's cluster-scale experiments (Table I, Figs.
//! 2–4) that originally ran on a 10-node Hadoop deployment with 256–508 GB
//! inputs.
//!
//! Why a simulator is the right substrate here: every figure in the
//! paper's §III study is a *resource-utilization timeline* — task counts,
//! CPU utilization, CPU iowait, disk bytes read — whose shape is fully
//! determined by (a) the data-volume flow of the execution model
//! (sort-merge's spill/multi-pass-merge vs hash's bounded spill) and
//! (b) the contention of tasks over per-node CPU cores, disks and NICs.
//! Both are modeled explicitly:
//!
//! * [`engine`] — event heap + FIFO resource queues (cores, disks, NICs),
//!   integer-microsecond clock, fully deterministic.
//! * [`sampler`] — time-weighted gauges binned per second: the `iostat`
//!   -style series the paper plots.
//! * [`model`] — the cost model (CPU s/MB per operation, device profiles,
//!   workload volume profiles) with constants calibrated from the real
//!   `onepass-runtime` engine.
//! * [`cluster`] — node/storage topology: single HDD, HDD+SSD
//!   (Fig. 2e), separated storage/compute (Fig. 2f).
//! * [`mapreduce`] — the execution models: **StockHadoop** (sort-merge,
//!   pull), **Hop** (pipelined sort-merge + snapshots), and
//!   **HashOnePass** (the paper's proposed system).
//! * [`report`] — completion time, phase totals and all figure series.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod dfs;
pub mod engine;
pub mod mapreduce;
pub mod model;
pub mod report;
pub mod sampler;

pub use cluster::{ClusterSpec, StorageConfig};
pub use mapreduce::{run_sim_job, run_sim_job_traced, SimFaults, SimJobSpec, SystemType};
pub use model::{CostModel, DeviceProfile, WorkloadProfile};
pub use report::{FaultCounters, SimReport};
