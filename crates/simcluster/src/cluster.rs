//! Cluster topology: nodes with cores, disks and NICs, under the three
//! storage architectures of §III (single HDD; HDD + SSD for intermediate
//! data; separated storage and compute subsystems).

use crate::model::DeviceProfile;

/// Storage architecture variants (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageConfig {
    /// Baseline: one HDD per node serves DFS input/output *and*
    /// intermediate data — "the disk is often maxed out and subject to
    /// random I/Os".
    SingleHdd,
    /// §III-C experiment 1: add an SSD per node, dedicated to
    /// intermediate data (map output + reduce spill); the HDD keeps
    /// DFS traffic.
    HddPlusSsd,
    /// §III-C experiment 2: half the nodes become storage-only (DFS);
    /// compute nodes keep their local disk exclusively for intermediate
    /// data but must read input / write output over the network.
    Separated,
}

impl StorageConfig {
    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            StorageConfig::SingleHdd => "single-hdd",
            StorageConfig::HddPlusSsd => "hdd+ssd",
            StorageConfig::Separated => "separated-storage",
        }
    }
}

/// Cluster hardware specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Worker nodes (the paper's 10 compute nodes).
    pub nodes: usize,
    /// CPU cores per node.
    pub cores_per_node: usize,
    /// Concurrent map task slots per node.
    pub map_slots_per_node: usize,
    /// Storage architecture.
    pub storage: StorageConfig,
    /// Data (DFS) disk profile.
    pub data_disk: DeviceProfile,
    /// Intermediate-data disk profile (equals `data_disk` under
    /// `SingleHdd`; the SSD under `HddPlusSsd`).
    pub inter_disk: DeviceProfile,
    /// NIC profile.
    pub nic: DeviceProfile,
    /// DFS block size, MB.
    pub block_mb: f64,
}

impl ClusterSpec {
    /// The paper's 10-node cluster under the given storage architecture.
    pub fn paper_cluster(storage: StorageConfig) -> Self {
        let inter_disk = match storage {
            StorageConfig::HddPlusSsd => DeviceProfile::ssd(),
            _ => DeviceProfile::hdd(),
        };
        ClusterSpec {
            nodes: 10,
            cores_per_node: 4,
            map_slots_per_node: 4,
            storage,
            data_disk: DeviceProfile::hdd(),
            inter_disk,
            nic: DeviceProfile::gige(),
            block_mb: 64.0,
        }
    }

    /// Compute nodes (those running tasks). Under `Separated`, half the
    /// nodes are storage-only.
    pub fn compute_nodes(&self) -> usize {
        match self.storage {
            StorageConfig::Separated => (self.nodes / 2).max(1),
            _ => self.nodes,
        }
    }

    /// Storage-only nodes (zero except under `Separated`).
    pub fn storage_nodes(&self) -> usize {
        match self.storage {
            StorageConfig::Separated => self.nodes - self.compute_nodes(),
            _ => 0,
        }
    }

    /// Total CPU cores available for tasks.
    pub fn total_cores(&self) -> usize {
        self.compute_nodes() * self.cores_per_node
    }

    /// Total concurrent map slots.
    pub fn total_map_slots(&self) -> usize {
        self.compute_nodes() * self.map_slots_per_node
    }

    /// Does reading DFS data traverse the network?
    pub fn dfs_is_remote(&self) -> bool {
        self.storage == StorageConfig::Separated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_defaults() {
        let c = ClusterSpec::paper_cluster(StorageConfig::SingleHdd);
        assert_eq!(c.nodes, 10);
        assert_eq!(c.compute_nodes(), 10);
        assert_eq!(c.storage_nodes(), 0);
        assert_eq!(c.total_cores(), 40);
        assert!(!c.dfs_is_remote());
        assert_eq!(c.data_disk, c.inter_disk);
    }

    #[test]
    fn ssd_config_uses_fast_intermediate_disk() {
        let c = ClusterSpec::paper_cluster(StorageConfig::HddPlusSsd);
        assert!(c.inter_disk.bandwidth_mb_s > c.data_disk.bandwidth_mb_s);
    }

    #[test]
    fn separated_splits_nodes() {
        let c = ClusterSpec::paper_cluster(StorageConfig::Separated);
        assert_eq!(c.compute_nodes(), 5);
        assert_eq!(c.storage_nodes(), 5);
        assert_eq!(c.total_cores(), 20);
        assert!(c.dfs_is_remote());
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            StorageConfig::SingleHdd.label(),
            StorageConfig::HddPlusSsd.label(),
            StorageConfig::Separated.label(),
        ];
        assert_eq!(
            labels
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            3
        );
    }
}
