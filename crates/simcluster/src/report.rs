//! Simulation reports: completion time, volume totals, and the per-second
//! series behind every figure panel.

use onepass_core::json::{escape, fmt_f64};
use onepass_core::metrics::Series;

use crate::engine::{to_secs, SimTime};
use crate::mapreduce::SimJobSpec;
use crate::sampler::{Counter, Gauge, Sampler};

/// All per-second series a figure might plot.
#[derive(Debug, Clone, Default)]
pub struct SimSeries {
    /// Running map tasks.
    pub map_tasks: Series,
    /// Reducers still awaiting map data.
    pub shuffle_tasks: Series,
    /// Active background/multi-pass merges.
    pub merge_tasks: Series,
    /// Reducers in final merge + reduce.
    pub reduce_tasks: Series,
    /// CPU utilization, percent of total cores (Fig. 2b/e/f, 4a).
    pub cpu_util_pct: Series,
    /// CPU iowait, percent of total cores (Fig. 2c, 4b).
    pub iowait_pct: Series,
    /// Disk MB read per second, cluster-wide (Fig. 2d).
    pub disk_read_mb: Series,
    /// Disk MB written per second, cluster-wide.
    pub disk_write_mb: Series,
    /// Network MB per second, cluster-wide.
    pub net_mb: Series,
}

/// Attempt-level accounting for a simulated run — the analogue of the
/// engine `JobReport`'s attempt fields. All zero on a clean run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Map attempts launched, including retries and speculative clones
    /// (equals `map_tasks` on a clean run).
    pub map_attempts: usize,
    /// Injected failures that triggered a re-execution (map + reduce).
    pub retries: usize,
    /// Speculative clones launched against stragglers.
    pub speculative_launched: usize,
    /// Clones that committed before the original attempt.
    pub speculative_wins: usize,
}

/// Result of one simulated job.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// System simulated.
    pub system: &'static str,
    /// Storage configuration label.
    pub storage: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// Completion time, seconds.
    pub completion_secs: f64,
    /// Map tasks executed.
    pub map_tasks: usize,
    /// Reduce tasks executed.
    pub reduce_tasks: usize,
    /// Input volume, MB.
    pub input_mb: f64,
    /// Map output volume, MB.
    pub map_output_mb: f64,
    /// Reducer spill writes (initial spills + cold spills), MB.
    pub spill_written_mb: f64,
    /// Multi-pass merge re-reads, MB.
    pub merge_read_mb: f64,
    /// Multi-pass merge re-writes, MB.
    pub merge_written_mb: f64,
    /// Final output volume, MB.
    pub output_mb: f64,
    /// HOP snapshots taken.
    pub snapshots: u64,
    /// Events processed (determinism checks).
    pub events: u64,
    /// Fraction of map tasks that read their block from a local disk
    /// (1.0 under perfect locality; 0.0 under the separated
    /// architecture).
    pub local_map_fraction: f64,
    /// Total cores (for utilization scaling).
    pub total_cores: usize,
    /// Attempt-level fault-tolerance counters.
    pub faults: FaultCounters,
    /// The figure series.
    pub series: SimSeries,
}

impl SimReport {
    /// Assemble a report from a finished world. Internal to the crate.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build(
        spec: &SimJobSpec,
        end: SimTime,
        events: u64,
        map_tasks: usize,
        spill_written_mb: f64,
        merge_read_mb: f64,
        merge_written_mb: f64,
        snapshots: u64,
        local_map_fraction: f64,
        faults: FaultCounters,
        sampler: &mut Sampler,
    ) -> SimReport {
        let total_cores = spec.cluster.total_cores();
        let busy = sampler.gauge_series(Gauge::BusyCores, end);
        let outstanding = sampler.gauge_series(Gauge::DiskOutstanding, end);

        let mut cpu_util_pct = Series::new("cpu_util_pct");
        let mut iowait_pct = Series::new("iowait_pct");
        for (&(x, b), &(_, o)) in busy.points.iter().zip(&outstanding.points) {
            let util = (b / total_cores as f64 * 100.0).min(100.0);
            cpu_util_pct.push(x, util);
            // iowait: idle cores that could run if pending disk requests
            // completed — min(idle, outstanding I/O) / cores, as a %.
            let idle = (total_cores as f64 - b).max(0.0);
            iowait_pct.push(x, (o.min(idle) / total_cores as f64 * 100.0).min(100.0));
        }

        let series = SimSeries {
            map_tasks: sampler.gauge_series(Gauge::MapTasks, end),
            shuffle_tasks: sampler.gauge_series(Gauge::ShuffleTasks, end),
            merge_tasks: sampler.gauge_series(Gauge::MergeTasks, end),
            reduce_tasks: sampler.gauge_series(Gauge::ReduceTasks, end),
            cpu_util_pct,
            iowait_pct,
            disk_read_mb: sampler.counter_series(Counter::DiskReadMb),
            disk_write_mb: sampler.counter_series(Counter::DiskWriteMb),
            net_mb: sampler.counter_series(Counter::NetMb),
        };

        SimReport {
            system: spec.system.label(),
            storage: spec.cluster.storage.label(),
            workload: spec.workload.name,
            completion_secs: to_secs(end),
            map_tasks,
            reduce_tasks: spec.workload.reducers,
            input_mb: spec.workload.input_mb,
            map_output_mb: spec.workload.input_mb * spec.workload.map_output_ratio,
            spill_written_mb,
            merge_read_mb,
            merge_written_mb,
            output_mb: spec.workload.input_mb * spec.workload.output_ratio,
            snapshots,
            events,
            local_map_fraction,
            total_cores,
            faults,
            series,
        }
    }

    /// One JSONL line summarizing the run — the simulator analogue of
    /// `JobReport::to_jsonl` (the sim report has no per-task spans; use
    /// [`crate::mapreduce::run_sim_job_traced`] for task-level detail).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"type\":\"job\",\"system\":\"{}\",\"storage\":\"{}\",\"workload\":\"{}\",\
             \"completion_s\":{},\"map_tasks\":{},\"reduce_tasks\":{},\"input_mb\":{},\
             \"map_output_mb\":{},\"spill_written_mb\":{},\"merge_read_mb\":{},\
             \"merge_written_mb\":{},\"output_mb\":{},\"snapshots\":{},\"events\":{},\
             \"local_map_fraction\":{},\"map_attempts\":{},\"retries\":{},\
             \"speculative_launched\":{},\"speculative_wins\":{}}}\n",
            escape(self.system),
            escape(self.storage),
            escape(self.workload),
            fmt_f64(self.completion_secs),
            self.map_tasks,
            self.reduce_tasks,
            fmt_f64(self.input_mb),
            fmt_f64(self.map_output_mb),
            fmt_f64(self.spill_written_mb),
            fmt_f64(self.merge_read_mb),
            fmt_f64(self.merge_written_mb),
            fmt_f64(self.output_mb),
            self.snapshots,
            self.events,
            fmt_f64(self.local_map_fraction),
            self.faults.map_attempts,
            self.faults.retries,
            self.faults.speculative_launched,
            self.faults.speculative_wins,
        )
    }

    /// Mirror this run into a live-metrics registry under the *same*
    /// metric names the real engine publishes, labeled `source="sim"`
    /// (plus `stage=<workload>`), so a dashboard can join predicted and
    /// actual series on metric name alone.
    ///
    /// Phase busy time is approximated from the task-count series: the
    /// integral of "tasks running" over the run is task-seconds of busy
    /// time in that phase, folded onto the nearest engine phase label.
    pub fn publish_metrics(&self, registry: &onepass_core::obs::MetricsRegistry) {
        let l: &[(&str, &str)] = &[("source", "sim"), ("stage", self.workload)];
        registry
            .gauge("onepass_stage_splits_total", l)
            .set(self.map_tasks as f64);
        registry
            .gauge("onepass_stage_splits_done", l)
            .set(self.map_tasks as f64);
        registry.gauge("onepass_stage_progress_ratio", l).set(1.0);
        registry
            .counter("onepass_stage_map_attempts_total", l)
            .inc(self.faults.map_attempts as u64);
        registry
            .counter("onepass_stage_failed_attempts_total", l)
            .inc(self.faults.retries as u64);
        registry
            .counter("onepass_stage_stragglers_total", l)
            .inc(self.faults.speculative_launched as u64);
        registry
            .counter("onepass_engine_shuffle_bytes_total", l)
            .inc((self.map_output_mb * 1048576.0) as u64);
        registry
            .gauge("onepass_job_wall_seconds", l)
            .set(self.completion_secs);

        // ∫ tasks dt ≈ mean concurrency × duration = task-seconds busy.
        let busy = |s: &Series| {
            s.mean_y_in(0.0, self.completion_secs).unwrap_or(0.0) * self.completion_secs
        };
        let phases: [(&str, &str, f64); 4] = [
            ("map_fn", "map", busy(&self.series.map_tasks)),
            ("shuffle", "reduce", busy(&self.series.shuffle_tasks)),
            ("merge", "reduce", busy(&self.series.merge_tasks)),
            ("reduce_fn", "reduce", busy(&self.series.reduce_tasks)),
        ];
        for (phase, side, secs) in phases {
            registry
                .counter(
                    "onepass_engine_phase_micros_total",
                    &[
                        ("phase", phase),
                        ("side", side),
                        ("source", "sim"),
                        ("stage", self.workload),
                    ],
                )
                .inc((secs * 1e6) as u64);
        }
    }

    /// Total reduce-side spill volume including multi-pass rewrites —
    /// the Table I "Reduce spill data" analogue.
    pub fn reduce_spill_total_mb(&self) -> f64 {
        self.spill_written_mb + self.merge_written_mb
    }

    /// Intermediate/input ratio as Table I computes it:
    /// (map output + reduce spill) / input.
    pub fn intermediate_ratio(&self) -> f64 {
        (self.map_output_mb + self.reduce_spill_total_mb()) / self.input_mb
    }

    /// Multi-pass merge reads attributable to background merging only
    /// (excluding the final merge read) — 0 for the hash system.
    pub fn merge_read_mb_background(&self) -> f64 {
        // The final merge's read is folded into merge_read_mb as well;
        // for the hash system both are zero except the cold resolve,
        // which is accounted under FinalRead → merge_read_mb. Subtract
        // nothing here for sort-merge; for hash the cold resolve equals
        // spill_written_mb, so background merging is the remainder.
        (self.merge_read_mb - self.spill_written_mb)
            .max(0.0)
            .min(self.merge_read_mb)
            * if self.system == "hash-one-pass" {
                0.0
            } else {
                1.0
            }
    }

    /// Mean CPU utilization (%) over a window of the run, expressed in
    /// fractions of completion time. Used by tests to detect the
    /// mid-job utilization valley.
    pub fn mean_cpu_util(&self, from_frac: f64, to_frac: f64) -> f64 {
        self.series
            .cpu_util_pct
            .mean_y_in(
                from_frac * self.completion_secs,
                to_frac * self.completion_secs,
            )
            .unwrap_or(0.0)
    }

    /// Mean iowait (%) over a window (fractions of completion time).
    pub fn mean_iowait(&self, from_frac: f64, to_frac: f64) -> f64 {
        self.series
            .iowait_pct
            .mean_y_in(
                from_frac * self.completion_secs,
                to_frac * self.completion_secs,
            )
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterSpec, StorageConfig};
    use crate::mapreduce::{run_sim_job, SystemType};
    use crate::model::WorkloadProfile;

    fn report() -> SimReport {
        run_sim_job(SimJobSpec::new(
            SystemType::StockHadoop,
            ClusterSpec::paper_cluster(StorageConfig::SingleHdd),
            WorkloadProfile::sessionization().scaled(0.01),
        ))
    }

    #[test]
    fn ratios_are_consistent() {
        let r = report();
        assert!(
            r.intermediate_ratio() > 1.0,
            "sessionization is write-heavy"
        );
        assert!(r.reduce_spill_total_mb() >= r.spill_written_mb);
    }

    #[test]
    fn series_are_time_aligned() {
        let r = report();
        let n = r.series.cpu_util_pct.len();
        assert!(n > 0);
        assert_eq!(r.series.iowait_pct.len(), n);
        for &(_, y) in &r.series.cpu_util_pct.points {
            assert!((0.0..=100.0).contains(&y));
        }
        for &(_, y) in &r.series.iowait_pct.points {
            assert!((0.0..=100.0).contains(&y));
        }
    }

    #[test]
    fn jsonl_line_parses_and_matches_report() {
        use onepass_core::json::Json;
        let r = report();
        let line = r.to_jsonl();
        assert!(line.ends_with('\n'));
        let doc = Json::parse(line.trim()).expect("valid JSON line");
        assert_eq!(doc.get("type").and_then(Json::as_str), Some("job"));
        assert_eq!(doc.get("system").and_then(Json::as_str), Some(r.system));
        assert_eq!(
            doc.get("completion_s").and_then(Json::as_f64),
            Some(r.completion_secs)
        );
        assert_eq!(
            doc.get("map_tasks").and_then(Json::as_f64),
            Some(r.map_tasks as f64)
        );
    }

    #[test]
    fn utilization_window_helpers() {
        let r = report();
        let early = r.mean_cpu_util(0.0, 0.3);
        assert!(early > 0.0, "map phase should show CPU activity");
        assert_eq!(r.mean_cpu_util(2.0, 3.0), 0.0, "beyond the run is empty");
    }

    #[test]
    fn publish_metrics_mirrors_engine_names_with_sim_label() {
        use onepass_core::obs::{MetricsRegistry, SampleValue};
        let r = report();
        let registry = MetricsRegistry::new();
        r.publish_metrics(&registry);
        let snap = registry.snapshot();
        let labels: &[(&str, &str)] = &[("source", "sim"), ("stage", r.workload)];
        let splits = snap
            .find("onepass_stage_splits_total", labels)
            .expect("sim mirror registered under the engine's metric name");
        match splits.value {
            SampleValue::Gauge(v) => assert_eq!(v, r.map_tasks as f64),
            ref other => panic!("expected gauge, got {other:?}"),
        }
        let wall = snap
            .find("onepass_job_wall_seconds", labels)
            .expect("wall gauge");
        match wall.value {
            SampleValue::Gauge(v) => assert!((v - r.completion_secs).abs() < 1e-9),
            ref other => panic!("expected gauge, got {other:?}"),
        }
        // Map busy time (task-seconds) is strictly positive on any run.
        let map_busy = snap
            .metrics
            .iter()
            .find(|m| {
                m.name == "onepass_engine_phase_micros_total"
                    && m.labels.iter().any(|(k, v)| k == "phase" && v == "map_fn")
            })
            .expect("map phase mirror");
        match map_busy.value {
            SampleValue::Counter(v) => assert!(v > 0, "map task-seconds must be nonzero"),
            ref other => panic!("expected counter, got {other:?}"),
        }
    }
}
