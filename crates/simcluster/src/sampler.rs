//! Time-weighted gauge sampling into per-second bins — the simulator's
//! `iostat`/`ps` profiling harness.
//!
//! A [`Gauge`] is a piecewise-constant value (e.g. "busy cores"); the
//! sampler integrates it over time and reports the per-bin mean, which is
//! exactly what a 1 Hz `iostat` poll would print. Event counters (bytes
//! read) are accumulated into the bin where they occur.

use onepass_core::metrics::Series;

use crate::engine::{to_secs, SimTime, SECOND};

/// The gauges the figures need.
///
/// Array-backed storage indexes by the discriminant itself
/// (`Gauge::idx` is `self as usize`), so variants must stay densely
/// numbered from 0 — which the compiler guarantees for a plain
/// fieldless enum. A unit test pins `idx` ↔ [`Gauge::all`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gauge {
    /// Running map tasks (Fig. 2a "map").
    MapTasks,
    /// Reducers still fetching map output (Fig. 2a "shuffle").
    ShuffleTasks,
    /// Reducers running background/multi-pass merges (Fig. 2a "merge").
    MergeTasks,
    /// Reducers in the final merge + reduce phase (Fig. 2a "reduce").
    ReduceTasks,
    /// Busy CPU cores, cluster-wide (Fig. 2b numerator).
    BusyCores,
    /// Outstanding disk requests, cluster-wide (iowait proxy, Fig. 2c).
    DiskOutstanding,
}

/// Count of gauge variants (array-backed storage).
const NUM_GAUGES: usize = Gauge::all().len();

impl Gauge {
    /// Dense storage index: the derived discriminant.
    fn idx(self) -> usize {
        self as usize
    }

    /// All gauges, in discriminant order.
    pub const fn all() -> &'static [Gauge] {
        &[
            Gauge::MapTasks,
            Gauge::ShuffleTasks,
            Gauge::MergeTasks,
            Gauge::ReduceTasks,
            Gauge::BusyCores,
            Gauge::DiskOutstanding,
        ]
    }

    /// Display label (series name).
    pub fn label(self) -> &'static str {
        match self {
            Gauge::MapTasks => "map_tasks",
            Gauge::ShuffleTasks => "shuffle_tasks",
            Gauge::MergeTasks => "merge_tasks",
            Gauge::ReduceTasks => "reduce_tasks",
            Gauge::BusyCores => "busy_cores",
            Gauge::DiskOutstanding => "disk_outstanding",
        }
    }
}

/// Event counters accumulated per bin. Indexed like [`Gauge`]: storage
/// index is the derived discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Disk bytes read (Fig. 2d), in MB.
    DiskReadMb,
    /// Disk bytes written, in MB.
    DiskWriteMb,
    /// Network bytes transferred, in MB.
    NetMb,
}

const NUM_COUNTERS: usize = Counter::all().len();

impl Counter {
    /// Dense storage index: the derived discriminant.
    fn idx(self) -> usize {
        self as usize
    }

    /// All counters, in discriminant order.
    pub const fn all() -> &'static [Counter] {
        &[Counter::DiskReadMb, Counter::DiskWriteMb, Counter::NetMb]
    }

    /// Display label (series name).
    pub fn label(self) -> &'static str {
        match self {
            Counter::DiskReadMb => "disk_read_mb",
            Counter::DiskWriteMb => "disk_write_mb",
            Counter::NetMb => "net_mb",
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct GaugeState {
    value: f64,
    last_change: SimTime,
}

/// The sampler: integrates gauges, bins counters.
#[derive(Debug)]
pub struct Sampler {
    gauges: [GaugeState; NUM_GAUGES],
    /// gauge integral per bin: gauges × bins (bin = 1 s).
    gauge_bins: Vec<[f64; NUM_GAUGES]>,
    counter_bins: Vec<[f64; NUM_COUNTERS]>,
}

impl Sampler {
    /// New sampler; all gauges start at zero.
    pub fn new() -> Self {
        Sampler {
            gauges: [GaugeState::default(); NUM_GAUGES],
            gauge_bins: Vec::new(),
            counter_bins: Vec::new(),
        }
    }

    fn ensure_bins(&mut self, bin: usize) {
        if self.gauge_bins.len() <= bin {
            self.gauge_bins.resize(bin + 1, [0.0; NUM_GAUGES]);
        }
        if self.counter_bins.len() <= bin {
            self.counter_bins.resize(bin + 1, [0.0; NUM_COUNTERS]);
        }
    }

    /// Integrate gauge `g`'s current value from its last change to `now`,
    /// splitting across 1-second bins.
    fn integrate(&mut self, g: usize, now: SimTime) {
        let st = self.gauges[g];
        if now <= st.last_change || st.value == 0.0 {
            self.gauges[g].last_change = now;
            return;
        }
        let mut t = st.last_change;
        while t < now {
            let bin = (t / SECOND) as usize;
            let bin_end = ((bin as u64) + 1) * SECOND;
            let seg_end = bin_end.min(now);
            self.ensure_bins(bin);
            // Weighted by the fraction of the bin covered.
            self.gauge_bins[bin][g] += st.value * (seg_end - t) as f64 / SECOND as f64;
            t = seg_end;
        }
        self.gauges[g].last_change = now;
    }

    /// Set gauge `g` to `value` at time `now`.
    pub fn set(&mut self, g: Gauge, now: SimTime, value: f64) {
        let i = g.idx();
        self.integrate(i, now);
        self.gauges[i].value = value;
    }

    /// Adjust gauge `g` by `delta` at time `now`.
    pub fn adjust(&mut self, g: Gauge, now: SimTime, delta: f64) {
        let i = g.idx();
        self.integrate(i, now);
        self.gauges[i].value += delta;
        debug_assert!(
            self.gauges[i].value > -1e-9,
            "gauge {} went negative",
            g.label()
        );
    }

    /// Current value of gauge `g`.
    pub fn value(&self, g: Gauge) -> f64 {
        self.gauges[g.idx()].value
    }

    /// Add `amount` to counter `c` in the bin containing `now`.
    pub fn count(&mut self, c: Counter, now: SimTime, amount: f64) {
        let bin = (now / SECOND) as usize;
        self.ensure_bins(bin);
        self.counter_bins[bin][c.idx()] += amount;
    }

    /// Finalize at `end` and extract the per-second mean series of `g`.
    /// The series always covers every second of `[0, end)`, padding
    /// zero-valued stretches.
    pub fn gauge_series(&mut self, g: Gauge, end: SimTime) -> Series {
        self.integrate(g.idx(), end);
        if end > 0 {
            self.ensure_bins(((end - 1) / SECOND) as usize);
        }
        let mut s = Series::new(g.label());
        for (bin, vals) in self.gauge_bins.iter().enumerate() {
            s.push(bin as f64, vals[g.idx()]);
        }
        let _ = to_secs(end);
        s
    }

    /// Extract the per-second counter series of `c`.
    pub fn counter_series(&self, c: Counter) -> Series {
        let mut s = Series::new(c.label());
        for (bin, vals) in self.counter_bins.iter().enumerate() {
            s.push(bin as f64, vals[c.idx()]);
        }
        s
    }
}

impl Default for Sampler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_integrates_across_bins() {
        let mut s = Sampler::new();
        // Value 2.0 from t=0.5s to t=2.5s.
        s.set(Gauge::MapTasks, SECOND / 2, 2.0);
        s.set(Gauge::MapTasks, 2 * SECOND + SECOND / 2, 0.0);
        let series = s.gauge_series(Gauge::MapTasks, 3 * SECOND);
        // bin 0: 2.0 * 0.5 = 1.0; bin 1: 2.0; bin 2: 1.0
        assert_eq!(series.points[0], (0.0, 1.0));
        assert_eq!(series.points[1], (1.0, 2.0));
        assert_eq!(series.points[2], (2.0, 1.0));
    }

    #[test]
    fn adjust_accumulates() {
        let mut s = Sampler::new();
        s.adjust(Gauge::BusyCores, 0, 3.0);
        s.adjust(Gauge::BusyCores, SECOND, -1.0);
        assert_eq!(s.value(Gauge::BusyCores), 2.0);
        let series = s.gauge_series(Gauge::BusyCores, 2 * SECOND);
        assert_eq!(series.points[0].1, 3.0);
        assert_eq!(series.points[1].1, 2.0);
    }

    #[test]
    fn counters_bin_at_event_time() {
        let mut s = Sampler::new();
        s.count(Counter::DiskReadMb, SECOND / 4, 10.0);
        s.count(Counter::DiskReadMb, SECOND / 2, 5.0);
        s.count(Counter::DiskReadMb, 3 * SECOND, 7.0);
        let series = s.counter_series(Counter::DiskReadMb);
        assert_eq!(series.points[0].1, 15.0);
        assert_eq!(series.points[1].1, 0.0);
        assert_eq!(series.points[3].1, 7.0);
    }

    #[test]
    fn idx_matches_all_order_and_labels_are_unique() {
        // `idx` is the derived discriminant; `all()` must enumerate the
        // variants in exactly that order, covering every index once, so
        // array-backed storage cannot be silently corrupted by a new
        // variant added to one list but not the other.
        assert_eq!(Gauge::all().len(), NUM_GAUGES);
        for (i, g) in Gauge::all().iter().enumerate() {
            assert_eq!(g.idx(), i, "Gauge::all() out of discriminant order");
        }
        let mut labels: Vec<&str> = Gauge::all().iter().map(|g| g.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), NUM_GAUGES, "duplicate gauge label");

        assert_eq!(Counter::all().len(), NUM_COUNTERS);
        for (i, c) in Counter::all().iter().enumerate() {
            assert_eq!(c.idx(), i, "Counter::all() out of discriminant order");
        }
        let mut labels: Vec<&str> = Counter::all().iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), NUM_COUNTERS, "duplicate counter label");
    }

    #[test]
    fn zero_value_periods_cost_nothing() {
        let mut s = Sampler::new();
        s.set(Gauge::MergeTasks, 5 * SECOND, 1.0);
        s.set(Gauge::MergeTasks, 6 * SECOND, 0.0);
        let series = s.gauge_series(Gauge::MergeTasks, 10 * SECOND);
        assert_eq!(series.points[4].1, 0.0);
        assert_eq!(series.points[5].1, 1.0);
        assert_eq!(series.points[6].1, 0.0);
    }
}
