//! HDFS-like distributed block store: placement, replication, locality.
//!
//! §II-A: "The Hadoop Distributed File System (HDFS) handles fault
//! tolerance and replication … the unit of data storage is a 64 MB block
//! [which serves] as the task granularity for MapReduce jobs." The
//! paper's cluster ran with replication turned down to 1 from the
//! default 3; both are supported here.
//!
//! Placement follows HDFS's rack-unaware default: each block's primary
//! replica rotates round-robin over the data nodes; additional replicas
//! land on the following nodes. The simulator's JobTracker uses
//! [`Dfs::replica_nodes`] for locality-aware scheduling — a map task
//! whose block has no replica on its node pays a network read.

/// Placement configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfsConfig {
    /// Replicas per block (the paper used 1; HDFS default 3).
    pub replication: usize,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig { replication: 1 }
    }
}

/// The block-placement map of one input file over `data_nodes`.
#[derive(Debug, Clone)]
pub struct Dfs {
    data_nodes: usize,
    replication: usize,
    blocks: usize,
}

impl Dfs {
    /// Place `blocks` blocks over `data_nodes` nodes.
    pub fn place(blocks: usize, data_nodes: usize, config: DfsConfig) -> Self {
        assert!(data_nodes >= 1, "need at least one data node");
        Dfs {
            data_nodes,
            replication: config.replication.clamp(1, data_nodes),
            blocks,
        }
    }

    /// Number of blocks.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Effective replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Nodes holding a replica of `block` (primary first).
    pub fn replica_nodes(&self, block: usize) -> impl Iterator<Item = usize> + '_ {
        let primary = block % self.data_nodes;
        (0..self.replication).map(move |r| (primary + r) % self.data_nodes)
    }

    /// Is any replica of `block` on `node`?
    pub fn is_local(&self, block: usize, node: usize) -> bool {
        self.replica_nodes(block).any(|n| n == node)
    }

    /// The primary replica's node for `block`.
    pub fn primary(&self, block: usize) -> usize {
        block % self.data_nodes
    }

    /// Blocks whose primary replica is on `node` (the node's natural
    /// work list for locality-first scheduling).
    pub fn primary_blocks(&self, node: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.blocks).filter(move |b| b % self.data_nodes == node)
    }

    /// Expected blocks per node (load-balance sanity).
    pub fn blocks_per_node(&self) -> f64 {
        self.blocks as f64 * self.replication as f64 / self.data_nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_one_places_round_robin() {
        let dfs = Dfs::place(10, 4, DfsConfig { replication: 1 });
        assert_eq!(dfs.primary(0), 0);
        assert_eq!(dfs.primary(5), 1);
        assert!(dfs.is_local(6, 2));
        assert!(!dfs.is_local(6, 3));
        assert_eq!(dfs.replica_nodes(6).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn replication_three_uses_consecutive_nodes() {
        let dfs = Dfs::place(8, 5, DfsConfig { replication: 3 });
        assert_eq!(dfs.replica_nodes(4).collect::<Vec<_>>(), vec![4, 0, 1]);
        assert!(dfs.is_local(4, 0));
        assert!(dfs.is_local(4, 1));
        assert!(!dfs.is_local(4, 2));
    }

    #[test]
    fn replication_clamped_to_node_count() {
        let dfs = Dfs::place(4, 2, DfsConfig { replication: 5 });
        assert_eq!(dfs.replication(), 2);
    }

    #[test]
    fn primary_blocks_partition_the_file() {
        let dfs = Dfs::place(11, 3, DfsConfig::default());
        let mut all: Vec<usize> = (0..3).flat_map(|n| dfs.primary_blocks(n)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..11).collect::<Vec<_>>());
    }

    #[test]
    fn load_balance_metric() {
        let dfs = Dfs::place(100, 10, DfsConfig { replication: 2 });
        assert!((dfs.blocks_per_node() - 20.0).abs() < 1e-9);
    }
}
