//! MapReduce execution models on the simulated cluster: StockHadoop,
//! Hop (MapReduce Online), HashOnePass (the paper's proposed system).
//!
//! Each model is a state machine dispatched over `Action` events. The
//! Hadoop model follows Fig. 1 stage by stage: block read → map fn +
//! block sort → synchronous map-output write → shuffle → reducer buffer →
//! spill → progressive multi-pass merge (factor F) → blocking final merge
//! → reduce → output write. The Hop model pushes map output eagerly,
//! splits the sort between map and reduce sides, and re-reads all received
//! data at snapshot points. The HashOnePass model removes the sort and the
//! merge entirely: incremental per-record CPU as data arrives, bounded
//! cold-key spill, short final emit.

use std::collections::VecDeque;
use std::time::Duration;

use onepass_core::metrics::Phase;
use onepass_core::trace::{Tracer, Track};

use crate::cluster::ClusterSpec;
use crate::dfs::{Dfs, DfsConfig};
use crate::engine::{secs, EventPayload, EventQueue, Resource, SimTime};
use crate::model::{CostModel, WorkloadProfile};
use crate::report::SimReport;
use crate::sampler::{Counter, Gauge, Sampler};

/// Which system's execution model to simulate (Table III's three rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemType {
    /// Hadoop: sort-merge, pull shuffle, blocking multi-pass merge.
    StockHadoop,
    /// MapReduce Online: pipelined sort-merge with periodic snapshots.
    Hop,
    /// The paper's hash-based one-pass system.
    HashOnePass,
}

impl SystemType {
    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SystemType::StockHadoop => "stock-hadoop",
            SystemType::Hop => "mapreduce-online",
            SystemType::HashOnePass => "hash-one-pass",
        }
    }
}

/// A complete simulated-job specification.
#[derive(Debug, Clone)]
pub struct SimJobSpec {
    /// Execution model.
    pub system: SystemType,
    /// Cluster hardware/topology.
    pub cluster: ClusterSpec,
    /// CPU cost model.
    pub cost: CostModel,
    /// Workload volume profile.
    pub workload: WorkloadProfile,
    /// Reducer shuffle-buffer capacity, MB (~0.66 of the paper's 1 GB
    /// task heap, Hadoop's `mapred.job.shuffle.input.buffer.percent`).
    pub reduce_mem_mb: f64,
    /// Multi-pass merge factor F.
    pub merge_factor: usize,
    /// Snapshot fractions (Hop only).
    pub snapshots: Vec<f64>,
    /// DFS block replication (the paper turned it down to 1).
    pub replication: usize,
    /// Fault and straggler injection (mirrors the engine's
    /// `RetryPolicy` / `SpeculationConfig` / `FaultPlan`).
    pub faults: SimFaults,
    /// Mirror of the engine's adaptive memory governor: pool the
    /// reducer shuffle buffers job-wide, spill only on *global*
    /// pressure, and pick the largest consumer as the spill victim.
    /// Default off (per-reducer private caps, the Hadoop behaviour).
    pub adaptive_memory: bool,
}

impl SimJobSpec {
    /// Paper-default spec for `system` × `workload` on `cluster`.
    pub fn new(system: SystemType, cluster: ClusterSpec, workload: WorkloadProfile) -> Self {
        SimJobSpec {
            system,
            cluster,
            cost: CostModel::calibrated(),
            workload,
            reduce_mem_mb: 660.0,
            merge_factor: 10,
            snapshots: if system == SystemType::Hop {
                vec![0.25, 0.50, 0.75]
            } else {
                Vec::new()
            },
            replication: 1,
            faults: SimFaults::default(),
            adaptive_memory: false,
        }
    }
}

/// Fault and straggler plan for a simulated job — the cost-model mirror
/// of the engine's task-level fault tolerance. Failed attempts waste the
/// work they did before dying and are rescheduled with a fresh attempt
/// id; stragglers run slow until (optionally) a speculative clone
/// overtakes them; reduce failures replay the final phase.
///
/// The simulator models *successful* recovery: planned failure counts
/// are clamped to `max_attempts - 1` at world construction so every run
/// completes (an exhausted-retries run has no defined completion time).
#[derive(Debug, Clone)]
pub struct SimFaults {
    /// `(task, failures)`: the first `failures` attempts of map `task`
    /// die right after their map compute finishes — the read and CPU
    /// cost is paid, no output is written — and the task is requeued.
    pub map_failures: Vec<(usize, usize)>,
    /// `(task, factor)`: attempt 0 of map `task` takes `factor`× the
    /// normal compute time. Re-executions and clones run at full speed
    /// (the slowdown models a sick node, not a slow task).
    pub map_stragglers: Vec<(usize, f64)>,
    /// `(reducer, failures)`: the first `failures` attempts of the
    /// reducer's final phase fail after the reduce CPU pass and replay
    /// from the final-merge read (re-paying disk and CPU).
    pub reduce_failures: Vec<(usize, usize)>,
    /// Attempts allowed per task, `>= 1` (engine `RetryPolicy`).
    pub max_attempts: usize,
    /// Clone straggling maps once their elapsed time exceeds
    /// `slow_factor` × the median completed-map duration; the first
    /// finisher commits, the loser's completion is discarded.
    pub speculation: bool,
    /// Straggler threshold multiplier for speculation.
    pub slow_factor: f64,
}

impl Default for SimFaults {
    fn default() -> Self {
        SimFaults {
            map_failures: Vec::new(),
            map_stragglers: Vec::new(),
            reduce_failures: Vec::new(),
            max_attempts: 4,
            speculation: false,
            slow_factor: 2.0,
        }
    }
}

impl SimFaults {
    fn map_attempt_fails(&self, task: usize, attempt: usize) -> bool {
        let budget = self.max_attempts.saturating_sub(1);
        self.map_failures
            .iter()
            .any(|&(t, n)| t == task && attempt < n.min(budget))
    }

    fn reduce_attempt_fails(&self, reducer: usize, attempt: usize) -> bool {
        let budget = self.max_attempts.saturating_sub(1);
        self.reduce_failures
            .iter()
            .any(|&(r, n)| r == reducer && attempt < n.min(budget))
    }

    fn map_slowdown(&self, task: usize, attempt: usize) -> f64 {
        if attempt != 0 {
            return 1.0;
        }
        self.map_stragglers
            .iter()
            .find(|&&(t, _)| t == task)
            .map_or(1.0, |&(_, f)| f.max(1.0))
    }
}

/// Event actions of the MapReduce state machines. `mb` values ride along
/// so handlers need no side tables.
#[derive(Debug, Clone)]
enum Action {
    // Map pipeline. Every stage carries the attempt id so retried and
    // speculative executions of the same task stay distinguishable.
    MapLoadedRemoteDisk {
        task: usize,
        attempt: usize,
    },
    MapLoadedNic {
        task: usize,
        attempt: usize,
    },
    MapLoaded {
        task: usize,
        attempt: usize,
    },
    MapComputed {
        task: usize,
        attempt: usize,
    },
    MapWritten {
        task: usize,
        attempt: usize,
    },
    // Shuffle.
    SegmentArrived {
        reducer: usize,
        mb: f64,
    },
    /// A partial (pipelined) chunk of a segment: bytes arrive and buffer,
    /// but the per-map segment counter only advances on `SegmentArrived`.
    ChunkArrived {
        reducer: usize,
        mb: f64,
    },
    // Sort-merge reduce pipeline.
    SpillWritten {
        reducer: usize,
        mb: f64,
    },
    MergeRead {
        reducer: usize,
        mb: f64,
    },
    MergeCpuDone {
        reducer: usize,
        mb: f64,
    },
    MergeWritten {
        reducer: usize,
        mb: f64,
    },
    SnapshotRead {
        reducer: usize,
        mb: f64,
    },
    SnapshotCpuDone {
        reducer: usize,
    },
    FinalRead {
        reducer: usize,
        mb: f64,
    },
    FinalCpuDone {
        reducer: usize,
    },
    FinalWrittenLocal {
        reducer: usize,
        mb: f64,
    },
    FinalWritten {
        reducer: usize,
    },
    // Hash reduce pipeline.
    IncUpdateDone {
        reducer: usize,
    },
    ColdSpillWritten {
        reducer: usize,
        mb: f64,
    },
    // CPU consumed without gating anything (HOP reduce-side sorting).
    CpuSink,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReducerState {
    Shuffling,
    Finalizing,
    Done,
}

#[derive(Debug)]
struct Reducer {
    node: usize,
    state: ReducerState,
    buffered_mb: f64,
    runs: Vec<f64>,
    segments_arrived: usize,
    pending_spills: usize,
    merging: bool,
    /// Cold-spill accumulator (hash system).
    cold_pending_mb: f64,
    cold_total_mb: f64,
    /// Incremental-update CPU requests in flight (hash system).
    pending_updates: usize,
    snapshotting: bool,
    /// Final-phase attempt id (bumped by injected reduce failures).
    attempt: usize,
    /// MB the final phase reads from disk — remembered so an injected
    /// failure can replay the read.
    final_read_mb: f64,
}

/// Resource index layout per compute node plus storage nodes.
struct ResIdx {
    compute_nodes: usize,
    storage_nodes: usize,
    /// Under `SingleHdd`, DFS and intermediate data share one physical
    /// disk — the §III-C contention the SSD experiment relieves.
    shared_disk: bool,
}

impl ResIdx {
    fn cpu(&self, node: usize) -> usize {
        node
    }
    fn data_disk(&self, node: usize) -> usize {
        self.compute_nodes + node
    }
    fn inter_disk(&self, node: usize) -> usize {
        if self.shared_disk {
            self.data_disk(node)
        } else {
            2 * self.compute_nodes + node
        }
    }
    fn nic(&self, node: usize) -> usize {
        3 * self.compute_nodes + node
    }
    fn storage_disk(&self, s: usize) -> usize {
        4 * self.compute_nodes + s
    }
    fn total(&self) -> usize {
        4 * self.compute_nodes + self.storage_nodes
    }
}

struct World {
    spec: SimJobSpec,
    q: EventQueue<Action>,
    res: Vec<Resource<Action>>,
    idx: ResIdx,
    sampler: Sampler,
    // Map scheduling (locality-aware over the DFS placement).
    dfs: Dfs,
    /// Per-node queues of tasks with a local replica (may contain
    /// already-scheduled tasks; filtered on pop).
    node_queues: Vec<VecDeque<usize>>,
    /// Global FIFO fallback for work stealing (remote reads).
    global_queue: VecDeque<usize>,
    scheduled: Vec<bool>,
    /// Node each attempt of each task was assigned to (`[task][attempt]`;
    /// attempt ids are sequential per task).
    attempt_node: Vec<Vec<usize>>,
    free_slots: Vec<usize>,
    pending_count: usize,
    maps_done: usize,
    total_maps: usize,
    local_maps: usize,
    remote_maps: usize,
    // Fault tolerance (attempt-aware map commit, mirroring the engine).
    /// Attempt id the next launch of each task will use.
    next_attempt: Vec<usize>,
    /// Whether the task's output has been committed (first attempt to
    /// finish wins; later completions are discarded).
    map_committed: Vec<bool>,
    /// Attempts of the task currently in flight.
    map_running: Vec<usize>,
    /// Sim time each attempt started (`[task][attempt]`).
    attempt_started: Vec<Vec<SimTime>>,
    /// Speculative clone attempt id, if one was launched.
    clone_attempt: Vec<Option<usize>>,
    /// Durations of committed maps (straggler-threshold median).
    map_durations: Vec<SimTime>,
    map_attempts: usize,
    retries: usize,
    speculative_launched: usize,
    speculative_wins: usize,
    // Reducers.
    reducers: Vec<Reducer>,
    reducers_done: usize,
    // Derived volumes.
    map_out_block_mb: f64,
    // Snapshot thresholds (maps_done counts), ascending.
    snapshot_plan: Vec<usize>,
    snapshots_taken: u64,
    // Totals.
    spill_written_mb: f64,
    merge_read_mb: f64,
    merge_written_mb: f64,
    completion: Option<SimTime>,
    /// Trace collection point; events are stamped with sim time so a
    /// simulated run renders on the same Chrome-trace schema as a real
    /// engine run.
    tracer: Tracer,
}

impl World {
    fn new(spec: SimJobSpec, tracer: Tracer) -> Self {
        let cluster = &spec.cluster;
        let idx = ResIdx {
            compute_nodes: cluster.compute_nodes(),
            storage_nodes: cluster.storage_nodes(),
            shared_disk: cluster.storage == crate::cluster::StorageConfig::SingleHdd,
        };
        let mut res = Vec::with_capacity(idx.total());
        for n in 0..idx.compute_nodes {
            res.push(Resource::new(
                idx.cpu(n),
                format!("cpu{n}"),
                1.0,
                cluster.cores_per_node,
            ));
        }
        for n in 0..idx.compute_nodes {
            res.push(
                Resource::new(
                    idx.data_disk(n),
                    format!("datadisk{n}"),
                    cluster.data_disk.bandwidth_mb_s,
                    1,
                )
                .with_overhead(secs(cluster.data_disk.overhead_s)),
            );
        }
        for n in 0..idx.compute_nodes {
            res.push(
                Resource::new(
                    idx.inter_disk(n),
                    format!("interdisk{n}"),
                    cluster.inter_disk.bandwidth_mb_s,
                    1,
                )
                .with_overhead(secs(cluster.inter_disk.overhead_s)),
            );
        }
        for n in 0..idx.compute_nodes {
            res.push(
                Resource::new(idx.nic(n), format!("nic{n}"), cluster.nic.bandwidth_mb_s, 1)
                    .with_overhead(secs(cluster.nic.overhead_s)),
            );
        }
        for s in 0..idx.storage_nodes {
            res.push(
                Resource::new(
                    idx.storage_disk(s),
                    format!("storagedisk{s}"),
                    cluster.data_disk.bandwidth_mb_s,
                    1,
                )
                .with_overhead(secs(cluster.data_disk.overhead_s)),
            );
        }

        let total_maps = spec.workload.map_tasks(cluster.block_mb);
        // Blocks live on the data-bearing nodes: the compute nodes
        // normally, the storage nodes under the separated architecture.
        let data_nodes = if cluster.dfs_is_remote() {
            idx.storage_nodes.max(1)
        } else {
            idx.compute_nodes
        };
        let dfs = Dfs::place(
            total_maps,
            data_nodes,
            DfsConfig {
                replication: spec.replication,
            },
        );
        let mut node_queues = vec![VecDeque::new(); idx.compute_nodes];
        if !cluster.dfs_is_remote() {
            for (n, queue) in node_queues.iter_mut().enumerate() {
                *queue = dfs.primary_blocks(n).collect();
            }
        }
        let map_out_block_mb = cluster.block_mb * spec.workload.map_output_ratio;
        let reducers = (0..spec.workload.reducers)
            .map(|r| Reducer {
                node: r % idx.compute_nodes,
                state: ReducerState::Shuffling,
                buffered_mb: 0.0,
                runs: Vec::new(),
                segments_arrived: 0,
                pending_spills: 0,
                merging: false,
                cold_pending_mb: 0.0,
                cold_total_mb: 0.0,
                pending_updates: 0,
                snapshotting: false,
                attempt: 0,
                final_read_mb: 0.0,
            })
            .collect();
        let mut snapshot_plan: Vec<usize> = spec
            .snapshots
            .iter()
            .map(|f| ((f * total_maps as f64).ceil() as usize).max(1))
            .collect();
        snapshot_plan.sort_unstable();
        snapshot_plan.dedup();

        let free_slots = vec![spec.cluster.map_slots_per_node; idx.compute_nodes];
        World {
            q: EventQueue::new(),
            res,
            idx,
            sampler: Sampler::new(),
            dfs,
            node_queues,
            global_queue: (0..total_maps).collect(),
            scheduled: vec![false; total_maps],
            attempt_node: vec![Vec::new(); total_maps],
            free_slots,
            pending_count: total_maps,
            maps_done: 0,
            total_maps,
            local_maps: 0,
            remote_maps: 0,
            next_attempt: vec![0; total_maps],
            map_committed: vec![false; total_maps],
            map_running: vec![0; total_maps],
            attempt_started: vec![Vec::new(); total_maps],
            clone_attempt: vec![None; total_maps],
            map_durations: Vec::new(),
            map_attempts: 0,
            retries: 0,
            speculative_launched: 0,
            speculative_wins: 0,
            reducers,
            reducers_done: 0,
            map_out_block_mb,
            snapshot_plan,
            snapshots_taken: 0,
            spill_written_mb: 0.0,
            merge_read_mb: 0.0,
            merge_written_mb: 0.0,
            completion: None,
            tracer,
            spec,
        }
    }

    // --- trace emission ---------------------------------------------------

    /// Open a span on `(group, id)` at sim time `at`. Each emission uses a
    /// transient buffer that flushes immediately, so the shared stream
    /// keeps emission order at equal timestamps (which is what the
    /// stack-based span pairing relies on).
    fn trace_begin(
        &self,
        group: &'static str,
        id: usize,
        name: &'static str,
        cat: &'static str,
        at: SimTime,
    ) {
        if self.tracer.is_enabled() {
            self.tracer.local(Track::new(group, id as u64)).begin_at(
                name,
                cat,
                Duration::from_micros(at),
            );
        }
    }

    /// Close the innermost span on `(group, id)` at sim time `at`.
    fn trace_end(
        &self,
        group: &'static str,
        id: usize,
        name: &'static str,
        cat: &'static str,
        at: SimTime,
    ) {
        if self.tracer.is_enabled() {
            self.tracer.local(Track::new(group, id as u64)).end_at(
                name,
                cat,
                Duration::from_micros(at),
            );
        }
    }

    /// Record a point event on `(group, id)` at sim time `at`.
    fn trace_instant(
        &self,
        group: &'static str,
        id: usize,
        name: &'static str,
        cat: &'static str,
        at: SimTime,
        args: &[(&'static str, f64)],
    ) {
        if self.tracer.is_enabled() {
            self.tracer.local(Track::new(group, id as u64)).instant_at(
                name,
                cat,
                Duration::from_micros(at),
                args,
            );
        }
    }

    // --- gauge upkeep -----------------------------------------------------

    fn refresh_resource_gauges(&mut self) {
        let now = self.q.now();
        let busy: usize = (0..self.idx.compute_nodes)
            .map(|n| self.res[self.idx.cpu(n)].busy())
            .sum();
        self.sampler.set(Gauge::BusyCores, now, busy as f64);
        let mut outstanding = 0usize;
        for n in 0..self.idx.compute_nodes {
            outstanding += self.res[self.idx.data_disk(n)].outstanding();
            if !self.idx.shared_disk {
                outstanding += self.res[self.idx.inter_disk(n)].outstanding();
            }
        }
        for s in 0..self.idx.storage_nodes {
            outstanding += self.res[self.idx.storage_disk(s)].outstanding();
        }
        self.sampler
            .set(Gauge::DiskOutstanding, now, outstanding as f64);
    }

    // --- map pipeline -----------------------------------------------------

    /// Pop the next task for `node`: local-replica queue first, then the
    /// global FIFO (a remote read). `None` when nothing is pending.
    fn pick_task_for(&mut self, node: usize) -> Option<usize> {
        while let Some(t) = self.node_queues[node].pop_front() {
            if !self.scheduled[t] {
                return Some(t);
            }
        }
        while let Some(t) = self.global_queue.pop_front() {
            if !self.scheduled[t] {
                return Some(t);
            }
        }
        None
    }

    /// Locality-aware greedy scheduling: fill every free slot, preferring
    /// tasks whose block has a replica on the slot's node (the JobTracker
    /// behaviour HDFS block placement enables, §II-A).
    fn schedule_maps(&mut self) {
        let nodes = self.idx.compute_nodes;
        'outer: for node in 0..nodes {
            while self.free_slots[node] > 0 {
                if self.pending_count == 0 {
                    break 'outer;
                }
                let Some(task) = self.pick_task_for(node) else {
                    break 'outer;
                };
                self.scheduled[task] = true;
                self.pending_count -= 1;
                self.launch_map(task, node);
            }
        }
    }

    /// Start one attempt of `task` on `node`: claim the slot, assign the
    /// attempt id, and issue the block read. Shared by initial
    /// scheduling, failure re-execution, and speculative cloning.
    fn launch_map(&mut self, task: usize, node: usize) {
        self.free_slots[node] -= 1;
        let attempt = self.next_attempt[task];
        self.next_attempt[task] += 1;
        debug_assert_eq!(self.attempt_node[task].len(), attempt);
        self.attempt_node[task].push(node);
        self.map_attempts += 1;
        self.map_running[task] += 1;
        let now = self.q.now();
        self.attempt_started[task].push(now);
        self.sampler.adjust(Gauge::MapTasks, now, 1.0);
        self.trace_begin("map", task, "map_task", "task", now);
        let block = self.spec.cluster.block_mb;
        if self.spec.cluster.dfs_is_remote() {
            // Separated architecture: every read is remote, from
            // the storage node holding the block.
            self.remote_maps += 1;
            let s = self.dfs.primary(task);
            self.res[self.idx.storage_disk(s)].request(
                &mut self.q,
                block,
                Action::MapLoadedRemoteDisk { task, attempt },
            );
        } else if self.dfs.is_local(task, node) {
            self.local_maps += 1;
            self.res[self.idx.data_disk(node)].request(
                &mut self.q,
                block,
                Action::MapLoaded { task, attempt },
            );
        } else {
            // Non-local task: read from a replica holder's disk,
            // then cross the network to this node.
            self.remote_maps += 1;
            let src = self.dfs.primary(task);
            self.res[self.idx.data_disk(src)].request(
                &mut self.q,
                block,
                Action::MapLoadedRemoteDisk { task, attempt },
            );
        }
    }

    fn map_cpu_seconds(&self) -> f64 {
        let w = &self.spec.workload;
        let c = &self.spec.cost;
        let block = self.spec.cluster.block_mb;
        let map_fn = block * c.cpu_map_s_mb * w.map_cpu_weight;
        // Grouping cost follows the *pre-combine* emitted volume (~ the
        // input block scaled by the workload's sort weight): the sort runs
        // over every emitted record before the combine collapses them.
        let grouping = match self.spec.system {
            SystemType::StockHadoop => block * c.cpu_sort_s_mb * w.sort_cpu_weight,
            // HOP moves some sorting work to reducers (§III-D).
            SystemType::Hop => block * c.cpu_sort_s_mb * w.sort_cpu_weight * 0.5,
            SystemType::HashOnePass => block * c.cpu_hash_s_mb * w.sort_cpu_weight,
        };
        map_fn + grouping
    }

    fn on_map_loaded(&mut self, task: usize, attempt: usize) {
        let node = self.attempt_node[task][attempt];
        // A straggling node runs the map function slow; re-executions
        // and speculative clones land elsewhere and run at full speed.
        let cpu_s = self.map_cpu_seconds() * self.spec.faults.map_slowdown(task, attempt);
        self.res[self.idx.cpu(node)].request(
            &mut self.q,
            cpu_s,
            Action::MapComputed { task, attempt },
        );
    }

    fn on_map_computed(&mut self, task: usize, attempt: usize) {
        if self.spec.faults.map_attempt_fails(task, attempt) {
            // The attempt dies after its compute: the block read and the
            // CPU are wasted, no output reaches disk or the shuffle.
            self.fail_map_attempt(task, attempt);
            return;
        }
        let node = self.attempt_node[task][attempt];
        match self.spec.system {
            SystemType::StockHadoop => {
                // Synchronous map-output write gates completion (§II-A).
                self.res[self.idx.inter_disk(node)].request(
                    &mut self.q,
                    self.map_out_block_mb,
                    Action::MapWritten { task, attempt },
                );
            }
            SystemType::HashOnePass => {
                // The hash system pushes output eagerly and persists it
                // with asynchronous I/O (§III-B.2): the write occupies the
                // disk but does not gate task completion or the shuffle.
                self.res[self.idx.inter_disk(node)].request(
                    &mut self.q,
                    self.map_out_block_mb,
                    Action::CpuSink,
                );
                self.q.schedule(0, Action::MapWritten { task, attempt });
            }
            SystemType::Hop => {
                // HOP pipelines the *push* but, being Hadoop underneath,
                // still persists map output synchronously.
                self.res[self.idx.inter_disk(node)].request(
                    &mut self.q,
                    self.map_out_block_mb,
                    Action::MapWritten { task, attempt },
                );
            }
        }
    }

    /// An injected failure killed `attempt` of `task`: release its slot
    /// and requeue the task (fresh attempt id) unless a twin attempt is
    /// still running or the task already committed.
    fn fail_map_attempt(&mut self, task: usize, attempt: usize) {
        let now = self.q.now();
        self.retries += 1;
        self.map_running[task] -= 1;
        self.sampler.adjust(Gauge::MapTasks, now, -1.0);
        self.trace_end("map", task, "map_task", "task", now);
        self.trace_instant(
            "driver",
            0,
            "task_failed",
            "fault",
            now,
            &[("task", task as f64), ("attempt", attempt as f64)],
        );
        self.free_slots[self.attempt_node[task][attempt]] += 1;
        if !self.map_committed[task] && self.map_running[task] == 0 {
            self.trace_instant(
                "driver",
                0,
                "retry",
                "fault",
                now,
                &[("task", task as f64), ("attempt", (attempt + 1) as f64)],
            );
            self.scheduled[task] = false;
            self.pending_count += 1;
            self.global_queue.push_back(task);
        }
        self.schedule_maps();
    }

    fn on_map_written(&mut self, task: usize, attempt: usize) {
        let now = self.q.now();
        // Sync and async writes count the same volume; the async one is
        // approximated here (when its task finishes) rather than when its
        // disk request drains — the totals are identical.
        self.sampler
            .count(Counter::DiskWriteMb, now, self.map_out_block_mb);
        self.sampler.adjust(Gauge::MapTasks, now, -1.0);
        self.trace_end("map", task, "map_task", "task", now);
        self.map_running[task] -= 1;
        self.free_slots[self.attempt_node[task][attempt]] += 1;
        if self.map_committed[task] {
            // A twin attempt already committed this task — the engine
            // cancels the loser; the sim lets it drain and discards the
            // completion (its output never reaches the shuffle).
            self.schedule_maps();
            return;
        }
        self.map_committed[task] = true;
        self.map_durations
            .push(now.saturating_sub(self.attempt_started[task][attempt]));
        if self.clone_attempt[task] == Some(attempt) {
            self.speculative_wins += 1;
        }
        self.maps_done += 1;

        // Ship one segment per reducer through the destination NIC. HOP
        // "transmits map output eagerly in finer granularity and hence
        // increases network cost" (§III-D): model its push as several
        // small transfers, each paying the per-request overhead.
        let r_count = self.reducers.len();
        let seg_mb = self.map_out_block_mb / r_count as f64;
        let chunks = if self.spec.system == SystemType::Hop {
            6
        } else {
            1
        };
        for r in 0..r_count {
            let dst = self.reducers[r].node;
            for c in 0..chunks {
                // The arrival completing the segment carries the marker;
                // earlier chunks deliver bytes only.
                let last = c == chunks - 1;
                self.res[self.idx.nic(dst)].request(
                    &mut self.q,
                    seg_mb / chunks as f64,
                    if last {
                        Action::SegmentArrived {
                            reducer: r,
                            mb: seg_mb / chunks as f64,
                        }
                    } else {
                        Action::ChunkArrived {
                            reducer: r,
                            mb: seg_mb / chunks as f64,
                        }
                    },
                );
            }
        }

        // HOP snapshots trigger on map-completion fractions.
        while self
            .snapshot_plan
            .first()
            .is_some_and(|&t| self.maps_done >= t)
        {
            self.snapshot_plan.remove(0);
            self.trigger_snapshots();
        }
        self.schedule_maps();
        self.maybe_speculate();
    }

    /// Mirror of the engine's straggler scan: once enough maps have
    /// committed to estimate a median duration, clone any original
    /// attempt that has been running longer than `slow_factor`× that
    /// median (at most one clone per task); the first finisher commits.
    /// Pending (unscheduled) work keeps priority — clones only take
    /// slots `schedule_maps` left free.
    fn maybe_speculate(&mut self) {
        if !self.spec.faults.speculation || self.map_durations.len() < 2 {
            return;
        }
        let mut durations = self.map_durations.clone();
        durations.sort_unstable();
        let median = durations[durations.len() / 2];
        let threshold = ((median as f64) * self.spec.faults.slow_factor).ceil() as SimTime;
        let now = self.q.now();
        for task in 0..self.total_maps {
            if self.map_committed[task]
                || self.clone_attempt[task].is_some()
                || self.map_running[task] == 0
            {
                continue;
            }
            let elapsed = now.saturating_sub(self.attempt_started[task][0]);
            if elapsed <= threshold {
                continue;
            }
            let Some(node) = (0..self.idx.compute_nodes).find(|&n| self.free_slots[n] > 0) else {
                return; // no free slot anywhere; retry on the next completion
            };
            let attempt = self.next_attempt[task];
            self.clone_attempt[task] = Some(attempt);
            self.speculative_launched += 1;
            self.trace_instant(
                "driver",
                0,
                "speculate",
                "fault",
                now,
                &[("task", task as f64), ("attempt", attempt as f64)],
            );
            self.launch_map(task, node);
        }
    }

    // --- shuffle + sort-merge reduce ---------------------------------------

    fn on_segment_arrived(&mut self, reducer: usize, mb: f64, completes_segment: bool) {
        let now = self.q.now();
        self.sampler.count(Counter::NetMb, now, mb);
        let node = self.reducers[reducer].node;
        if completes_segment {
            self.reducers[reducer].segments_arrived += 1;
        }

        match self.spec.system {
            SystemType::StockHadoop | SystemType::Hop => {
                if self.spec.system == SystemType::Hop {
                    // Reduce-side share of the sorting work.
                    let cpu_s = mb
                        * self.spec.cost.cpu_sort_s_mb
                        * self.spec.workload.sort_cpu_weight
                        * 0.5;
                    self.res[self.idx.cpu(node)].request(&mut self.q, cpu_s, Action::CpuSink);
                }
                self.reducers[reducer].buffered_mb += mb;
                // Adaptive governor mirror: skewed reducers borrow slack
                // from idle siblings, so spills happen only under global
                // pressure — and hit the largest consumer.
                let victim = if self.spec.adaptive_memory {
                    let pool = self.spec.reduce_mem_mb * self.reducers.len() as f64;
                    let total: f64 = self.reducers.iter().map(|r| r.buffered_mb).sum();
                    if total >= pool {
                        (0..self.reducers.len()).max_by(|&a, &b| {
                            self.reducers[a]
                                .buffered_mb
                                .total_cmp(&self.reducers[b].buffered_mb)
                        })
                    } else {
                        None
                    }
                } else if self.reducers[reducer].buffered_mb >= self.spec.reduce_mem_mb {
                    Some(reducer)
                } else {
                    None
                };
                if let Some(victim) = victim {
                    let spill_mb =
                        self.reducers[victim].buffered_mb * self.spec.workload.reduce_spill_ratio;
                    self.reducers[victim].buffered_mb = 0.0;
                    self.reducers[victim].pending_spills += 1;
                    let vnode = self.reducers[victim].node;
                    self.res[self.idx.inter_disk(vnode)].request(
                        &mut self.q,
                        spill_mb,
                        Action::SpillWritten {
                            reducer: victim,
                            mb: spill_mb,
                        },
                    );
                }
            }
            SystemType::HashOnePass => {
                // Incremental in-memory update, spread over arrival.
                let cpu_s =
                    mb * self.spec.cost.cpu_inc_update_s_mb * self.spec.workload.reduce_cpu_weight;
                self.reducers[reducer].pending_updates += 1;
                self.res[self.idx.cpu(node)].request(
                    &mut self.q,
                    cpu_s,
                    Action::IncUpdateDone { reducer },
                );
                // Cold tail spills once, in 64 MB chunks.
                let cold = mb * (1.0 - self.spec.workload.hot_fraction);
                self.reducers[reducer].cold_pending_mb += cold;
                if self.reducers[reducer].cold_pending_mb >= 64.0 {
                    let chunk = self.reducers[reducer].cold_pending_mb;
                    self.reducers[reducer].cold_pending_mb = 0.0;
                    self.reducers[reducer].pending_spills += 1;
                    self.res[self.idx.inter_disk(node)].request(
                        &mut self.q,
                        chunk,
                        Action::ColdSpillWritten { reducer, mb: chunk },
                    );
                }
            }
        }
        self.maybe_leave_shuffle(reducer);
        self.maybe_start_final(reducer);
    }

    fn all_segments_arrived(&self, reducer: usize) -> bool {
        self.reducers[reducer].segments_arrived == self.total_maps
    }

    fn maybe_leave_shuffle(&mut self, reducer: usize) {
        if self.all_segments_arrived(reducer)
            && self.reducers[reducer].state == ReducerState::Shuffling
        {
            // Still formally "shuffling" until final starts; the shuffle
            // gauge tracks reducers waiting on map data.
            let now = self.q.now();
            self.sampler.adjust(Gauge::ShuffleTasks, now, -1.0);
        }
    }

    fn on_spill_written(&mut self, reducer: usize, mb: f64) {
        let now = self.q.now();
        self.sampler.count(Counter::DiskWriteMb, now, mb);
        self.trace_instant(
            "reduce",
            reducer,
            "reduce_spill",
            "spill",
            now,
            &[("mb", mb)],
        );
        self.spill_written_mb += mb;
        self.reducers[reducer].pending_spills -= 1;
        self.reducers[reducer].runs.push(mb);
        self.maybe_background_merge(reducer, false);
        self.maybe_start_final(reducer);
    }

    /// "A background thread merges these on-disk files progressively
    /// whenever the number of such files exceeds a threshold F" (§II-A).
    /// Following Hadoop's actual policy, a background pass starts once
    /// `2F - 1` files accumulate and merges the `F` smallest, so large
    /// already-merged files are not re-merged until the final phase.
    /// `force` starts a pass as soon as more than `F` files exist (the
    /// end-of-job multipass that brings the count down to F).
    fn maybe_background_merge(&mut self, reducer: usize, force: bool) {
        let r = &mut self.reducers[reducer];
        let trigger = if force {
            self.spec.merge_factor + 1
        } else {
            2 * self.spec.merge_factor - 1
        };
        if r.merging || r.runs.len() < trigger {
            return;
        }
        r.merging = true;
        r.runs.sort_by(|a, b| b.partial_cmp(a).unwrap());
        // Background passes merge F files; the end-of-job pass merges
        // exactly enough of the smallest files to land on F (Hadoop's
        // final-merge policy, which is what keeps Table I's sessionization
        // spill near 1.4x the map output rather than a full extra pass).
        let width = if force {
            (r.runs.len() - self.spec.merge_factor + 1).min(r.runs.len())
        } else {
            self.spec.merge_factor
        };
        let merged: f64 = r.runs.split_off(r.runs.len() - width).iter().sum();
        let node = r.node;
        let now = self.q.now();
        self.sampler.adjust(Gauge::MergeTasks, now, 1.0);
        self.res[self.idx.inter_disk(node)].request(
            &mut self.q,
            merged,
            Action::MergeRead {
                reducer,
                mb: merged,
            },
        );
    }

    fn on_merge_read(&mut self, reducer: usize, mb: f64) {
        let now = self.q.now();
        self.sampler.count(Counter::DiskReadMb, now, mb);
        self.merge_read_mb += mb;
        let node = self.reducers[reducer].node;
        let cpu_s = mb * self.spec.cost.cpu_merge_s_mb;
        self.res[self.idx.cpu(node)].request(
            &mut self.q,
            cpu_s,
            Action::MergeCpuDone { reducer, mb },
        );
    }

    fn on_merge_cpu_done(&mut self, reducer: usize, mb: f64) {
        let node = self.reducers[reducer].node;
        self.res[self.idx.inter_disk(node)].request(
            &mut self.q,
            mb,
            Action::MergeWritten { reducer, mb },
        );
    }

    fn on_merge_written(&mut self, reducer: usize, mb: f64) {
        let now = self.q.now();
        self.sampler.count(Counter::DiskWriteMb, now, mb);
        self.merge_written_mb += mb;
        self.sampler.adjust(Gauge::MergeTasks, now, -1.0);
        self.trace_instant("reduce", reducer, "merge_pass", "merge", now, &[("mb", mb)]);
        self.reducers[reducer].merging = false;
        self.reducers[reducer].runs.push(mb);
        self.maybe_background_merge(reducer, false);
        self.maybe_start_final(reducer);
    }

    // --- HOP snapshots ------------------------------------------------------

    fn trigger_snapshots(&mut self) {
        for r in 0..self.reducers.len() {
            if self.reducers[r].state != ReducerState::Shuffling || self.reducers[r].snapshotting {
                continue;
            }
            let on_disk: f64 = self.reducers[r].runs.iter().sum();
            if on_disk <= 0.0 && self.reducers[r].buffered_mb <= 0.0 {
                continue;
            }
            self.reducers[r].snapshotting = true;
            self.snapshots_taken += 1;
            let now = self.q.now();
            self.sampler.adjust(Gauge::MergeTasks, now, 1.0);
            let node = self.reducers[r].node;
            // Re-read everything on disk ("repeating the merge operation
            // for each snapshot... may incur a significant I/O overhead").
            self.res[self.idx.inter_disk(node)].request(
                &mut self.q,
                on_disk,
                Action::SnapshotRead {
                    reducer: r,
                    mb: on_disk,
                },
            );
        }
    }

    fn on_snapshot_read(&mut self, reducer: usize, mb: f64) {
        let now = self.q.now();
        self.sampler.count(Counter::DiskReadMb, now, mb);
        let node = self.reducers[reducer].node;
        let total = mb + self.reducers[reducer].buffered_mb;
        let cpu_s = total
            * (self.spec.cost.cpu_merge_s_mb
                + self.spec.cost.cpu_reduce_s_mb * self.spec.workload.reduce_cpu_weight);
        self.res[self.idx.cpu(node)].request(
            &mut self.q,
            cpu_s,
            Action::SnapshotCpuDone { reducer },
        );
    }

    fn on_snapshot_cpu_done(&mut self, reducer: usize) {
        let now = self.q.now();
        self.sampler.adjust(Gauge::MergeTasks, now, -1.0);
        self.trace_instant("reduce", reducer, "snapshot", "phase", now, &[]);
        self.reducers[reducer].snapshotting = false;
        self.maybe_start_final(reducer);
    }

    // --- hash reduce ---------------------------------------------------------

    fn on_inc_update_done(&mut self, reducer: usize) {
        self.reducers[reducer].pending_updates -= 1;
        self.maybe_start_final(reducer);
    }

    fn on_cold_spill_written(&mut self, reducer: usize, mb: f64) {
        let now = self.q.now();
        self.sampler.count(Counter::DiskWriteMb, now, mb);
        self.trace_instant("reduce", reducer, "cold_spill", "spill", now, &[("mb", mb)]);
        self.spill_written_mb += mb;
        self.reducers[reducer].pending_spills -= 1;
        self.reducers[reducer].cold_total_mb += mb;
        self.maybe_start_final(reducer);
    }

    // --- final phase -----------------------------------------------------------

    fn reducer_quiescent(&self, reducer: usize) -> bool {
        let r = &self.reducers[reducer];
        self.all_segments_arrived(reducer)
            && r.pending_spills == 0
            && !r.merging
            && !r.snapshotting
            && r.pending_updates == 0
    }

    fn maybe_start_final(&mut self, reducer: usize) {
        if self.reducers[reducer].state != ReducerState::Shuffling
            || !self.reducer_quiescent(reducer)
        {
            return;
        }
        // Sort-merge: if still above F runs, keep multipassing first.
        if matches!(self.spec.system, SystemType::StockHadoop | SystemType::Hop)
            && self.reducers[reducer].runs.len() > self.spec.merge_factor
        {
            // End-of-job multipass: bring the file count down to F.
            self.maybe_background_merge(reducer, true);
            return;
        }
        // §III-B.4: the sort-merge reducer writes its in-memory tail to
        // disk "waiting for all future data to produce a single sorted
        // run" — even when memory would have sufficed. This is the spill
        // Table I records for the counting workloads (1.4 GB / 0.2 GB).
        if matches!(self.spec.system, SystemType::StockHadoop | SystemType::Hop)
            && self.reducers[reducer].buffered_mb > 0.0
        {
            let spill_mb =
                self.reducers[reducer].buffered_mb * self.spec.workload.reduce_spill_ratio;
            self.reducers[reducer].buffered_mb = 0.0;
            self.reducers[reducer].pending_spills += 1;
            let node = self.reducers[reducer].node;
            self.res[self.idx.inter_disk(node)].request(
                &mut self.q,
                spill_mb,
                Action::SpillWritten {
                    reducer,
                    mb: spill_mb,
                },
            );
            return; // re-enter via SpillWritten -> maybe_start_final
        }
        self.reducers[reducer].state = ReducerState::Finalizing;
        let now = self.q.now();
        self.sampler.adjust(Gauge::ReduceTasks, now, 1.0);
        self.trace_end("reduce", reducer, Phase::Shuffle.label(), "phase", now);
        self.trace_begin("reduce", reducer, Phase::ReduceFn.label(), "phase", now);
        let node = self.reducers[reducer].node;
        let read_mb = match self.spec.system {
            SystemType::StockHadoop | SystemType::Hop => {
                // Final merge reads all on-disk runs.
                self.reducers[reducer].runs.iter().sum::<f64>()
            }
            SystemType::HashOnePass => {
                // Resolve the cold spill once.
                self.reducers[reducer].cold_total_mb + self.reducers[reducer].cold_pending_mb
            }
        };
        self.reducers[reducer].final_read_mb = read_mb;
        if read_mb > 0.0 {
            self.res[self.idx.inter_disk(node)].request(
                &mut self.q,
                read_mb,
                Action::FinalRead {
                    reducer,
                    mb: read_mb,
                },
            );
        } else {
            self.q.schedule(0, Action::FinalRead { reducer, mb: 0.0 });
        }
    }

    fn on_final_read(&mut self, reducer: usize, mb: f64) {
        let now = self.q.now();
        if mb > 0.0 {
            self.sampler.count(Counter::DiskReadMb, now, mb);
            self.merge_read_mb += mb;
        }
        let node = self.reducers[reducer].node;
        let w = &self.spec.workload;
        let c = &self.spec.cost;
        let total_mb = mb + self.reducers[reducer].buffered_mb;
        let cpu_s = match self.spec.system {
            SystemType::StockHadoop | SystemType::Hop => {
                total_mb * (c.cpu_merge_s_mb + c.cpu_reduce_s_mb * w.reduce_cpu_weight)
            }
            // Hash: only the cold remainder needs work; hot keys are done.
            SystemType::HashOnePass => mb * (c.cpu_inc_update_s_mb * w.reduce_cpu_weight) + 0.5,
        };
        self.res[self.idx.cpu(node)].request(&mut self.q, cpu_s, Action::FinalCpuDone { reducer });
    }

    fn on_final_cpu_done(&mut self, reducer: usize) {
        let attempt = self.reducers[reducer].attempt;
        if self.spec.faults.reduce_attempt_fails(reducer, attempt) {
            // The reduce attempt dies after its CPU pass; the replacement
            // replays the final phase from the on-disk runs (the engine's
            // retained-segment replay, priced as re-read + re-reduce).
            let now = self.q.now();
            self.retries += 1;
            self.reducers[reducer].attempt += 1;
            self.trace_instant(
                "driver",
                0,
                "task_failed",
                "fault",
                now,
                &[("reducer", reducer as f64), ("attempt", attempt as f64)],
            );
            self.trace_instant(
                "driver",
                0,
                "retry",
                "fault",
                now,
                &[
                    ("reducer", reducer as f64),
                    ("attempt", (attempt + 1) as f64),
                ],
            );
            let node = self.reducers[reducer].node;
            let mb = self.reducers[reducer].final_read_mb;
            if mb > 0.0 {
                self.res[self.idx.inter_disk(node)].request(
                    &mut self.q,
                    mb,
                    Action::FinalRead { reducer, mb },
                );
            } else {
                self.q.schedule(0, Action::FinalRead { reducer, mb: 0.0 });
            }
            return;
        }
        let node = self.reducers[reducer].node;
        let out_mb = self.spec.workload.input_mb * self.spec.workload.output_ratio
            / self.reducers.len() as f64;
        if self.spec.cluster.dfs_is_remote() {
            // Output travels over the NIC to a storage node's disk.
            self.res[self.idx.nic(node)].request(
                &mut self.q,
                out_mb,
                Action::FinalWrittenLocal {
                    reducer,
                    mb: out_mb,
                },
            );
        } else {
            self.res[self.idx.data_disk(node)].request(
                &mut self.q,
                out_mb,
                Action::FinalWritten { reducer },
            );
        }
    }

    fn on_final_written_local(&mut self, reducer: usize, mb: f64) {
        // Second hop: the storage node's disk absorbs the write.
        let s = reducer % self.idx.storage_nodes.max(1);
        self.res[self.idx.storage_disk(s)].request(
            &mut self.q,
            mb,
            Action::FinalWritten { reducer },
        );
    }

    fn on_final_written(&mut self, reducer: usize) {
        let now = self.q.now();
        let out_mb = self.spec.workload.input_mb * self.spec.workload.output_ratio
            / self.reducers.len() as f64;
        self.sampler.count(Counter::DiskWriteMb, now, out_mb);
        self.sampler.adjust(Gauge::ReduceTasks, now, -1.0);
        self.trace_end("reduce", reducer, Phase::ReduceFn.label(), "phase", now);
        self.trace_end("reduce", reducer, "reduce_task", "task", now);
        self.reducers[reducer].state = ReducerState::Done;
        self.reducers_done += 1;
        if self.reducers_done == self.reducers.len() {
            self.completion = Some(now);
        }
    }

    // --- dispatch ---------------------------------------------------------------

    fn dispatch(&mut self, action: Action) {
        match action {
            Action::MapLoadedRemoteDisk { task, attempt } => {
                // Remote DFS read: source disk done, now the compute
                // node's NIC.
                let node = self.attempt_node[task][attempt];
                let now = self.q.now();
                self.sampler
                    .count(Counter::DiskReadMb, now, self.spec.cluster.block_mb);
                self.res[self.idx.nic(node)].request(
                    &mut self.q,
                    self.spec.cluster.block_mb,
                    Action::MapLoadedNic { task, attempt },
                );
            }
            Action::MapLoadedNic { task, attempt } => {
                self.sampler
                    .count(Counter::NetMb, self.q.now(), self.spec.cluster.block_mb);
                self.on_map_loaded(task, attempt);
            }
            Action::MapLoaded { task, attempt } => {
                let now = self.q.now();
                self.sampler
                    .count(Counter::DiskReadMb, now, self.spec.cluster.block_mb);
                self.on_map_loaded(task, attempt);
            }
            Action::MapComputed { task, attempt } => self.on_map_computed(task, attempt),
            Action::MapWritten { task, attempt } => self.on_map_written(task, attempt),
            Action::SegmentArrived { reducer, mb } => self.on_segment_arrived(reducer, mb, true),
            Action::ChunkArrived { reducer, mb } => self.on_segment_arrived(reducer, mb, false),
            Action::SpillWritten { reducer, mb } => self.on_spill_written(reducer, mb),
            Action::MergeRead { reducer, mb } => self.on_merge_read(reducer, mb),
            Action::MergeCpuDone { reducer, mb } => self.on_merge_cpu_done(reducer, mb),
            Action::MergeWritten { reducer, mb } => self.on_merge_written(reducer, mb),
            Action::SnapshotRead { reducer, mb } => self.on_snapshot_read(reducer, mb),
            Action::SnapshotCpuDone { reducer } => self.on_snapshot_cpu_done(reducer),
            Action::FinalRead { reducer, mb } => self.on_final_read(reducer, mb),
            Action::FinalCpuDone { reducer } => self.on_final_cpu_done(reducer),
            Action::FinalWrittenLocal { reducer, mb } => self.on_final_written_local(reducer, mb),
            Action::FinalWritten { reducer } => self.on_final_written(reducer),
            Action::IncUpdateDone { reducer } => self.on_inc_update_done(reducer),
            Action::ColdSpillWritten { reducer, mb } => self.on_cold_spill_written(reducer, mb),
            Action::CpuSink => {}
        }
    }

    fn run(mut self) -> SimReport {
        // Job start: all reducers enter shuffle state; initial map wave.
        self.trace_begin("driver", 0, "job", "job", 0);
        for r in 0..self.reducers.len() {
            self.trace_begin("reduce", r, "reduce_task", "task", 0);
            self.trace_begin("reduce", r, Phase::Shuffle.label(), "phase", 0);
        }
        self.sampler
            .set(Gauge::ShuffleTasks, 0, self.reducers.len() as f64);
        self.schedule_maps();
        let mut events = 0u64;
        while let Some((_, payload)) = self.q.pop() {
            events += 1;
            match payload {
                EventPayload::Act(a) => self.dispatch(a),
                EventPayload::ResourceDone { res, action } => {
                    self.res[res].on_done(&mut self.q);
                    self.dispatch(action);
                }
            }
            self.refresh_resource_gauges();
        }
        let end = self.completion.unwrap_or_else(|| self.q.now());
        self.trace_end("driver", 0, "job", "job", end);
        let local_map_fraction = if self.local_maps + self.remote_maps == 0 {
            0.0
        } else {
            self.local_maps as f64 / (self.local_maps + self.remote_maps) as f64
        };
        SimReport::build(
            &self.spec,
            end,
            events,
            self.total_maps,
            self.spill_written_mb,
            self.merge_read_mb,
            self.merge_written_mb,
            self.snapshots_taken,
            local_map_fraction,
            crate::report::FaultCounters {
                map_attempts: self.map_attempts,
                retries: self.retries,
                speculative_launched: self.speculative_launched,
                speculative_wins: self.speculative_wins,
            },
            &mut self.sampler,
        )
    }
}

/// Simulate `spec` to completion and return the report.
pub fn run_sim_job(spec: SimJobSpec) -> SimReport {
    run_sim_job_traced(spec, Tracer::disabled())
}

/// Simulate `spec`, recording trace events into `tracer` stamped with
/// sim time. Drain the tracer afterwards and feed
/// [`onepass_core::trace::chrome_trace_json`] to get a timeline on the
/// exact schema a real engine run produces (map/reduce/driver lanes,
/// `shuffle`/`reduce_fn` phase spans, spill instants with volumes).
pub fn run_sim_job_traced(spec: SimJobSpec, tracer: Tracer) -> SimReport {
    World::new(spec, tracer).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::StorageConfig;
    use crate::model::WorkloadProfile;

    fn small(system: SystemType, storage: StorageConfig) -> SimReport {
        let cluster = ClusterSpec::paper_cluster(storage);
        // 5% of the paper's volume keeps tests fast (~190 map tasks); a
        // shrunken reducer buffer keeps spill/merge behaviour exercised
        // at this scale (same runs-per-reducer regime as the full run).
        let workload = WorkloadProfile::sessionization().scaled(0.05);
        let mut spec = SimJobSpec::new(system, cluster, workload);
        spec.reduce_mem_mb = 20.0;
        run_sim_job(spec)
    }

    #[test]
    fn hadoop_job_completes_with_all_phases() {
        let r = small(SystemType::StockHadoop, StorageConfig::SingleHdd);
        assert!(r.completion_secs > 0.0);
        assert!(r.map_tasks > 30);
        assert!(r.spill_written_mb > 0.0, "sessionization must spill");
        assert!(
            r.series.map_tasks.max_y().unwrap_or(0.0) > 0.0,
            "map timeline must be populated"
        );
        assert!(
            r.series.reduce_tasks.max_y().unwrap_or(0.0) > 0.0,
            "reduce timeline must be populated"
        );
    }

    #[test]
    fn hash_system_is_faster_and_spills_less() {
        let hadoop = small(SystemType::StockHadoop, StorageConfig::SingleHdd);
        let hash = small(SystemType::HashOnePass, StorageConfig::SingleHdd);
        assert!(
            hash.completion_secs < hadoop.completion_secs,
            "hash {} should beat hadoop {}",
            hash.completion_secs,
            hadoop.completion_secs
        );
        assert!(
            hash.spill_written_mb < hadoop.spill_written_mb * 0.5,
            "hash spill {} vs hadoop {}",
            hash.spill_written_mb,
            hadoop.spill_written_mb
        );
        assert_eq!(hash.merge_read_mb_background(), 0.0);
    }

    #[test]
    fn adaptive_memory_pools_reducer_buffers() {
        let cluster = ClusterSpec::paper_cluster(StorageConfig::SingleHdd);
        let workload = WorkloadProfile::sessionization().scaled(0.05);
        let mut spec = SimJobSpec::new(SystemType::StockHadoop, cluster, workload);
        spec.reduce_mem_mb = 20.0;
        let static_r = run_sim_job(spec.clone());
        spec.adaptive_memory = true;
        let adaptive_r = run_sim_job(spec);
        assert!(adaptive_r.completion_secs > 0.0);
        assert_eq!(adaptive_r.map_tasks, static_r.map_tasks);
        // Pooling buffer slack can only defer spills, never add them.
        assert!(
            adaptive_r.spill_written_mb <= static_r.spill_written_mb + 1e-6,
            "pooled buffers spilled more: {} vs {}",
            adaptive_r.spill_written_mb,
            static_r.spill_written_mb
        );
    }

    #[test]
    fn ssd_config_reduces_runtime_but_not_blocking() {
        let hdd = small(SystemType::StockHadoop, StorageConfig::SingleHdd);
        let ssd = small(SystemType::StockHadoop, StorageConfig::HddPlusSsd);
        assert!(
            ssd.completion_secs < hdd.completion_secs,
            "ssd {} vs hdd {}",
            ssd.completion_secs,
            hdd.completion_secs
        );
        // The merge phase still exists (blocking not eliminated, §III-C).
        assert!(ssd.series.merge_tasks.max_y().unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn hop_takes_snapshots() {
        let r = small(SystemType::Hop, StorageConfig::SingleHdd);
        assert!(r.snapshots > 0, "HOP must take snapshots");
        // Snapshots re-read data: extra disk reads vs stock would show in
        // merge_read counters; at minimum the job completes.
        assert!(r.completion_secs > 0.0);
    }

    #[test]
    fn disk_write_volume_is_conserved() {
        // Every byte the counters record as written must be explainable:
        // map output + reducer spills + merge rewrites + final output.
        let r = small(SystemType::StockHadoop, StorageConfig::SingleHdd);
        let counted: f64 = r.series.disk_write_mb.points.iter().map(|&(_, y)| y).sum();
        let explained = r.map_output_mb + r.spill_written_mb + r.merge_written_mb + r.output_mb;
        let dev = (counted - explained).abs() / explained;
        assert!(
            dev < 0.01,
            "disk writes {counted:.1} MB vs explained {explained:.1} MB"
        );
    }

    #[test]
    fn disk_read_volume_is_conserved() {
        // Reads = input blocks + merge re-reads (incl. final merge).
        let r = small(SystemType::StockHadoop, StorageConfig::SingleHdd);
        let counted: f64 = r.series.disk_read_mb.points.iter().map(|&(_, y)| y).sum();
        let explained = r.input_mb + r.merge_read_mb;
        let dev = (counted - explained).abs() / explained;
        assert!(
            dev < 0.01,
            "disk reads {counted:.1} MB vs explained {explained:.1} MB"
        );
    }

    #[test]
    fn smaller_merge_factor_means_more_rewrites() {
        let mk = |f: usize| {
            let mut spec = SimJobSpec::new(
                SystemType::StockHadoop,
                ClusterSpec::paper_cluster(StorageConfig::SingleHdd),
                WorkloadProfile::sessionization().scaled(0.05),
            );
            spec.reduce_mem_mb = 20.0;
            spec.merge_factor = f;
            run_sim_job(spec)
        };
        let tight = mk(2);
        let wide = mk(100);
        assert!(
            tight.merge_written_mb > wide.merge_written_mb,
            "F=2 rewrites {} must exceed F=100 rewrites {}",
            tight.merge_written_mb,
            wide.merge_written_mb
        );
        assert!(tight.completion_secs >= wide.completion_secs);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = small(SystemType::StockHadoop, StorageConfig::SingleHdd);
        let b = small(SystemType::StockHadoop, StorageConfig::SingleHdd);
        assert_eq!(a.completion_secs, b.completion_secs);
        assert_eq!(a.events, b.events);
        assert_eq!(a.spill_written_mb, b.spill_written_mb);
    }

    #[test]
    fn separated_storage_works() {
        let r = small(SystemType::StockHadoop, StorageConfig::Separated);
        assert!(r.completion_secs > 0.0);
        assert!(r.series.net_mb.max_y().unwrap_or(0.0) > 0.0);
        assert_eq!(
            r.local_map_fraction, 0.0,
            "separated architecture reads everything remotely"
        );
    }

    #[test]
    fn traced_sim_emits_spans_on_the_engine_schema() {
        use onepass_core::json::Json;
        use onepass_core::trace::{chrome_trace_json, complete_spans};

        let cluster = ClusterSpec::paper_cluster(StorageConfig::SingleHdd);
        let workload = WorkloadProfile::sessionization().scaled(0.02);
        let mut spec = SimJobSpec::new(SystemType::StockHadoop, cluster, workload);
        spec.reduce_mem_mb = 20.0;
        let tracer = Tracer::enabled();
        let report = run_sim_job_traced(spec, tracer.clone());

        let events = tracer.drain();
        assert!(!events.is_empty());
        let spans = complete_spans(&events).expect("balanced begin/end events");
        let maps = spans.iter().filter(|s| s.name == "map_task").count();
        assert_eq!(maps, report.map_tasks);
        let reduces = spans.iter().filter(|s| s.name == "reduce_task").count();
        assert_eq!(reduces, report.reduce_tasks);
        // Every reducer shows the shuffle → final phase structure.
        let shuffles = spans.iter().filter(|s| s.name == "shuffle").count();
        assert_eq!(shuffles, report.reduce_tasks);
        // The job span covers the whole run, in sim time.
        let job = spans.iter().find(|s| s.name == "job").expect("job span");
        assert!((job.end.as_secs_f64() - report.completion_secs).abs() < 1e-9);
        // Spill instants carry volumes that add up to the report total.
        let spilled: f64 = events
            .iter()
            .filter(|e| e.name == "reduce_spill")
            .flat_map(|e| e.args.iter())
            .filter(|(k, _)| *k == "mb")
            .map(|&(_, v)| v)
            .sum();
        assert!((spilled - report.spill_written_mb).abs() < 1e-6);
        // And the whole stream renders as loadable Chrome trace JSON.
        let doc = Json::parse(&chrome_trace_json(&events)).expect("valid JSON");
        let n = doc.get("traceEvents").and_then(Json::as_arr).unwrap().len();
        assert!(n > events.len(), "metadata records must be present");
    }

    #[test]
    fn locality_is_high_under_replication_one() {
        let r = small(SystemType::StockHadoop, StorageConfig::SingleHdd);
        assert!(
            r.local_map_fraction > 0.8,
            "greedy locality scheduling should keep most reads local, got {}",
            r.local_map_fraction
        );
    }

    fn faulty_spec(faults: SimFaults) -> SimJobSpec {
        let cluster = ClusterSpec::paper_cluster(StorageConfig::SingleHdd);
        let workload = WorkloadProfile::sessionization().scaled(0.02);
        let mut spec = SimJobSpec::new(SystemType::StockHadoop, cluster, workload);
        spec.reduce_mem_mb = 20.0;
        spec.faults = faults;
        spec
    }

    #[test]
    fn injected_map_failure_retries_and_completes() {
        let clean = run_sim_job(faulty_spec(SimFaults::default()));
        let faults = SimFaults {
            map_failures: vec![(0, 1), (3, 2)],
            ..SimFaults::default()
        };
        let r = run_sim_job(faulty_spec(faults));
        assert!(r.completion_secs > 0.0, "faulty job must still complete");
        assert_eq!(r.map_tasks, clean.map_tasks);
        assert_eq!(r.faults.retries, 3, "1 + 2 injected failures retried");
        assert_eq!(
            r.faults.map_attempts,
            clean.map_tasks + 3,
            "each failure costs exactly one extra attempt"
        );
        assert!(
            r.completion_secs >= clean.completion_secs,
            "recovery costs time: {} vs clean {}",
            r.completion_secs,
            clean.completion_secs
        );
    }

    #[test]
    fn failure_counts_are_clamped_to_max_attempts() {
        // 100 planned failures but only 3 attempts allowed: the plan is
        // clamped to 2 real failures so the run still completes.
        let faults = SimFaults {
            map_failures: vec![(0, 100)],
            max_attempts: 3,
            ..SimFaults::default()
        };
        let r = run_sim_job(faulty_spec(faults));
        assert!(r.completion_secs > 0.0);
        assert_eq!(r.faults.retries, 2);
    }

    #[test]
    fn speculation_beats_a_straggling_map() {
        let straggle = SimFaults {
            map_stragglers: vec![(0, 40.0)],
            ..SimFaults::default()
        };
        let without = run_sim_job(faulty_spec(straggle.clone()));
        let with = run_sim_job(faulty_spec(SimFaults {
            speculation: true,
            ..straggle
        }));
        assert!(with.faults.speculative_launched >= 1, "clone must launch");
        assert!(
            with.faults.speculative_wins >= 1,
            "the clone should beat a 40x straggler"
        );
        assert!(
            with.completion_secs < without.completion_secs,
            "speculation {} should beat straggling {}",
            with.completion_secs,
            without.completion_secs
        );
    }

    #[test]
    fn injected_reduce_failure_replays_the_final_phase() {
        let clean = run_sim_job(faulty_spec(SimFaults::default()));
        let faults = SimFaults {
            reduce_failures: vec![(0, 1)],
            ..SimFaults::default()
        };
        let r = run_sim_job(faulty_spec(faults));
        assert!(r.completion_secs > 0.0);
        assert_eq!(r.faults.retries, 1);
        assert!(
            r.merge_read_mb > clean.merge_read_mb,
            "the replayed final phase re-reads the on-disk runs"
        );
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let faults = SimFaults {
            map_failures: vec![(1, 1)],
            map_stragglers: vec![(0, 20.0)],
            reduce_failures: vec![(0, 1)],
            speculation: true,
            ..SimFaults::default()
        };
        let a = run_sim_job(faulty_spec(faults.clone()));
        let b = run_sim_job(faulty_spec(faults));
        assert_eq!(a.completion_secs, b.completion_secs);
        assert_eq!(a.events, b.events);
        assert_eq!(a.faults, b.faults);
    }

    #[test]
    fn fault_trace_instants_ride_the_engine_schema() {
        let faults = SimFaults {
            map_failures: vec![(0, 1)],
            ..SimFaults::default()
        };
        let tracer = Tracer::enabled();
        let r = run_sim_job_traced(faulty_spec(faults), tracer.clone());
        let events = tracer.drain();
        let failed = events.iter().filter(|e| e.name == "task_failed").count();
        let retried = events.iter().filter(|e| e.name == "retry").count();
        assert_eq!(failed, 1);
        assert_eq!(retried, 1);
        // Spans stay balanced even with the extra attempt's map span.
        use onepass_core::trace::complete_spans;
        let spans = complete_spans(&events).expect("balanced spans");
        let maps = spans.iter().filter(|s| s.name == "map_task").count();
        assert_eq!(maps, r.faults.map_attempts);
        assert_eq!(r.faults.map_attempts, r.map_tasks + 1);
    }

    #[test]
    fn higher_replication_improves_locality_and_runtime() {
        let mk = |replication: usize| {
            let mut spec = SimJobSpec::new(
                SystemType::StockHadoop,
                ClusterSpec::paper_cluster(StorageConfig::SingleHdd),
                WorkloadProfile::sessionization().scaled(0.05),
            );
            spec.reduce_mem_mb = 20.0;
            spec.replication = replication;
            run_sim_job(spec)
        };
        let r1 = mk(1);
        let r3 = mk(3);
        assert!(
            r3.local_map_fraction >= r1.local_map_fraction,
            "replication 3 locality {} < replication 1 locality {}",
            r3.local_map_fraction,
            r1.local_map_fraction
        );
    }
}
