//! Cost model: device profiles, per-operation CPU costs, and workload
//! volume profiles.
//!
//! The CPU constants are *calibrated*, not invented: `exp_table2` measures
//! the real engine's map-function and sort CPU per MB, and the defaults
//! here were set from those runs (scaled to the paper's slower 2010-era
//! nodes so absolute completion times land in the paper's range). The
//! *volume* profiles are taken directly from Table I, which reports the
//! exact input / map-output / spill / output sizes per workload.

/// A storage or network device's service profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Sustained sequential bandwidth, MB/s.
    pub bandwidth_mb_s: f64,
    /// Per-request overhead, seconds (seek/rotational for HDDs).
    pub overhead_s: f64,
}

impl DeviceProfile {
    /// A 2010-era 7200 RPM SATA disk.
    pub fn hdd() -> Self {
        DeviceProfile {
            bandwidth_mb_s: 70.0,
            overhead_s: 0.008,
        }
    }

    /// The 64 GB Intel SSD of §III-C: ~3× the sequential bandwidth and
    /// fast random access.
    pub fn ssd() -> Self {
        DeviceProfile {
            bandwidth_mb_s: 300.0,
            overhead_s: 0.0002,
        }
    }

    /// A gigabit NIC.
    pub fn gige() -> Self {
        DeviceProfile {
            bandwidth_mb_s: 110.0,
            overhead_s: 0.0005,
        }
    }
}

/// Per-MB CPU costs of the execution-model operations, in CPU-seconds per
/// MB of data processed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// The map function (parse + emit), per input MB.
    pub cpu_map_s_mb: f64,
    /// Map-side sort on (partition, key), per map-output MB (sort-merge
    /// systems only).
    pub cpu_sort_s_mb: f64,
    /// Hash partitioning / in-memory hash combine, per map-output MB
    /// (hash system; far below sort — no comparisons, no permutation).
    pub cpu_hash_s_mb: f64,
    /// Merge CPU (stream compare + copy), per merged MB.
    pub cpu_merge_s_mb: f64,
    /// The reduce function, per reduce-input MB.
    pub cpu_reduce_s_mb: f64,
    /// Incremental per-record state update, per shuffled MB (hash system
    /// reduce side; replaces merge + batch reduce).
    pub cpu_inc_update_s_mb: f64,
}

impl CostModel {
    /// Defaults calibrated so that the sessionization run reproduces the
    /// paper's map-phase CPU split (61% map fn / 39% sort, Table II) and
    /// a 10-node completion time in the paper's range.
    pub fn calibrated() -> Self {
        CostModel {
            cpu_map_s_mb: 0.115,
            cpu_sort_s_mb: 0.072,
            cpu_hash_s_mb: 0.018,
            cpu_merge_s_mb: 0.020,
            cpu_reduce_s_mb: 0.045,
            cpu_inc_update_s_mb: 0.055,
        }
    }
}

/// Data-volume profile of one workload — the Table I rows.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Workload name.
    pub name: &'static str,
    /// Total input bytes (cluster-wide), MB.
    pub input_mb: f64,
    /// Map output / input ratio *after* any map-side combine
    /// (Table I "Map output data" / "Input data").
    pub map_output_ratio: f64,
    /// Fraction of reducer-received bytes that survive the reducer's
    /// buffer-fill combine and get written on each spill (1.0 when no
    /// combiner exists; ≪1 for counting workloads).
    pub reduce_spill_ratio: f64,
    /// Final output / input ratio.
    pub output_ratio: f64,
    /// Relative CPU weight of this workload's map function (1.0 =
    /// sessionization's parse-and-emit).
    pub map_cpu_weight: f64,
    /// Relative CPU weight of the map-side sort, proportional to the
    /// *pre-combine* emitted record volume (Table II shows per-user-count
    /// sorting slightly more than sessionization even though its
    /// post-combine output is 100x smaller — the sort happens before the
    /// combine collapses the buffer).
    pub sort_cpu_weight: f64,
    /// Relative CPU weight of the reduce function.
    pub reduce_cpu_weight: f64,
    /// Fraction of reduce input belonging to "hot" keys that the
    /// frequent-hash system keeps resident (drives its spill volume).
    pub hot_fraction: f64,
    /// Number of reduce tasks the paper's configuration used.
    pub reducers: usize,
}

/// MB per GB (decimal, as the paper quotes GB volumes).
pub const MB_PER_GB: f64 = 1024.0;

impl WorkloadProfile {
    /// Click-stream sessionization (Table I column 1): 256 GB in, 269 GB
    /// map output, 370 GB reduce spill, 256 GB out; no combiner; large
    /// holistic groups.
    pub fn sessionization() -> Self {
        WorkloadProfile {
            name: "sessionization",
            input_mb: 256.0 * MB_PER_GB,
            map_output_ratio: 269.0 / 256.0,
            reduce_spill_ratio: 1.0,
            output_ratio: 1.0,
            map_cpu_weight: 1.5,
            sort_cpu_weight: 1.0,
            reduce_cpu_weight: 1.4,
            hot_fraction: 0.85,
            reducers: 30,
        }
    }

    /// Page frequency counting (column 2): 508 GB in, 1.8 GB map output
    /// (combiner collapses counts), 0.2 GB spill, 0.02 GB out.
    pub fn page_frequency() -> Self {
        WorkloadProfile {
            name: "page-frequency",
            input_mb: 508.0 * MB_PER_GB,
            map_output_ratio: 1.8 / 508.0,
            reduce_spill_ratio: 0.11,
            output_ratio: 0.02 / 508.0,
            map_cpu_weight: 0.9,
            sort_cpu_weight: 1.1,
            reduce_cpu_weight: 0.3,
            hot_fraction: 0.95,
            reducers: 30,
        }
    }

    /// Per-user click counting (column 3): 256 GB in, 2.6 GB map output,
    /// 1.4 GB spill, 0.6 GB out.
    pub fn per_user_count() -> Self {
        WorkloadProfile {
            name: "per-user-count",
            input_mb: 256.0 * MB_PER_GB,
            map_output_ratio: 2.6 / 256.0,
            reduce_spill_ratio: 0.54,
            output_ratio: 0.6 / 256.0,
            map_cpu_weight: 0.8,
            sort_cpu_weight: 1.1,
            reduce_cpu_weight: 0.3,
            hot_fraction: 0.9,
            reducers: 30,
        }
    }

    /// Inverted index construction (column 4): 427 GB in, 150 GB map
    /// output, 150 GB spill, 103 GB out.
    pub fn inverted_index() -> Self {
        WorkloadProfile {
            name: "inverted-index",
            input_mb: 427.0 * MB_PER_GB,
            map_output_ratio: 150.0 / 427.0,
            reduce_spill_ratio: 1.0,
            output_ratio: 103.0 / 427.0,
            map_cpu_weight: 3.4,
            sort_cpu_weight: 0.9,
            reduce_cpu_weight: 2.6,
            hot_fraction: 0.7,
            reducers: 60,
        }
    }

    /// All four Table I workloads.
    pub fn all() -> Vec<WorkloadProfile> {
        vec![
            Self::sessionization(),
            Self::page_frequency(),
            Self::per_user_count(),
            Self::inverted_index(),
        ]
    }

    /// Scale the input volume (and hence every derived volume) by `f` —
    /// used for quick test runs at reduced scale.
    pub fn scaled(mut self, f: f64) -> Self {
        self.input_mb *= f;
        self
    }

    /// Map tasks for a given block size (the Table I "Map tasks" row).
    pub fn map_tasks(&self, block_mb: f64) -> usize {
        (self.input_mb / block_mb).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_task_counts_match_table1() {
        // 64 MB blocks: the paper reports 3,773 / 7,580 / 3,773 / 6,803.
        // GB here are decimal-ish; accept ±3% of the paper's counts.
        let block = 64.0;
        let expect = [
            (WorkloadProfile::sessionization(), 3773usize),
            (WorkloadProfile::page_frequency(), 7580),
            (WorkloadProfile::per_user_count(), 3773),
            (WorkloadProfile::inverted_index(), 6803),
        ];
        for (w, paper) in expect {
            let got = w.map_tasks(block);
            let dev = (got as f64 - paper as f64).abs() / paper as f64;
            assert!(dev < 0.09, "{}: {got} vs paper {paper}", w.name);
        }
    }

    #[test]
    fn intermediate_ratios_match_table1() {
        // Table I "Intermediate/input": 250%, 0.4%, 1.0%, 70% —
        // computed as (map output + reduce spill) / input.
        let s = WorkloadProfile::sessionization();
        let ratio = s.map_output_ratio + s.map_output_ratio * s.reduce_spill_ratio * 370.0 / 269.0;
        assert!(ratio > 2.3 && ratio < 2.6, "sessionization ratio {ratio}");

        let p = WorkloadProfile::page_frequency();
        let inter = (1.8 + 0.2) / 508.0;
        assert!((p.map_output_ratio - 1.8 / 508.0).abs() < 1e-9);
        assert!(inter < 0.005);
    }

    #[test]
    fn scaling_preserves_ratios() {
        let w = WorkloadProfile::sessionization().scaled(0.01);
        assert!((w.input_mb - 2.56 * MB_PER_GB).abs() < 1e-6);
        assert_eq!(
            w.map_output_ratio,
            WorkloadProfile::sessionization().map_output_ratio
        );
    }

    #[test]
    fn calibrated_cpu_split_is_sixty_forty() {
        let c = CostModel::calibrated();
        let split = c.cpu_map_s_mb / (c.cpu_map_s_mb + c.cpu_sort_s_mb);
        assert!((split - 0.61).abs() < 0.03, "map-fn share {split}");
        assert!(
            c.cpu_hash_s_mb < c.cpu_sort_s_mb / 2.0,
            "hash must be far cheaper than sort"
        );
    }

    #[test]
    fn device_profiles_are_ordered_sensibly() {
        assert!(DeviceProfile::ssd().bandwidth_mb_s > DeviceProfile::hdd().bandwidth_mb_s);
        assert!(DeviceProfile::ssd().overhead_s < DeviceProfile::hdd().overhead_s);
    }
}
