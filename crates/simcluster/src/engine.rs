//! Discrete-event core: an event heap with an integer-microsecond clock,
//! plus FIFO multi-server resources (CPU cores, disks, NICs).
//!
//! The engine is generic over the action type `A` so the MapReduce model
//! can dispatch on a plain enum — no boxed closures, fully deterministic
//! (ties broken by insertion sequence).

use std::collections::{BinaryHeap, VecDeque};

/// Simulation time in integer microseconds.
pub type SimTime = u64;

/// One second in [`SimTime`] units.
pub const SECOND: SimTime = 1_000_000;

/// Convert seconds (f64) to [`SimTime`], saturating at zero.
pub fn secs(s: f64) -> SimTime {
    if s <= 0.0 {
        0
    } else {
        (s * SECOND as f64).round() as SimTime
    }
}

/// Convert [`SimTime`] to fractional seconds.
pub fn to_secs(t: SimTime) -> f64 {
    t as f64 / SECOND as f64
}

/// The pending-event queue.
#[derive(Debug)]
pub struct EventQueue<A> {
    heap: BinaryHeap<Scheduled<A>>,
    seq: u64,
    now: SimTime,
}

/// Heap entry ordered by (time, insertion sequence) only — payloads need
/// no ordering, and ties resolve FIFO for determinism.
#[derive(Debug)]
struct Scheduled<A> {
    time: SimTime,
    seq: u64,
    payload: EventPayload<A>,
}

impl<A> PartialEq for Scheduled<A> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<A> Eq for Scheduled<A> {}

impl<A> PartialOrd for Scheduled<A> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<A> Ord for Scheduled<A> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// What an event does when it fires.
#[derive(Debug)]
pub enum EventPayload<A> {
    /// Run the model's dispatch for this action.
    Act(A),
    /// A resource finished serving a request: free a server slot, start
    /// the next queued request, then dispatch the completion action.
    ResourceDone {
        /// Which resource completed.
        res: usize,
        /// Completion action to dispatch.
        action: A,
    },
}

impl<A> EventQueue<A> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `action` to fire `delay` from now.
    pub fn schedule(&mut self, delay: SimTime, action: A) {
        self.push(delay, EventPayload::Act(action));
    }

    fn push(&mut self, delay: SimTime, payload: EventPayload<A>) {
        self.seq += 1;
        self.heap.push(Scheduled {
            time: self.now + delay,
            seq: self.seq,
            payload,
        });
    }

    /// Pop the next event, advancing the clock. `None` when drained.
    pub fn pop(&mut self) -> Option<(SimTime, EventPayload<A>)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now, "time went backwards");
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<A> Default for EventQueue<A> {
    fn default() -> Self {
        Self::new()
    }
}

/// A FIFO multi-server resource: `capacity` parallel servers, each
/// processing `rate` units per second, with a fixed per-request
/// `overhead` (e.g. a disk seek).
#[derive(Debug)]
pub struct Resource<A> {
    /// Resource index (self-id, for completion events).
    pub id: usize,
    /// Descriptive name (diagnostics).
    pub name: String,
    /// Units served per second (e.g. MB/s for disks, CPU-seconds/second
    /// = 1.0 for cores).
    pub rate: f64,
    /// Parallel servers (cores for CPU; 1 for a disk or NIC).
    pub capacity: usize,
    /// Fixed per-request latency added to every request (seek time).
    pub overhead: SimTime,
    /// Contention sensitivity: with `w` requests waiting, the effective
    /// service rate is `rate / (1 + contention_slope * min(w, 6))`. Models
    /// a seek-bound device thrashing between interleaved streams ("the
    /// disk is often maxed out and subject to random I/Os", §III-C); ~0
    /// for SSDs and NICs. Derived from `overhead` by [`with_overhead`]:
    /// `overhead_s * 30`.
    ///
    /// [`with_overhead`]: Resource::with_overhead
    pub contention_slope: f64,
    busy: usize,
    queue: VecDeque<(f64, A)>,
    /// Cumulative busy server-microseconds (utilization accounting).
    pub busy_time: u128,
    last_change: SimTime,
    /// Total units served.
    pub units_served: f64,
}

impl<A> Resource<A> {
    /// Create a resource.
    pub fn new(id: usize, name: impl Into<String>, rate: f64, capacity: usize) -> Self {
        assert!(rate > 0.0 && capacity > 0);
        Resource {
            id,
            name: name.into(),
            rate,
            capacity,
            overhead: 0,
            contention_slope: 0.0,
            busy: 0,
            queue: VecDeque::new(),
            busy_time: 0,
            last_change: 0,
            units_served: 0.0,
        }
    }

    /// Set the per-request overhead (builder style); also derives the
    /// contention slope from it (seek-bound devices thrash more).
    pub fn with_overhead(mut self, overhead: SimTime) -> Self {
        self.overhead = overhead;
        self.contention_slope = to_secs(overhead) * 30.0;
        self
    }

    /// Effective service duration for `amount` units given the current
    /// number of waiting requests.
    fn service_time(&self, amount: f64) -> SimTime {
        let slowdown = 1.0 + self.contention_slope * (self.queue.len().min(6)) as f64;
        secs(amount * slowdown / self.rate) + self.overhead
    }

    /// Servers currently busy.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Requests waiting for a server.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Busy + queued — the "outstanding requests" gauge (iowait proxy).
    pub fn outstanding(&self) -> usize {
        self.busy + self.queue.len()
    }

    fn accrue(&mut self, now: SimTime) {
        self.busy_time += (now - self.last_change) as u128 * self.busy as u128;
        self.last_change = now;
    }

    /// Request `amount` units; `action` is dispatched when served.
    /// Zero-amount requests complete after just the overhead. Service
    /// duration is computed when service *starts*, reflecting the
    /// contention at that moment.
    pub fn request(&mut self, q: &mut EventQueue<A>, amount: f64, action: A) {
        self.units_served += amount;
        if self.busy < self.capacity {
            self.accrue(q.now());
            self.busy += 1;
            let dur = self.service_time(amount);
            q.push(
                dur,
                EventPayload::ResourceDone {
                    res: self.id,
                    action,
                },
            );
        } else {
            self.queue.push_back((amount, action));
        }
    }

    /// Handle a completion: free the server and start the next queued
    /// request, if any. Call exactly once per `ResourceDone` event for
    /// this resource, *before* dispatching its action.
    pub fn on_done(&mut self, q: &mut EventQueue<A>) {
        self.accrue(q.now());
        debug_assert!(self.busy > 0);
        self.busy -= 1;
        if let Some((amount, action)) = self.queue.pop_front() {
            self.busy += 1;
            let dur = self.service_time(amount);
            q.push(
                dur,
                EventPayload::ResourceDone {
                    res: self.id,
                    action,
                },
            );
        }
    }

    /// Utilization over `[0, now]`: mean busy servers / capacity.
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        self.accrue(now);
        if now == 0 {
            0.0
        } else {
            self.busy_time as f64 / (now as f64 * self.capacity as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    enum Act {
        Done(u32),
    }

    #[test]
    fn time_conversions() {
        assert_eq!(secs(1.5), 1_500_000);
        assert_eq!(secs(-2.0), 0);
        assert!((to_secs(2_500_000) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn events_fire_in_time_order_with_fifo_ties() {
        let mut q: EventQueue<Act> = EventQueue::new();
        q.schedule(100, Act::Done(1));
        q.schedule(50, Act::Done(2));
        q.schedule(100, Act::Done(3));
        let mut seen = Vec::new();
        while let Some((t, p)) = q.pop() {
            if let EventPayload::Act(Act::Done(i)) = p {
                seen.push((t, i));
            }
        }
        assert_eq!(seen, vec![(50, 2), (100, 1), (100, 3)]);
        assert_eq!(q.now(), 100);
    }

    /// Drive a queue+resource pair until drained; returns completions.
    fn drain(q: &mut EventQueue<Act>, r: &mut Resource<Act>) -> Vec<(SimTime, u32)> {
        let mut out = Vec::new();
        while let Some((t, p)) = q.pop() {
            match p {
                EventPayload::ResourceDone { res, action } => {
                    assert_eq!(res, r.id);
                    r.on_done(q);
                    let Act::Done(i) = action;
                    out.push((t, i));
                }
                EventPayload::Act(_) => {}
            }
        }
        out
    }

    #[test]
    fn single_server_serializes_requests() {
        let mut q = EventQueue::new();
        // 10 units/s => 1 unit per 100_000 us.
        let mut r = Resource::new(0, "disk", 10.0, 1);
        r.request(&mut q, 10.0, Act::Done(1)); // 1 s
        r.request(&mut q, 5.0, Act::Done(2)); // 0.5 s, queued
        let done = drain(&mut q, &mut r);
        assert_eq!(done, vec![(1_000_000, 1), (1_500_000, 2)]);
        assert_eq!(r.units_served, 15.0);
    }

    #[test]
    fn multi_server_runs_in_parallel() {
        let mut q = EventQueue::new();
        let mut r = Resource::new(0, "cpu", 1.0, 2);
        r.request(&mut q, 1.0, Act::Done(1));
        r.request(&mut q, 1.0, Act::Done(2));
        r.request(&mut q, 1.0, Act::Done(3)); // queued behind the first two
        let done = drain(&mut q, &mut r);
        assert_eq!(done[0].0, 1_000_000);
        assert_eq!(done[1].0, 1_000_000);
        assert_eq!(done[2].0, 2_000_000);
    }

    #[test]
    fn overhead_applies_per_request() {
        let mut q = EventQueue::new();
        let mut r = Resource::new(0, "disk", 100.0, 1).with_overhead(5_000);
        r.request(&mut q, 100.0, Act::Done(1)); // 1s + 5ms
        let done = drain(&mut q, &mut r);
        assert_eq!(done, vec![(1_005_000, 1)]);
    }

    #[test]
    fn utilization_accounting() {
        let mut q = EventQueue::new();
        let mut r = Resource::new(0, "cpu", 1.0, 2);
        r.request(&mut q, 1.0, Act::Done(1));
        let _ = drain(&mut q, &mut r);
        // One of two servers busy for the full 1 s window: 50%.
        let u = r.utilization(1_000_000);
        assert!((u - 0.5).abs() < 1e-6, "utilization {u}");
    }

    #[test]
    fn outstanding_counts_busy_plus_queued() {
        let mut q = EventQueue::new();
        let mut r = Resource::new(0, "disk", 1.0, 1);
        r.request(&mut q, 1.0, Act::Done(1));
        r.request(&mut q, 1.0, Act::Done(2));
        r.request(&mut q, 1.0, Act::Done(3));
        assert_eq!(r.busy(), 1);
        assert_eq!(r.queued(), 2);
        assert_eq!(r.outstanding(), 3);
    }
}
