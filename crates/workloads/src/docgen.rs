//! Web-document generator: a synthetic stand-in for the GOV2 crawl
//! (427 GB of government web pages) used by the inverted-index workload.
//!
//! Each record is one document: `"<doc_id>\t<w1> <w2> ..."` with words
//! drawn from a Zipf-distributed vocabulary (natural-language word
//! frequencies are famously Zipfian, which is what gives the inverted
//! index its skewed posting-list lengths).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Configuration for [`DocGen`].
#[derive(Debug, Clone)]
pub struct DocGenConfig {
    /// Vocabulary size.
    pub vocabulary: usize,
    /// Zipf exponent for word frequency.
    pub word_skew: f64,
    /// Minimum words per document.
    pub min_words: usize,
    /// Maximum words per document.
    pub max_words: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DocGenConfig {
    fn default() -> Self {
        DocGenConfig {
            vocabulary: 20_000,
            word_skew: 1.0,
            min_words: 50,
            max_words: 300,
            seed: 0xd0c5,
        }
    }
}

/// Deterministic document generator.
#[derive(Debug)]
pub struct DocGen {
    config: DocGenConfig,
    rng: StdRng,
    words: Zipf,
    next_doc_id: u32,
}

impl DocGen {
    /// Create a generator.
    pub fn new(config: DocGenConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        let words = Zipf::new(config.vocabulary, config.word_skew);
        DocGen {
            config,
            rng,
            words,
            next_doc_id: 0,
        }
    }

    /// Render word id `w` as its token.
    pub fn word_token(w: usize) -> String {
        format!("w{w}")
    }

    /// Generate the next document record.
    pub fn next_doc(&mut self) -> Vec<u8> {
        let id = self.next_doc_id;
        self.next_doc_id += 1;
        let n = self
            .rng
            .gen_range(self.config.min_words..=self.config.max_words);
        let mut doc = format!("{id}\t");
        for i in 0..n {
            if i > 0 {
                doc.push(' ');
            }
            doc.push_str(&Self::word_token(self.words.sample(&mut self.rng)));
        }
        doc.into_bytes()
    }

    /// Generate `n` documents.
    pub fn records(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| self.next_doc()).collect()
    }
}

/// Parse a document record into `(doc_id, words)`.
pub fn parse_doc(record: &[u8]) -> Option<(u32, impl Iterator<Item = &[u8]> + '_)> {
    let tab = record.iter().position(|&b| b == b'\t')?;
    let id = std::str::from_utf8(&record[..tab]).ok()?.parse().ok()?;
    let body = &record[tab + 1..];
    Some((id, body.split(|&b| b == b' ').filter(|w| !w.is_empty())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn documents_parse_back() {
        let mut g = DocGen::new(DocGenConfig::default());
        for expected_id in 0..20u32 {
            let doc = g.next_doc();
            let (id, words) = parse_doc(&doc).expect("parseable");
            assert_eq!(id, expected_id);
            let words: Vec<&[u8]> = words.collect();
            assert!(words.len() >= 50 && words.len() <= 300);
            for w in words {
                assert!(w.starts_with(b"w"));
            }
        }
    }

    #[test]
    fn word_frequencies_are_skewed() {
        let mut g = DocGen::new(DocGenConfig {
            vocabulary: 500,
            ..Default::default()
        });
        let mut counts: HashMap<Vec<u8>, usize> = HashMap::new();
        for _ in 0..100 {
            let doc = g.next_doc();
            let (_, words) = parse_doc(&doc).unwrap();
            for w in words {
                *counts.entry(w.to_vec()).or_default() += 1;
            }
        }
        let total: usize = counts.values().sum();
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top5: usize = freqs.iter().take(5).sum();
        assert!(top5 * 100 > total * 10, "top words should dominate");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = DocGen::new(DocGenConfig::default());
        let mut b = DocGen::new(DocGenConfig::default());
        assert_eq!(a.records(10), b.records(10));
    }

    #[test]
    fn malformed_docs_rejected() {
        assert!(parse_doc(b"no-tab-here").is_none());
        assert!(parse_doc(b"notanumber\twords").is_none());
    }
}
