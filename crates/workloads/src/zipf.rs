//! Zipf-distributed sampling over ranks `0..n`.
//!
//! Implemented in-repo (a CDF table + binary search) rather than pulling a
//! distribution crate: the generators need exactly one distribution, and
//! the table approach is both simple and fast (O(log n) per sample).
//!
//! Rank `k` (0-based) is drawn with probability `(k+1)^-s / H(n, s)`.

use rand::Rng;

/// A Zipf sampler over `n` ranks with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n ≥ 1` ranks with exponent `s ≥ 0`.
    /// `s = 0` degenerates to the uniform distribution.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the tail.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Probability of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Draw a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first index with cdf[i] >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Fraction of probability mass held by the `top` most frequent ranks
    /// — used to choose hot-key fractions for simulator profiles.
    pub fn head_mass(&self, top: usize) -> f64 {
        if top == 0 {
            0.0
        } else {
            self.cdf[(top - 1).min(self.cdf.len() - 1)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_orders_ranks() {
        let z = Zipf::new(50, 1.2);
        for k in 1..50 {
            assert!(z.pmf(k - 1) > z.pmf(k), "pmf must decrease with rank");
        }
        assert!(z.head_mass(5) > 0.5, "steep Zipf concentrates mass early");
    }

    #[test]
    fn empirical_frequencies_track_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 200_000;
        let mut counts = [0usize; 20];
        for _ in 0..trials {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let emp = c as f64 / trials as f64;
            let dev = (emp - z.pmf(k)).abs();
            assert!(dev < 0.01, "rank {k}: empirical {emp} vs pmf {}", z.pmf(k));
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.head_mass(1), 1.0);
    }
}
