//! Sessionization — the paper's flagship click-stream workload.
//!
//! "An important task is sessionization, which reorders click logs into
//! individual user sessions. Its MapReduce program employs the map
//! function to extract the url and user id from each click log, then
//! groups click logs by user id, and implements the sessionization
//! algorithm in the reduce function. A key feature of this task is a
//! large amount of intermediate data" (§III-A).
//!
//! * Map: parse a click, emit `(user, (ts, url))` — 8-byte values, so the
//!   intermediate volume ≈ input volume (no combiner exists).
//! * Reduce ([`SessionizeAgg`]): collect a user's clicks, order by time,
//!   split where the idle gap exceeds the threshold, emit the session
//!   list.

use std::sync::Arc;

use onepass_groupby::Aggregator;
use onepass_runtime::{Combine, JobSpec, JobSpecBuilder, MapEmitter, MapFn};

use crate::clickgen::Click;

/// Default session gap: 30 minutes.
pub const DEFAULT_GAP_S: u32 = 30 * 60;

/// Map function over text click logs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionizeMapText;

impl MapFn for SessionizeMapText {
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
        if let Some(c) = Click::from_text(record) {
            emit_click(c, out);
        }
    }
}

/// Map function over pre-parsed binary click logs (§III-B.1's
/// SequenceFile variant — same emissions, no text parsing).
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionizeMapBinary;

impl MapFn for SessionizeMapBinary {
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
        if let Some(c) = Click::from_binary(record) {
            emit_click(c, out);
        }
    }
}

fn emit_click(c: Click, out: &mut dyn MapEmitter) {
    let mut value = [0u8; 8];
    value[..4].copy_from_slice(&c.ts.to_le_bytes());
    value[4..].copy_from_slice(&c.url.to_le_bytes());
    out.emit(&c.user.to_le_bytes(), &value);
}

/// The sessionization reduce function as an aggregate: state is the
/// concatenation of 8-byte `(ts, url)` entries; `finish` orders them and
/// splits into sessions.
///
/// Holistic (`combinable() == false`): partial aggregation cannot shrink
/// the data, exactly why this workload has 250% intermediate-to-input
/// volume in Table I.
#[derive(Debug, Clone, Copy)]
pub struct SessionizeAgg {
    /// Idle gap (seconds) that separates two sessions.
    pub gap_s: u32,
}

impl Default for SessionizeAgg {
    fn default() -> Self {
        SessionizeAgg {
            gap_s: DEFAULT_GAP_S,
        }
    }
}

impl SessionizeAgg {
    /// Decode a finished session list: `Vec` of sessions, each a `Vec`
    /// of `(ts, url)`.
    pub fn decode_sessions(out: &[u8]) -> Vec<Vec<(u32, u32)>> {
        let mut sessions = Vec::new();
        let mut pos = 0;
        while pos + 4 <= out.len() {
            let n = u32::from_le_bytes(out[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            let mut session = Vec::with_capacity(n);
            for _ in 0..n {
                let ts = u32::from_le_bytes(out[pos..pos + 4].try_into().unwrap());
                let url = u32::from_le_bytes(out[pos + 4..pos + 8].try_into().unwrap());
                session.push((ts, url));
                pos += 8;
            }
            sessions.push(session);
        }
        sessions
    }
}

impl Aggregator for SessionizeAgg {
    fn init(&self, _key: &[u8], value: &[u8]) -> Vec<u8> {
        value.to_vec()
    }

    fn update(&self, _key: &[u8], state: &mut Vec<u8>, value: &[u8]) {
        state.extend_from_slice(value);
    }

    fn merge(&self, _key: &[u8], state: &mut Vec<u8>, other: &[u8]) {
        state.extend_from_slice(other);
    }

    fn finish(&self, _key: &[u8], state: Vec<u8>) -> Vec<u8> {
        // Decode, order by timestamp, split at gaps.
        let mut clicks: Vec<(u32, u32)> = state
            .chunks_exact(8)
            .map(|c| {
                (
                    u32::from_le_bytes(c[0..4].try_into().unwrap()),
                    u32::from_le_bytes(c[4..8].try_into().unwrap()),
                )
            })
            .collect();
        clicks.sort_unstable();
        let mut out = Vec::with_capacity(state.len() + 16);
        let mut session_start = 0usize;
        for i in 1..=clicks.len() {
            let boundary =
                i == clicks.len() || clicks[i].0.saturating_sub(clicks[i - 1].0) > self.gap_s;
            if boundary {
                let session = &clicks[session_start..i];
                out.extend_from_slice(&(session.len() as u32).to_le_bytes());
                for &(ts, url) in session {
                    out.extend_from_slice(&ts.to_le_bytes());
                    out.extend_from_slice(&url.to_le_bytes());
                }
                session_start = i;
            }
        }
        out
    }

    fn combinable(&self) -> bool {
        false
    }
}

/// Job builder preset: sessionization over text click logs.
pub fn job() -> JobSpecBuilder {
    JobSpec::builder("sessionization")
        .map_fn(Arc::new(SessionizeMapText))
        .aggregate(Arc::new(SessionizeAgg::default()))
        .combine_mode(Combine::Off)
}

/// Job builder preset over pre-parsed binary click logs.
pub fn job_binary() -> JobSpecBuilder {
    JobSpec::builder("sessionization-binary")
        .map_fn(Arc::new(SessionizeMapBinary))
        .aggregate(Arc::new(SessionizeAgg::default()))
        .combine_mode(Combine::Off)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(clicks: &[(u32, u32)]) -> Vec<u8> {
        let mut s = Vec::new();
        for &(ts, url) in clicks {
            s.extend_from_slice(&ts.to_le_bytes());
            s.extend_from_slice(&url.to_le_bytes());
        }
        s
    }

    #[test]
    fn splits_on_gap() {
        let agg = SessionizeAgg { gap_s: 200 };
        // Out-of-order input; only the 250 -> 1000 gap exceeds 200 s.
        let state = enc(&[(1000, 3), (100, 1), (250, 2)]);
        let out = agg.finish(b"u", state);
        let sessions = SessionizeAgg::decode_sessions(&out);
        assert_eq!(sessions, vec![vec![(100, 1), (250, 2)], vec![(1000, 3)]]);
    }

    #[test]
    fn single_session_when_no_gap() {
        let agg = SessionizeAgg { gap_s: 1000 };
        let state = enc(&[(10, 1), (20, 2), (30, 3)]);
        let sessions = SessionizeAgg::decode_sessions(&agg.finish(b"u", state));
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].len(), 3);
    }

    #[test]
    fn empty_state_yields_no_sessions() {
        let agg = SessionizeAgg::default();
        let out = agg.finish(b"u", Vec::new());
        assert!(SessionizeAgg::decode_sessions(&out).is_empty());
    }

    #[test]
    fn update_and_merge_concatenate() {
        let agg = SessionizeAgg::default();
        let mut s = agg.init(b"u", &enc(&[(5, 1)]));
        agg.update(b"u", &mut s, &enc(&[(9, 2)]));
        let other = agg.init(b"u", &enc(&[(7, 3)]));
        agg.merge(b"u", &mut s, &other);
        assert_eq!(s.len(), 24);
        assert!(!agg.combinable());
    }

    #[test]
    fn map_functions_agree_across_encodings() {
        use onepass_runtime::MapEmitter;
        struct Cap(Vec<(Vec<u8>, Vec<u8>)>);
        impl MapEmitter for Cap {
            fn emit(&mut self, k: &[u8], v: &[u8]) {
                self.0.push((k.to_vec(), v.to_vec()));
            }
        }
        let c = Click {
            ts: 777,
            user: 5,
            url: 42,
        };
        let mut a = Cap(Vec::new());
        SessionizeMapText.map(&c.to_text(), &mut a);
        let mut b = Cap(Vec::new());
        SessionizeMapBinary.map(&c.to_binary(), &mut b);
        assert_eq!(a.0, b.0);
        assert_eq!(a.0.len(), 1);
        assert_eq!(a.0[0].0, 5u32.to_le_bytes().to_vec());

        // Garbage records emit nothing.
        let mut g = Cap(Vec::new());
        SessionizeMapText.map(b"garbage line", &mut g);
        assert!(g.0.is_empty());
    }
}
