//! Calibration: derive the simulator's CPU cost model from the real
//! engine's measurements — the loop that makes `onepass-simcluster`'s
//! constants evidence instead of guesses.
//!
//! The simulator needs CPU-seconds-per-MB for the map function, the
//! map-side sort, hash grouping, merging and incremental updates. Those
//! are per-record properties, so they can be measured at laptop scale on
//! `onepass-runtime` and rescaled: absolute speed differs from the
//! paper's 2010 nodes by a single machine factor, while the *ratios*
//! between operations — which determine every shape the simulator
//! produces — carry over directly.

use onepass_core::config::MIB;
use onepass_core::metrics::Phase;
use onepass_runtime::{CollectOutput, Engine, MapSideMode, ReduceBackend, ShuffleMode};
use onepass_simcluster::CostModel;

use crate::{make_splits, per_user_count, sessionization, ClickGen, ClickGenConfig};

/// Raw per-MB CPU costs measured on this machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredCosts {
    /// Map function (parse + emit) seconds per input MB.
    pub map_s_mb: f64,
    /// Map-side (partition, key) sort seconds per input MB.
    pub sort_s_mb: f64,
    /// Map-side hash partitioning seconds per input MB.
    pub hash_s_mb: f64,
    /// Reduce-side merge seconds per shuffled MB.
    pub merge_s_mb: f64,
    /// Incremental state-update seconds per shuffled MB.
    pub inc_update_s_mb: f64,
}

/// The calibration result: measurements, the machine factor, and a
/// [`CostModel`] usable directly by the simulator.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Raw measurements on this machine.
    pub measured: MeasuredCosts,
    /// Multiplier mapping this machine's speed onto the simulator's
    /// reference (paper-era) node speed, anchored on the map function.
    pub machine_factor: f64,
    /// The cost model scaled to reference-node speed.
    pub model: CostModel,
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / MIB as f64
}

/// Run the calibration workloads (`records` clicks each; 200k is plenty)
/// and derive a cost model.
pub fn calibrate(records: usize) -> Calibration {
    let gen_splits = || {
        let mut gen = ClickGen::new(ClickGenConfig::default());
        make_splits(gen.text_records(records), records / 16)
    };
    let engine = Engine::new();

    // 1. Hadoop path: map fn + sort costs, reduce-side merge cost.
    let hadoop = sessionization::job()
        .reducers(4)
        .collect_mode(CollectOutput::Discard)
        .preset_hadoop()
        .reduce_budget_bytes(512 * 1024) // force merge activity
        .build()
        .expect("valid job");
    let h = engine.run(&hadoop, gen_splits()).expect("hadoop run");
    let input_mb = mb(h.input_bytes).max(1e-6);
    let shuffled_mb = mb(h.shuffled_bytes).max(1e-6);
    let map_s_mb = h.map_profile.time(Phase::MapFn).as_secs_f64() / input_mb;
    let sort_s_mb = h.map_profile.time(Phase::MapSort).as_secs_f64() / input_mb;
    let merge_s_mb = h.reduce_profile.time(Phase::Merge).as_secs_f64() / shuffled_mb;

    // 2. Hash-grouping cost: per-user counting with an in-memory hash
    //    combine (the mode where real hash-table grouping happens; the
    //    partition-only mode's grouping cost is ~zero by construction).
    let hashjob = per_user_count::job()
        .reducers(4)
        .collect_mode(CollectOutput::Discard)
        .map_side(MapSideMode::HashCombine)
        .shuffle(ShuffleMode::Push {
            granularity: 65_536,
        })
        .backend(ReduceBackend::IncHash { early: None })
        .build()
        .expect("valid job");
    let o = engine.run(&hashjob, gen_splits()).expect("hash run");
    let o_input_mb = mb(o.input_bytes).max(1e-6);
    let hash_s_mb = o.map_profile.time(Phase::MapHash).as_secs_f64() / o_input_mb;

    // 3. Incremental-update cost: sessionization through the incremental
    //    hash backend (state appends per record).
    let incjob = sessionization::job()
        .reducers(4)
        .collect_mode(CollectOutput::Discard)
        .map_side(MapSideMode::HashPartitionOnly)
        .shuffle(ShuffleMode::Push {
            granularity: 65_536,
        })
        .backend(ReduceBackend::IncHash { early: None })
        .build()
        .expect("valid job");
    let i = engine.run(&incjob, gen_splits()).expect("inc run");
    let i_shuffled_mb = mb(i.shuffled_bytes).max(1e-6);
    let inc_update_s_mb = i.reduce_profile.time(Phase::ReduceGroup).as_secs_f64() / i_shuffled_mb;

    let measured = MeasuredCosts {
        map_s_mb,
        sort_s_mb,
        hash_s_mb,
        merge_s_mb,
        inc_update_s_mb,
    };

    // Anchor the machine factor on the map function against the
    // reference model, then scale every measured cost by it.
    let reference = CostModel::calibrated();
    let machine_factor = reference.cpu_map_s_mb / measured.map_s_mb.max(1e-9);
    let clamp = |x: f64, lo: f64| x.max(lo);
    let model = CostModel {
        cpu_map_s_mb: reference.cpu_map_s_mb,
        cpu_sort_s_mb: clamp(measured.sort_s_mb * machine_factor, 1e-6),
        cpu_hash_s_mb: clamp(measured.hash_s_mb * machine_factor, 1e-6),
        cpu_merge_s_mb: clamp(measured.merge_s_mb * machine_factor, 1e-6),
        cpu_reduce_s_mb: reference.cpu_reduce_s_mb,
        cpu_inc_update_s_mb: clamp(measured.inc_update_s_mb * machine_factor, 1e-6),
    };
    Calibration {
        measured,
        machine_factor,
        model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_sane_ratios() {
        let cal = calibrate(60_000);
        let m = &cal.measured;
        assert!(m.map_s_mb > 0.0 && m.sort_s_mb > 0.0);
        assert!(m.hash_s_mb >= 0.0 && m.inc_update_s_mb > 0.0);
        assert!(cal.machine_factor > 0.0);
        // Every derived cost is positive and finite.
        for c in [
            cal.model.cpu_map_s_mb,
            cal.model.cpu_sort_s_mb,
            cal.model.cpu_hash_s_mb,
            cal.model.cpu_merge_s_mb,
            cal.model.cpu_inc_update_s_mb,
        ] {
            assert!(c > 0.0 && c.is_finite());
        }
    }
}
