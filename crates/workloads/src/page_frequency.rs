//! Page-frequency counting: `SELECT COUNT(*) FROM visits GROUP BY url`
//! — the paper's running example (§II) and Table I column 2.
//!
//! Map emits `(url, 1)`; the SUM combiner collapses intermediate data by
//! nearly three orders of magnitude (508 GB → 1.8 GB in Table I), making
//! this the best case for map-side combining.

use std::sync::Arc;

use onepass_groupby::SumAgg;
use onepass_runtime::{Combine, JobSpec, JobSpecBuilder, MapEmitter, MapFn};

use crate::clickgen::Click;

/// Map function over text click logs: emit `(url, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PageFreqMapText;

impl MapFn for PageFreqMapText {
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
        if let Some(c) = Click::from_text(record) {
            out.emit(&c.url.to_le_bytes(), &1u64.to_le_bytes());
        }
    }
}

/// Map function over binary click logs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PageFreqMapBinary;

impl MapFn for PageFreqMapBinary {
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
        if let Some(c) = Click::from_binary(record) {
            out.emit(&c.url.to_le_bytes(), &1u64.to_le_bytes());
        }
    }
}

/// Job builder preset: page-frequency over text click logs, combine on.
pub fn job() -> JobSpecBuilder {
    JobSpec::builder("page-frequency")
        .map_fn(Arc::new(PageFreqMapText))
        .aggregate(Arc::new(SumAgg))
        .combine_mode(Combine::On)
}

/// Decode a final count value.
pub fn decode_count(v: &[u8]) -> u64 {
    u64::from_le_bytes(v.try_into().expect("8-byte count"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use onepass_runtime::Engine;

    #[test]
    fn counts_urls_end_to_end() {
        let mut gen = crate::clickgen::ClickGen::new(crate::clickgen::ClickGenConfig {
            users: 20,
            urls: 10,
            ..Default::default()
        });
        let records = gen.text_records(500);
        // Ground truth.
        let mut truth = std::collections::HashMap::new();
        for r in &records {
            let c = Click::from_text(r).unwrap();
            *truth.entry(c.url).or_insert(0u64) += 1;
        }
        let splits = crate::make_splits(records, 50);
        let job = job().reducers(3).preset_hadoop().build().unwrap();
        let report = Engine::new().run(&job, splits).unwrap();
        let mut got = std::collections::HashMap::new();
        for o in &report.outputs {
            let url = u32::from_le_bytes(o.key.as_slice().try_into().unwrap());
            got.insert(url, decode_count(&o.value));
        }
        assert_eq!(got.len(), truth.len());
        for (url, n) in truth {
            assert_eq!(got[&url], n, "url {url}");
        }
        // The combiner must have collapsed the shuffle volume.
        assert!(report.shuffled_records < report.map_output_records);
    }
}
