//! Clicks ⋈ users — the repo's first two-dataset workload: a
//! hybrid-hash equi-join of the click stream (probe side) against a
//! small user dimension table (build side).
//!
//! The batch shape is the classic two-input stage the [`DatasetCache`]
//! enables: [`build_plan`] parses the user table once and caches it
//! partitioned by the join key, then [`join_plan`] is a *single* stage
//! that receives both inputs — click records through the plan's record
//! input (`map`) and the cached build partitions as zero-copy aligned
//! splits (`map_pair`). Because both sides route by the same key under
//! the same partitioner and reducer count, the cached build partitions
//! are already in place (`cached_input_aligned`) and only the probe
//! side shuffles. The reduce side is Shapiro's hybrid hash
//! ([`ReduceBackend::HybridHash`]) folding [`JoinAgg`] — see
//! `onepass_groupby::join`.
//!
//! [`streaming_job`] is the serving-catalog variant: the dimension
//! table is broadcast (baked into the map function) and each click is
//! joined map-side — the standard small-table answer when records
//! arrive one at a time.

use std::collections::HashMap;
use std::sync::Arc;

use onepass_core::error::Result;
use onepass_groupby::join::encode_tagged;
use onepass_groupby::{FirstAgg, JoinAgg, ListAgg, TAG_BUILD, TAG_PROBE};
use onepass_runtime::{
    DatasetCache, Engine, JobSpec, MapEmitter, MapFn, Plan, PlanConfig, ReduceBackend,
};

use crate::clickgen::Click;
use crate::make_splits;

/// Cached dataset holding the partitioned user dimension table.
pub const USERS_DATASET: &str = "join-users";

/// Country codes the generator assigns users to.
pub const COUNTRIES: [&str; 8] = ["AR", "BR", "DE", "FR", "IN", "JP", "KE", "US"];

/// Deterministic user dimension records: `"<uid>\t<country>"`.
pub fn user_records(users: usize) -> Vec<Vec<u8>> {
    (0..users as u32)
        .map(|uid| {
            let cc = COUNTRIES[(uid as usize * 7 + 3) % COUNTRIES.len()];
            format!("{uid}\t{cc}").into_bytes()
        })
        .collect()
}

fn parse_user(record: &[u8]) -> (u32, Vec<u8>) {
    let line = std::str::from_utf8(record).expect("utf8 user record");
    let (uid, cc) = line.split_once('\t').expect("uid\\tcountry");
    (uid.parse().expect("uid"), cc.as_bytes().to_vec())
}

struct ParseUserMap;

impl MapFn for ParseUserMap {
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
        let (uid, cc) = parse_user(record);
        out.emit(&uid.to_le_bytes(), &cc);
    }
}

/// The two-input join map: click records arrive as plan input through
/// `map` (probe side), cached user partitions arrive through
/// `map_pair` (build side). Both emit under the join key, tagged.
struct JoinMap;

impl MapFn for JoinMap {
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
        if let Some(c) = Click::from_text(record) {
            out.emit(
                &c.user.to_le_bytes(),
                &encode_tagged(TAG_PROBE, &c.url.to_le_bytes()),
            );
        }
    }

    fn map_pair(&self, key: &[u8], value: &[u8], out: &mut dyn MapEmitter) {
        out.emit(key, &encode_tagged(TAG_BUILD, value));
    }
}

/// The build-side plan: parse the user table into the cache, keyed and
/// partitioned exactly as the join stage will consume it.
pub fn build_plan(reducers: usize) -> Result<Plan> {
    let job = JobSpec::builder("users-build")
        .map_fn(Arc::new(ParseUserMap))
        .aggregate(Arc::new(FirstAgg))
        .reducers(reducers)
        .preset_onepass()
        .build()?;
    let mut b = Plan::builder();
    let s = b.add_stage(job);
    b.cache_output(s, USERS_DATASET);
    b.build()
}

/// The probe-side plan: one hybrid-hash stage joining click records
/// against the cached (aligned) build partitions. `reducers` must match
/// [`build_plan`]'s for the alignment to hold.
pub fn join_plan(reducers: usize, fanout: usize) -> Result<Plan> {
    let job = JobSpec::builder("join")
        .map_fn(Arc::new(JoinMap))
        .aggregate(Arc::new(JoinAgg))
        .reducers(reducers)
        .preset_onepass()
        .backend(ReduceBackend::HybridHash { fanout })
        .build()?;
    let mut b = Plan::builder();
    let s = b.add_stage(job);
    b.cached_input_aligned(s, USERS_DATASET);
    b.build()
}

/// Joined rows `(uid, country, url)`, sorted.
pub type Joined = Vec<(u32, Vec<u8>, u32)>;

/// Run the full cached join: build the user table into `cache`, then
/// probe it with the click records. Returns the joined rows.
pub fn run_join(
    engine: &Engine,
    cache: &DatasetCache,
    users: &[Vec<u8>],
    clicks: &[Vec<u8>],
    reducers: usize,
    fanout: usize,
    cfg: &PlanConfig,
) -> Result<Joined> {
    engine.run_plan_with_cache(
        &build_plan(reducers)?,
        make_splits(users.to_vec(), 256),
        cfg,
        Some(cache),
    )?;
    let report = engine.run_plan_with_cache(
        &join_plan(reducers, fanout)?,
        make_splits(clicks.to_vec(), 256),
        cfg,
        Some(cache),
    )?;
    let mut out = Vec::new();
    for (key, value) in report.sorted_final_outputs() {
        let uid = u32::from_le_bytes(key[..4].try_into().expect("uid key"));
        for (cc, url) in JoinAgg::decode_joined(&value) {
            out.push((
                uid,
                cc,
                u32::from_le_bytes(url[..4].try_into().expect("url")),
            ));
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Pure-Rust reference join (hash map build, per-click probe).
pub fn reference_join(users: &[Vec<u8>], clicks: &[Vec<u8>]) -> Joined {
    let table: HashMap<u32, Vec<u8>> = users.iter().map(|r| parse_user(r)).collect();
    let mut out: Joined = clicks
        .iter()
        .filter_map(|r| Click::from_text(r))
        .filter_map(|c| table.get(&c.user).map(|cc| (c.user, cc.clone(), c.url)))
        .collect();
    out.sort_unstable();
    out
}

/// Map-side broadcast variant for the serving catalog: the user table
/// is baked into the map function and each click joins as it arrives,
/// emitting `(uid, [country][u32 url])` rows collected per user.
struct BroadcastJoinMap {
    table: HashMap<u32, Vec<u8>>,
}

impl MapFn for BroadcastJoinMap {
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
        if let Some(c) = Click::from_text(record) {
            if let Some(cc) = self.table.get(&c.user) {
                let mut row = cc.clone();
                row.extend_from_slice(&c.url.to_le_bytes());
                out.emit(&c.user.to_le_bytes(), &row);
            }
        }
    }
}

/// The streaming join job over `users` dimension rows for the serving
/// catalog (one stage; joined rows list-collected per user).
pub fn streaming_job(users: usize) -> onepass_runtime::JobSpecBuilder {
    let table = user_records(users).iter().map(|r| parse_user(r)).collect();
    JobSpec::builder("join")
        .map_fn(Arc::new(BroadcastJoinMap { table }))
        .aggregate(Arc::new(ListAgg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clickgen::{ClickGen, ClickGenConfig};
    use onepass_runtime::{CacheConfig, PlanMode};
    use proptest::prelude::*;

    #[test]
    fn cached_hybrid_hash_join_matches_reference_in_both_modes() {
        let users = user_records(40);
        let mut gen = ClickGen::new(ClickGenConfig {
            users: 60, // a third of clicks miss the dimension table
            urls: 30,
            ..Default::default()
        });
        let clicks = gen.text_records(2000);
        let want = reference_join(&users, &clicks);
        assert!(!want.is_empty());

        for mode in [PlanMode::Pipelined, PlanMode::Barrier] {
            let engine = Engine::new();
            let cache = DatasetCache::new(CacheConfig::default());
            let got = run_join(
                &engine,
                &cache,
                &users,
                &clicks,
                3,
                4,
                &PlanConfig::new(mode),
            )
            .unwrap();
            assert_eq!(got, want, "{mode:?}");
            assert!(cache.stats().hits > 0, "{mode:?}: probe read cached build");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn join_matches_reference_on_random_inputs(
            users in 1usize..30,
            clicks in proptest::collection::vec((0u32..40, 0u32..20), 0..200),
            reducers in 1usize..5,
        ) {
            let users = user_records(users);
            let clicks: Vec<Vec<u8>> = clicks
                .iter()
                .enumerate()
                .map(|(i, &(u, url))| Click { ts: i as u32, user: u, url }.to_text())
                .collect();
            let want = reference_join(&users, &clicks);
            let engine = Engine::new();
            let cache = DatasetCache::new(CacheConfig::default());
            let got = run_join(
                &engine,
                &cache,
                &users,
                &clicks,
                reducers,
                4,
                &PlanConfig::default(),
            )
            .unwrap();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn streaming_broadcast_join_agrees_with_reference() {
        let users = 25;
        let job = streaming_job(users).reducers(2).preset_onepass().build().unwrap();
        let mut gen = ClickGen::new(ClickGenConfig {
            users: 40,
            urls: 10,
            ..Default::default()
        });
        let clicks = gen.text_records(500);
        let engine = Engine::new();
        let report = engine.run(&job, make_splits(clicks.clone(), 128)).unwrap();
        let mut got: Joined = Vec::new();
        let finals = report
            .outputs
            .iter()
            .filter(|o| o.kind == onepass_groupby::EmitKind::Final);
        for out in finals {
            let (key, value) = (&out.key, &out.value);
            let uid = u32::from_le_bytes(key[..4].try_into().unwrap());
            // ListAgg frames: [u32 len][country..][u32 url]
            let mut i = 0;
            while i + 4 <= value.len() {
                let len = u32::from_le_bytes(value[i..i + 4].try_into().unwrap()) as usize;
                let row = &value[i + 4..i + 4 + len];
                let (cc, url) = row.split_at(len - 4);
                got.push((uid, cc.to_vec(), u32::from_le_bytes(url.try_into().unwrap())));
                i += 4 + len;
            }
        }
        got.sort_unstable();
        assert_eq!(got, reference_join(&user_records(users), &clicks));
    }
}
