//! Per-user click counting — Table I column 3 and the second workload of
//! Table II's CPU-split measurement ("the map function simply emits pairs
//! in the form of (user id, 1), and up to 48% of CPU cycles were consumed
//! by sorting these pairs").

use std::sync::Arc;

use onepass_groupby::SumAgg;
use onepass_runtime::{Combine, JobSpec, JobSpecBuilder, MapEmitter, MapFn};

use crate::clickgen::Click;

/// Map function over text click logs: emit `(user, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerUserMapText;

impl MapFn for PerUserMapText {
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
        if let Some(c) = Click::from_text(record) {
            out.emit(&c.user.to_le_bytes(), &1u64.to_le_bytes());
        }
    }
}

/// Map function over binary click logs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerUserMapBinary;

impl MapFn for PerUserMapBinary {
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
        if let Some(c) = Click::from_binary(record) {
            out.emit(&c.user.to_le_bytes(), &1u64.to_le_bytes());
        }
    }
}

/// Job builder preset: per-user counting over text logs, combine on.
pub fn job() -> JobSpecBuilder {
    JobSpec::builder("per-user-count")
        .map_fn(Arc::new(PerUserMapText))
        .aggregate(Arc::new(SumAgg))
        .combine_mode(Combine::On)
}

#[cfg(test)]
mod tests {
    use super::*;
    use onepass_runtime::{Engine, ReduceBackend};

    #[test]
    fn counts_users_with_hash_backend() {
        let mut gen = crate::clickgen::ClickGen::new(Default::default());
        let records = gen.text_records(400);
        let mut truth = std::collections::HashMap::new();
        for r in &records {
            let c = Click::from_text(r).unwrap();
            *truth.entry(c.user).or_insert(0u64) += 1;
        }
        let splits = crate::make_splits(records, 64);
        let job = job().reducers(2).preset_onepass().build().unwrap();
        assert!(matches!(job.backend, ReduceBackend::FreqHash(_)));
        let report = Engine::new().run(&job, splits).unwrap();
        let mut total = 0u64;
        for o in report
            .outputs
            .iter()
            .filter(|o| o.kind == onepass_groupby::EmitKind::Final)
        {
            total += crate::page_frequency::decode_count(&o.value);
        }
        assert_eq!(total, 400);
        assert_eq!(
            report.groups_out as usize,
            truth.len(),
            "one final answer per user"
        );
    }
}
