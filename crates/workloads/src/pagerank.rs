//! PageRank as a multi-round cached plan — the canonical iterative
//! workload in the M3R direction (arXiv:1208.4168): the graph's
//! adjacency is exactly the kind of reusable, partition-stable dataset
//! the [`DatasetCache`] holds, so the cached loop never re-scans,
//! re-parses, or re-shuffles it. Each cached round shuffles *only* the
//! 8-byte rank contributions; the new ranks come back partitioned and
//! sorted exactly like the resident state, and the driver zip-merges
//! them into the adjacency in place at the round boundary (the
//! "Schimmy" pattern: state that does not move is never re-sent).
//!
//! The uncached baseline is what the same loop costs as a chain of
//! independent jobs: every round's state — ranks *and* adjacency — is
//! serialized to text records on a file-backed store, read back, text
//! parsed, and pushed through the full map/shuffle/reduce path, the way
//! Hadoop chains iterative jobs through HDFS.
//!
//! All arithmetic is fixed-point `u64` at [`SCALE`] with damping
//! 85/100, so results are byte-identical regardless of execution mode,
//! reduction order, or cached-vs-uncached path — the property
//! `exp_iterative` asserts against [`reference`].
//!
//! Graph encoding (text records): `"<src>\t<dst>,<dst>,..."`, one line
//! per node; every node has at least one out-edge. Cached state per
//! node: key = `u32` LE node id, value =
//! `[u64 rank LE][u32 deg LE][u32 dst LE]*deg`. Uncached inter-round
//! text: `"<node>\t<rank>\t<dst>,<dst>,..."`.

use std::collections::HashMap;
use std::sync::Arc;

use onepass_core::error::Result;
use onepass_core::io::{FileSpillStore, SpillStore};
use onepass_core::SegmentBufBuilder;
use onepass_groupby::{Aggregator, FirstAgg};
use onepass_runtime::{
    DatasetCache, Engine, IterativePlan, JobSpec, MapEmitter, MapFn, Plan, PlanConfig,
};

use crate::make_splits;

/// Fixed-point scale: rank 1.0 ≡ `SCALE`. Total rank mass ≈ `SCALE`.
pub const SCALE: u64 = 1_000_000_000;
/// Damping numerator (d = 85/100).
pub const DAMP_NUM: u64 = 85;
/// Damping denominator.
pub const DAMP_DEN: u64 = 100;

/// Cached dataset holding the full per-node state (rank + adjacency).
pub const RANKS_DATASET: &str = "pagerank-ranks";

/// Per-round scratch dataset: the freshly reduced 8-byte ranks, merged
/// into [`RANKS_DATASET`] (and dropped) at each round boundary.
const NEW_RANKS_DATASET: &str = "pagerank-ranks-new";

const TAG_CONTRIB: u8 = 0;
const TAG_ADJ: u8 = 1;

/// Deterministic synthetic graph spec.
#[derive(Debug, Clone, Copy)]
pub struct GraphConfig {
    /// Node count.
    pub nodes: usize,
    /// Maximum out-degree (actual degree is 1..=max_out, seeded).
    pub max_out: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            nodes: 256,
            max_out: 8,
            seed: 7,
        }
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Generate the graph's text records, one `"<src>\t<dst>,..."` line per
/// node. Every node has ≥ 1 out-edge so no rank mass dangles.
pub fn graph_records(cfg: GraphConfig) -> Vec<Vec<u8>> {
    assert!(cfg.nodes > 0 && cfg.max_out > 0);
    let mut rng = cfg.seed | 1;
    (0..cfg.nodes)
        .map(|src| {
            let deg = (xorshift(&mut rng) as usize % cfg.max_out) + 1;
            let dsts: Vec<String> = (0..deg)
                .map(|_| (xorshift(&mut rng) as usize % cfg.nodes).to_string())
                .collect();
            format!("{src}\t{}", dsts.join(",")).into_bytes()
        })
        .collect()
}

fn encode_state(rank: u64, dsts: &[u32]) -> Vec<u8> {
    let mut v = Vec::with_capacity(12 + dsts.len() * 4);
    v.extend_from_slice(&rank.to_le_bytes());
    v.extend_from_slice(&(dsts.len() as u32).to_le_bytes());
    for d in dsts {
        v.extend_from_slice(&d.to_le_bytes());
    }
    v
}

fn decode_state(value: &[u8]) -> (u64, Vec<u32>) {
    let rank = u64::from_le_bytes(value[..8].try_into().expect("rank"));
    let deg = u32::from_le_bytes(value[8..12].try_into().expect("deg")) as usize;
    let dsts = (0..deg)
        .map(|i| u32::from_le_bytes(value[12 + i * 4..16 + i * 4].try_into().unwrap()))
        .collect();
    (rank, dsts)
}

/// `(1 - d) / N` at scale — the rank a node with no inbound
/// contributions holds.
fn base_rank(nodes: usize) -> u64 {
    SCALE * (DAMP_DEN - DAMP_NUM) / (DAMP_DEN * nodes as u64)
}

fn contribution(rank: u64, deg: usize) -> u64 {
    rank * DAMP_NUM / (DAMP_DEN * deg as u64)
}

/// Parse a graph text record into the initial per-node state.
struct ParseGraphMap {
    init_rank: u64,
}

impl MapFn for ParseGraphMap {
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
        let line = std::str::from_utf8(record).expect("utf8 graph record");
        let (src, rest) = line.split_once('\t').expect("src\\tdsts");
        let src: u32 = src.parse().expect("node id");
        let dsts: Vec<u32> = rest
            .split(',')
            .map(|d| d.parse().expect("dst id"))
            .collect();
        out.emit(&src.to_le_bytes(), &encode_state(self.init_rank, &dsts));
    }
}

/// The cached round's map: fan the 8-byte contributions out along the
/// edges — and nothing else. The adjacency never leaves its partition;
/// [`merge_new_ranks`] folds the reduced ranks back into it in place.
struct ContribMap;

impl MapFn for ContribMap {
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
        let (k, v) = onepass_runtime::codec::decode_pair(record).expect("edge record");
        self.map_pair(k, v, out);
    }

    fn map_pair(&self, _key: &[u8], value: &[u8], out: &mut dyn MapEmitter) {
        let (rank, dsts) = decode_state(value);
        let cv = contribution(rank, dsts.len()).to_le_bytes();
        for d in &dsts {
            out.emit(&d.to_le_bytes(), &cv);
        }
    }
}

/// Sum 8-byte contributions; finish to `base + Σcontrib`. Plain sums
/// merge, so this is a legal map-side combiner.
#[derive(Debug, Clone, Copy)]
struct RankAgg {
    base: u64,
}

impl Aggregator for RankAgg {
    fn init(&self, _key: &[u8], value: &[u8]) -> Vec<u8> {
        value.to_vec()
    }

    fn update(&self, _key: &[u8], state: &mut Vec<u8>, value: &[u8]) {
        let n = u64::from_le_bytes(state[..8].try_into().unwrap())
            + u64::from_le_bytes(value[..8].try_into().unwrap());
        state[..8].copy_from_slice(&n.to_le_bytes());
    }

    fn merge(&self, key: &[u8], state: &mut Vec<u8>, other: &[u8]) {
        self.update(key, state, other);
    }

    fn finish(&self, _key: &[u8], state: Vec<u8>) -> Vec<u8> {
        let sum = u64::from_le_bytes(state[..8].try_into().unwrap());
        (self.base + sum).to_le_bytes().to_vec()
    }

    fn combinable(&self) -> bool {
        true
    }
}

/// The uncached round's map: parse a `"<node>\t<rank>\t<dst>,..."` text
/// state record, fan out contributions, and carry the adjacency forward
/// through the shuffle — without a cache the next round can only get it
/// from this round's output.
struct CarryContribMap;

impl MapFn for CarryContribMap {
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
        let line = std::str::from_utf8(record).expect("utf8 state record");
        let mut it = line.split('\t');
        let node: u32 = it.next().expect("node").parse().expect("node id");
        let rank: u64 = it.next().expect("rank").parse().expect("rank");
        let dsts: Vec<u32> = it
            .next()
            .expect("dsts")
            .split(',')
            .map(|d| d.parse().expect("dst id"))
            .collect();
        let mut cv = [0u8; 9];
        cv[0] = TAG_CONTRIB;
        cv[1..].copy_from_slice(&contribution(rank, dsts.len()).to_le_bytes());
        for d in &dsts {
            out.emit(&d.to_le_bytes(), &cv);
        }
        let mut adj = Vec::with_capacity(5 + dsts.len() * 4);
        adj.push(TAG_ADJ);
        adj.extend_from_slice(&(dsts.len() as u32).to_le_bytes());
        for d in &dsts {
            adj.extend_from_slice(&d.to_le_bytes());
        }
        out.emit(&node.to_le_bytes(), &adj);
    }
}

fn tagged_parts(value: &[u8]) -> (u64, &[u8]) {
    match value[0] {
        TAG_CONTRIB => (
            u64::from_le_bytes(value[1..9].try_into().expect("contrib")),
            &[],
        ),
        _ => (0, &value[1..]),
    }
}

/// The uncached round's fold: sum tagged contributions, keep the
/// adjacency, finish to the next round's full state
/// `[base + Σcontrib][adjacency]`.
#[derive(Debug, Clone, Copy)]
struct CarryRankAgg {
    base: u64,
}

impl Aggregator for CarryRankAgg {
    fn init(&self, _key: &[u8], value: &[u8]) -> Vec<u8> {
        let (sum, adj) = tagged_parts(value);
        let mut st = sum.to_le_bytes().to_vec();
        st.extend_from_slice(adj);
        st
    }

    fn update(&self, _key: &[u8], state: &mut Vec<u8>, value: &[u8]) {
        let (sum, adj) = tagged_parts(value);
        let n = u64::from_le_bytes(state[..8].try_into().unwrap()) + sum;
        state[..8].copy_from_slice(&n.to_le_bytes());
        if state.len() == 8 {
            state.extend_from_slice(adj);
        }
    }

    fn merge(&self, _key: &[u8], state: &mut Vec<u8>, other: &[u8]) {
        let n = u64::from_le_bytes(state[..8].try_into().unwrap())
            + u64::from_le_bytes(other[..8].try_into().unwrap());
        state[..8].copy_from_slice(&n.to_le_bytes());
        if state.len() == 8 {
            state.extend_from_slice(&other[8..]);
        }
    }

    fn finish(&self, _key: &[u8], state: Vec<u8>) -> Vec<u8> {
        let sum = u64::from_le_bytes(state[..8].try_into().unwrap());
        let mut out = (self.base + sum).to_le_bytes().to_vec();
        out.extend_from_slice(&state[8..]);
        out
    }

    fn combinable(&self) -> bool {
        true
    }
}

fn parse_job(nodes: usize, reducers: usize) -> Result<JobSpec> {
    JobSpec::builder("pagerank-parse")
        .map_fn(Arc::new(ParseGraphMap {
            init_rank: SCALE / nodes as u64,
        }))
        .aggregate(Arc::new(FirstAgg))
        .reducers(reducers)
        .preset_onepass()
        .build()
}

fn rank_job(nodes: usize, reducers: usize) -> Result<JobSpec> {
    JobSpec::builder("pagerank-round")
        .map_fn(Arc::new(ContribMap))
        .aggregate(Arc::new(RankAgg {
            base: base_rank(nodes),
        }))
        .reducers(reducers)
        .preset_onepass()
        .build()
}

fn carry_job(nodes: usize, reducers: usize) -> Result<JobSpec> {
    JobSpec::builder("pagerank-round")
        .map_fn(Arc::new(CarryContribMap))
        .aggregate(Arc::new(CarryRankAgg {
            base: base_rank(nodes),
        }))
        .reducers(reducers)
        .preset_onepass()
        .build()
}

/// Knobs shared by the cached and uncached drivers.
#[derive(Debug, Clone)]
pub struct PageRankConfig {
    /// Node count (must match the record set).
    pub nodes: usize,
    /// Maximum rounds.
    pub rounds: usize,
    /// Stop when no rank moves by more than this (in [`SCALE`] units);
    /// `None` always runs `rounds` rounds.
    pub eps: Option<u64>,
    /// Reducers per round (held constant: partition-stable placement).
    pub reducers: usize,
    /// Plan execution config for every round.
    pub plan: PlanConfig,
    /// Records per map split.
    pub records_per_split: usize,
}

impl PageRankConfig {
    /// Defaults for `nodes` nodes: 10 rounds, no eps cutoff, 4 reducers.
    pub fn new(nodes: usize) -> Self {
        PageRankConfig {
            nodes,
            rounds: 10,
            eps: None,
            reducers: 4,
            plan: PlanConfig::default(),
            records_per_split: 256,
        }
    }
}

/// Final ranks, sorted by node id.
pub type Ranks = Vec<(u32, u64)>;

fn ranks_of(pairs: impl IntoIterator<Item = (Vec<u8>, Vec<u8>)>) -> Ranks {
    let mut out: Ranks = pairs
        .into_iter()
        .map(|(k, v)| {
            (
                u32::from_le_bytes(k[..4].try_into().expect("node key")),
                u64::from_le_bytes(v[..8].try_into().expect("rank")),
            )
        })
        .collect();
    out.sort_unstable();
    out
}

fn converged(prev: &HashMap<u32, u64>, cur: &Ranks, eps: Option<u64>) -> bool {
    match eps {
        None => false,
        Some(eps) => cur
            .iter()
            .all(|&(n, r)| prev.get(&n).map_or(false, |&p| r.abs_diff(p) <= eps)),
    }
}

/// The cached round boundary: zip-merge the freshly reduced ranks into
/// the resident state, partition by partition. Both datasets were
/// captured under the same partitioner and reducer count, sorted by
/// key, so the merge is one aligned linear pass — the adjacency bytes
/// never move. Nodes absent from the new ranks (no inbound
/// contributions) take the base rank. Returns the max rank delta.
fn merge_new_ranks(cache: &DatasetCache, nodes: usize) -> Result<u64> {
    let state = cache.get(RANKS_DATASET)?.expect("state cached");
    let news = cache.get(NEW_RANKS_DATASET)?.expect("round ranks cached");
    assert_eq!(state.len(), news.len(), "partition-stable placement");
    let base = base_rank(nodes).to_le_bytes();
    let mut max_delta = 0u64;
    let mut merged = Vec::with_capacity(state.len());
    for (sp, np) in state.iter().zip(news.iter()) {
        let mut b = SegmentBufBuilder::new();
        let mut ni = np.iter().peekable();
        let mut nv = Vec::new();
        for (k, v) in sp.iter() {
            while ni.peek().map_or(false, |&(nk, _)| nk < k) {
                ni.next(); // rank for a node outside the state: drop
            }
            nv.clear();
            match ni.peek() {
                Some(&(nk, new_rank)) if nk == k => {
                    nv.extend_from_slice(new_rank);
                    ni.next();
                }
                _ => nv.extend_from_slice(&base),
            }
            let old = u64::from_le_bytes(v[..8].try_into().unwrap());
            let new = u64::from_le_bytes(nv[..8].try_into().unwrap());
            max_delta = max_delta.max(new.abs_diff(old));
            nv.extend_from_slice(&v[8..]);
            b.push(k, &nv);
        }
        merged.push(b.finish());
    }
    cache.put(RANKS_DATASET, merged)?;
    cache.remove(NEW_RANKS_DATASET)?;
    Ok(max_delta)
}

/// Run PageRank through the [`DatasetCache`]: round 0 parses and caches
/// the full state; each later round reads the cached partitions as
/// zero-copy splits, shuffles only the contributions, and merges the
/// new ranks back in place. Returns the final ranks and the number of
/// rounds run.
pub fn run_cached(
    engine: &Engine,
    cache: &DatasetCache,
    records: &[Vec<u8>],
    cfg: &PageRankConfig,
) -> Result<(Ranks, usize)> {
    let nodes = cfg.nodes;
    let reducers = cfg.reducers;
    let splits = make_splits(records.to_vec(), cfg.records_per_split);
    let mut iter = IterativePlan::new(cfg.plan.clone(), move |round, _c| {
        let mut b = Plan::builder();
        if round == 0 {
            let s = b.add_stage(parse_job(nodes, reducers)?);
            b.cache_output(s, RANKS_DATASET);
            Ok((b.build()?, splits.clone()))
        } else {
            let s = b.add_stage(rank_job(nodes, reducers)?);
            b.cached_input(s, RANKS_DATASET);
            b.cache_output(s, NEW_RANKS_DATASET);
            Ok((b.build()?, Vec::new()))
        }
    });
    let eps = cfg.eps;
    let reports = iter.run_until(engine, cache, cfg.rounds.max(1), |ctx| {
        if ctx.round == 0 {
            return Ok(false); // parse round: state already in place
        }
        let delta = merge_new_ranks(ctx.cache, nodes)?;
        Ok(eps.map_or(false, |eps| delta <= eps))
    })?;
    let parts = cache.get(RANKS_DATASET)?.expect("ranks cached");
    let ranks = ranks_of(
        parts
            .iter()
            .flat_map(|p| p.iter().map(|(k, v)| (k.to_vec(), v.to_vec()))),
    );
    Ok((ranks, reports.len()))
}

fn state_to_text(key: &[u8], value: &[u8]) -> Vec<u8> {
    let node = u32::from_le_bytes(key[..4].try_into().expect("node key"));
    let (rank, dsts) = decode_state(value);
    let dsts: Vec<String> = dsts.iter().map(|d| d.to_string()).collect();
    format!("{node}\t{rank}\t{}", dsts.join(",")).into_bytes()
}

/// Serialize a round's full state as text records on the store — the
/// job-output write every chained round pays without a cache.
fn write_state_run(
    store: &FileSpillStore,
    state: &[(Vec<u8>, Vec<u8>)],
) -> Result<onepass_core::io::RunId> {
    let mut w = store.begin_run()?;
    for (k, v) in state {
        w.write_record(b"", &state_to_text(k, v))?;
    }
    Ok(w.finish()?.id)
}

/// The uncached baseline: identical math, but the loop is a chain of
/// independent jobs — each round's state (ranks *and* adjacency) is
/// serialized to text records on a [`FileSpillStore`], read back,
/// re-parsed, re-split, and re-shuffled by the next round, the way
/// Hadoop chains iterative jobs through HDFS.
pub fn run_uncached(
    engine: &Engine,
    records: &[Vec<u8>],
    cfg: &PageRankConfig,
) -> Result<(Ranks, usize)> {
    let store = FileSpillStore::temp()?;
    let splits = make_splits(records.to_vec(), cfg.records_per_split);
    let plan0 = {
        let mut b = Plan::builder();
        b.add_stage(parse_job(cfg.nodes, cfg.reducers)?);
        b.build()?
    };
    let report = engine.run_plan(&plan0, splits, &cfg.plan)?;
    let mut state: Vec<(Vec<u8>, Vec<u8>)> = report.sorted_final_outputs();
    let mut prev: HashMap<u32, u64> = match cfg.eps {
        Some(_) => ranks_of(state.clone()).into_iter().collect(),
        None => HashMap::new(),
    };
    let mut rounds = 1;
    for _ in 1..cfg.rounds.max(1) {
        // Round boundary: this round's output goes to the store, the
        // next round starts by reading and re-parsing it.
        let run = write_state_run(&store, &state)?;
        let mut reader = store.open_run(run)?;
        let mut lines = Vec::with_capacity(state.len());
        while let Some(rec) = reader.next_record()? {
            lines.push(rec.value.to_vec());
        }
        drop(reader);
        store.delete_run(run)?;
        let plan = {
            let mut b = Plan::builder();
            b.add_stage(carry_job(cfg.nodes, cfg.reducers)?);
            b.build()?
        };
        let input = make_splits(lines, cfg.records_per_split);
        let report = engine.run_plan(&plan, input, &cfg.plan)?;
        state = report.sorted_final_outputs();
        rounds += 1;
        let done = match cfg.eps {
            None => false,
            Some(_) => {
                let cur = ranks_of(state.clone());
                let done = converged(&prev, &cur, cfg.eps);
                prev = cur.into_iter().collect();
                done
            }
        };
        if done {
            break;
        }
    }
    // The chain's final job writes its output like every other round.
    let run = write_state_run(&store, &state)?;
    store.delete_run(run)?;
    Ok((ranks_of(state), rounds))
}

/// Pure-Rust reference: the same fixed-point iteration, single-threaded.
/// Returns final ranks and rounds run under the same stopping rule.
pub fn reference(records: &[Vec<u8>], cfg: &PageRankConfig) -> (Ranks, usize) {
    let mut adj: HashMap<u32, Vec<u32>> = HashMap::new();
    for r in records {
        let line = std::str::from_utf8(r).expect("utf8");
        let (src, rest) = line.split_once('\t').expect("src\\tdsts");
        let dsts = rest.split(',').map(|d| d.parse().unwrap()).collect();
        adj.insert(src.parse().unwrap(), dsts);
    }
    let n = cfg.nodes as u64;
    let base = SCALE * (DAMP_DEN - DAMP_NUM) / (DAMP_DEN * n);
    let mut ranks: HashMap<u32, u64> = adj.keys().map(|&k| (k, SCALE / n)).collect();
    let mut rounds = 1; // the parse round
    for _ in 1..cfg.rounds.max(1) {
        let mut sums: HashMap<u32, u64> = adj.keys().map(|&k| (k, 0)).collect();
        for (src, dsts) in &adj {
            let contrib = ranks[src] * DAMP_NUM / (DAMP_DEN * dsts.len() as u64);
            for d in dsts {
                *sums.get_mut(d).expect("dst exists") += contrib;
            }
        }
        let next: HashMap<u32, u64> = sums.into_iter().map(|(k, s)| (k, base + s)).collect();
        rounds += 1;
        let done = match cfg.eps {
            None => false,
            Some(eps) => next.iter().all(|(k, &r)| r.abs_diff(ranks[k]) <= eps),
        };
        ranks = next;
        if done {
            break;
        }
    }
    let mut out: Ranks = ranks.into_iter().collect();
    out.sort_unstable();
    (out, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use onepass_runtime::{CacheConfig, PlanMode};

    #[test]
    fn cached_uncached_and_reference_agree_byte_for_byte() {
        let gcfg = GraphConfig {
            nodes: 64,
            max_out: 5,
            seed: 11,
        };
        let records = graph_records(gcfg);
        let mut cfg = PageRankConfig::new(gcfg.nodes);
        cfg.rounds = 5;
        cfg.reducers = 3;
        let (want, want_rounds) = reference(&records, &cfg);
        assert_eq!(want.len(), gcfg.nodes);
        // Total mass stays ≈ SCALE (fixed-point floor loss only).
        let total: u64 = want.iter().map(|&(_, r)| r).sum();
        assert!(total <= SCALE && total > SCALE - SCALE / 100);

        for mode in [PlanMode::Pipelined, PlanMode::Barrier] {
            cfg.plan = PlanConfig::new(mode);
            let engine = Engine::new();
            let cache = DatasetCache::new(CacheConfig::default());
            let (cached, r1) = run_cached(&engine, &cache, &records, &cfg).unwrap();
            let (uncached, r2) = run_uncached(&engine, &records, &cfg).unwrap();
            assert_eq!(cached, want, "{mode:?} cached vs reference");
            assert_eq!(uncached, want, "{mode:?} uncached vs reference");
            assert_eq!((r1, r2), (want_rounds, want_rounds), "{mode:?}");
            assert!(cache.stats().hits > 0, "{mode:?}: rounds fed from cache");
        }
    }

    #[test]
    fn eps_cutoff_stops_early_and_all_paths_agree_on_rounds() {
        let gcfg = GraphConfig::default();
        let records = graph_records(gcfg);
        let mut cfg = PageRankConfig::new(gcfg.nodes);
        cfg.rounds = 50;
        cfg.eps = Some(SCALE / 10_000); // 1e-4 in rank units
        let (want, want_rounds) = reference(&records, &cfg);
        assert!(want_rounds < 50, "converges well before the cap");

        let engine = Engine::new();
        let cache = DatasetCache::new(CacheConfig::default());
        let (cached, rounds) = run_cached(&engine, &cache, &records, &cfg).unwrap();
        assert_eq!(cached, want);
        assert_eq!(rounds, want_rounds);

        let engine = Engine::new();
        let (uncached, rounds) = run_uncached(&engine, &records, &cfg).unwrap();
        assert_eq!(uncached, want);
        assert_eq!(rounds, want_rounds);
    }
}
