//! Click-log generator: a synthetic stand-in for the WorldCup'98 click
//! stream the paper replicates to 256–508 GB.
//!
//! Each record is one page visit with the schema the paper quotes
//! (`timestamp, user, url`, §II). Two encodings are produced:
//!
//! * **text lines** — `"<epoch_secs>\t<user>\t<url>"`, matching the paper's
//!   "original line-oriented text files" whose parsing falls to a regex /
//!   split in the map function;
//! * **binary records** — fixed-layout `[u32 ts][u32 user][u32 url]`,
//!   matching the pre-parsed SequenceFile variant of §III-B.1.
//!
//! Users and URLs are Zipf-distributed (real click streams are heavily
//! skewed — that skew is precisely what the frequent-key technique
//! exploits), and timestamps advance so that each user's clicks form
//! plausible sessions with occasional gaps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Configuration for [`ClickGen`].
#[derive(Debug, Clone)]
pub struct ClickGenConfig {
    /// Distinct users.
    pub users: usize,
    /// Distinct URLs.
    pub urls: usize,
    /// Zipf exponent for user popularity.
    pub user_skew: f64,
    /// Zipf exponent for URL popularity.
    pub url_skew: f64,
    /// Mean seconds between consecutive clicks overall.
    pub mean_interarrival_s: f64,
    /// Probability that a user's next click starts a new session
    /// (i.e. jumps past the session gap).
    pub session_break_p: f64,
    /// Session idle gap, seconds (sessionization's split threshold).
    pub session_gap_s: u32,
    /// RNG seed — generation is fully deterministic per seed.
    pub seed: u64,
}

impl Default for ClickGenConfig {
    fn default() -> Self {
        ClickGenConfig {
            users: 10_000,
            urls: 50_000,
            user_skew: 1.1,
            url_skew: 1.05,
            mean_interarrival_s: 0.05,
            session_break_p: 0.02,
            session_gap_s: 30 * 60,
            seed: 0x5eed,
        }
    }
}

/// One parsed click.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Click {
    /// Epoch seconds.
    pub ts: u32,
    /// User id.
    pub user: u32,
    /// URL id.
    pub url: u32,
}

impl Click {
    /// Text encoding: `"<ts>\tu<user>\t/page/<url>"`.
    pub fn to_text(self) -> Vec<u8> {
        format!("{}\tu{}\t/page/{}", self.ts, self.user, self.url).into_bytes()
    }

    /// Fixed-layout binary encoding (12 bytes).
    pub fn to_binary(self) -> Vec<u8> {
        let mut b = Vec::with_capacity(12);
        b.extend_from_slice(&self.ts.to_le_bytes());
        b.extend_from_slice(&self.user.to_le_bytes());
        b.extend_from_slice(&self.url.to_le_bytes());
        b
    }

    /// Parse the text encoding.
    pub fn from_text(line: &[u8]) -> Option<Click> {
        let mut fields = line.split(|&b| b == b'\t');
        let ts = parse_u32(fields.next()?)?;
        let user_f = fields.next()?;
        let user = parse_u32(user_f.strip_prefix(b"u")?)?;
        let url_f = fields.next()?;
        let url = parse_u32(url_f.strip_prefix(b"/page/")?)?;
        Some(Click { ts, user, url })
    }

    /// Parse the binary encoding.
    pub fn from_binary(rec: &[u8]) -> Option<Click> {
        if rec.len() != 12 {
            return None;
        }
        Some(Click {
            ts: u32::from_le_bytes(rec[0..4].try_into().ok()?),
            user: u32::from_le_bytes(rec[4..8].try_into().ok()?),
            url: u32::from_le_bytes(rec[8..12].try_into().ok()?),
        })
    }
}

fn parse_u32(bytes: &[u8]) -> Option<u32> {
    if bytes.is_empty() {
        return None;
    }
    let mut v: u32 = 0;
    for &b in bytes {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add((b - b'0') as u32)?;
    }
    Some(v)
}

/// Deterministic click-stream generator.
#[derive(Debug)]
pub struct ClickGen {
    config: ClickGenConfig,
    rng: StdRng,
    users: Zipf,
    urls: Zipf,
    clock: f64,
    /// Last click time per user (session structure).
    last_seen: Vec<f64>,
}

impl ClickGen {
    /// Create a generator.
    pub fn new(config: ClickGenConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        let users = Zipf::new(config.users, config.user_skew);
        let urls = Zipf::new(config.urls, config.url_skew);
        let last_seen = vec![0.0; config.users];
        ClickGen {
            config,
            rng,
            users,
            urls,
            clock: 1_000_000_000.0, // a fixed epoch base
            last_seen,
        }
    }

    /// Generate the next click.
    pub fn next_click(&mut self) -> Click {
        self.clock += self.config.mean_interarrival_s * self.rng.gen_range(0.0..2.0);
        let user = self.users.sample(&mut self.rng);
        // Per-user timestamps are nondecreasing (a user may click twice
        // within the same second — the clock has 1 s resolution);
        // occasionally a user "comes back" after more than the session
        // gap, so sessionization has sessions to split.
        let base = self.clock.max(self.last_seen[user]);
        let ts = if self.rng.gen_bool(self.config.session_break_p) {
            (self.last_seen[user] + self.config.session_gap_s as f64 * 1.5).max(base)
        } else {
            base
        };
        self.last_seen[user] = ts;
        Click {
            ts: ts as u32,
            user: user as u32,
            url: self.urls.sample(&mut self.rng) as u32,
        }
    }

    /// Generate `n` clicks as text lines.
    pub fn text_records(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| self.next_click().to_text()).collect()
    }

    /// Generate `n` clicks as binary records.
    pub fn binary_records(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| self.next_click().to_binary()).collect()
    }

    /// The configured session gap (seconds).
    pub fn session_gap_s(&self) -> u32 {
        self.config.session_gap_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn text_roundtrip() {
        let c = Click {
            ts: 123456,
            user: 42,
            url: 7,
        };
        let line = c.to_text();
        assert_eq!(line, b"123456\tu42\t/page/7".to_vec());
        assert_eq!(Click::from_text(&line), Some(c));
    }

    #[test]
    fn binary_roundtrip() {
        let c = Click {
            ts: u32::MAX,
            user: 0,
            url: 99,
        };
        assert_eq!(Click::from_binary(&c.to_binary()), Some(c));
        assert_eq!(Click::from_binary(b"short"), None);
    }

    #[test]
    fn malformed_text_rejected() {
        assert!(Click::from_text(b"").is_none());
        assert!(Click::from_text(b"123\tx42\t/page/1").is_none());
        assert!(Click::from_text(b"abc\tu42\t/page/1").is_none());
        assert!(Click::from_text(b"123\tu42").is_none());
        assert!(Click::from_text(b"123\tu42\t/wrong/1").is_none());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ClickGen::new(ClickGenConfig::default());
        let mut b = ClickGen::new(ClickGenConfig::default());
        for _ in 0..100 {
            assert_eq!(a.next_click(), b.next_click());
        }
        let mut c = ClickGen::new(ClickGenConfig {
            seed: 999,
            ..Default::default()
        });
        let same = (0..100).filter(|_| {
            let x = ClickGen::new(ClickGenConfig::default()).next_click();
            x == c.next_click()
        });
        assert!(same.count() < 100);
    }

    #[test]
    fn user_distribution_is_skewed() {
        let mut g = ClickGen::new(ClickGenConfig {
            users: 1000,
            ..Default::default()
        });
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(g.next_click().user).or_default() += 1;
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = freqs.iter().take(10).sum();
        assert!(
            top10 * 100 > 20_000 * 25,
            "top-10 users should own >25% of clicks, got {top10}"
        );
    }

    #[test]
    fn timestamps_are_nondecreasing_per_user() {
        let mut g = ClickGen::new(ClickGenConfig {
            users: 50,
            ..Default::default()
        });
        let mut last: HashMap<u32, u32> = HashMap::new();
        for _ in 0..5000 {
            let c = g.next_click();
            if let Some(&prev) = last.get(&c.user) {
                assert!(c.ts >= prev, "user {} time went backwards", c.user);
            }
            last.insert(c.user, c.ts);
        }
    }

    #[test]
    fn session_breaks_occur() {
        let cfg = ClickGenConfig {
            users: 10,
            session_break_p: 0.2,
            ..Default::default()
        };
        let gap = cfg.session_gap_s;
        let mut g = ClickGen::new(cfg);
        let mut by_user: HashMap<u32, Vec<u32>> = HashMap::new();
        for _ in 0..5000 {
            let c = g.next_click();
            by_user.entry(c.user).or_default().push(c.ts);
        }
        let breaks = by_user
            .values()
            .flat_map(|ts| ts.windows(2))
            .filter(|w| w[1] - w[0] > gap)
            .count();
        assert!(breaks > 0, "expected some session gaps");
    }
}
