//! # onepass-workloads
//!
//! Synthetic data generators and the four workloads of the paper's
//! benchmark (Table I):
//!
//! * **click-stream analysis** (the WorldCup'98 click logs, replicated to
//!   256–508 GB in the paper): [`sessionization`], [`page_frequency`],
//!   [`per_user_count`];
//! * **web-document analysis** (the 427 GB GOV2 crawl):
//!   [`inverted_index`].
//!
//! The generators produce Zipf-skewed synthetic equivalents — what drives
//! every conclusion in the paper is the *volume ratio* of intermediate
//! data to input and the key-frequency skew, both of which are explicit
//! parameters here. Each workload module provides the map function (text
//! and pre-parsed binary input variants — §III-B.1's parsing-cost check),
//! the reduce aggregate, and a ready-made
//! [`JobSpec`](onepass_runtime::JobSpec) builder.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calibrate;
pub mod clickgen;
pub mod distinct_users;
pub mod docgen;
pub mod inverted_index;
pub mod join;
pub mod kmeans;
pub mod page_frequency;
pub mod pagerank;
pub mod per_user_count;
pub mod serving;
pub mod sessionization;
pub mod tenantgen;
pub mod top_k;
pub mod zipf;

pub use clickgen::{ClickGen, ClickGenConfig};
pub use docgen::{DocGen, DocGenConfig};
pub use serving::{standard_catalog, CatalogConfig};
pub use tenantgen::{assign_tenants, TenantGenConfig, TenantSpec};
pub use zipf::Zipf;

use onepass_runtime::map_task::Split;

/// Chop `records` into splits of at most `per_split` records each — the
/// workload-side analogue of HDFS 64 MB blocks.
pub fn make_splits(records: Vec<Vec<u8>>, per_split: usize) -> Vec<Split> {
    assert!(per_split > 0);
    let mut splits = Vec::new();
    let mut cur = Vec::with_capacity(per_split);
    for r in records {
        cur.push(r);
        if cur.len() == per_split {
            splits.push(Split::new(std::mem::take(&mut cur)));
        }
    }
    if !cur.is_empty() {
        splits.push(Split::new(cur));
    }
    splits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_splits_covers_all_records() {
        let recs: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i]).collect();
        let splits = make_splits(recs, 4);
        assert_eq!(splits.len(), 3);
        assert_eq!(splits[0].records.len(), 4);
        assert_eq!(splits[2].records.len(), 2);
        let total: usize = splits.iter().map(|s| s.records.len()).sum();
        assert_eq!(total, 10);
    }
}
