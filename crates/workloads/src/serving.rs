//! The standard serving catalog: every paper workload as a named
//! streaming query for the multi-tenant front-end (`onepass serve`).
//!
//! Queries are tagged with the ingest family they consume — the click
//! stream ([`CLICKS_INGEST`]) or the document stream ([`DOCS_INGEST`]) —
//! so a server multiplexing both streams feeds each tenant only records
//! its map function understands. The per-query jobs are byte-identical to
//! the batch presets `onepass run`/`onepass plan` use, which is what
//! makes a tenant's served finals comparable (byte-for-byte) to a solo
//! batch run over the same records.

use std::sync::Arc;

use onepass_core::error::Result;
use onepass_groupby::PeriodicCount;
use onepass_runtime::serve::{QueryCatalog, StreamingQuery};
use onepass_runtime::ReduceBackend;

use crate::{inverted_index, page_frequency, per_user_count, sessionization, top_k};

/// Ingest family tag for text click records ([`ClickGen`](crate::ClickGen)).
pub const CLICKS_INGEST: &str = "clicks";

/// Ingest family tag for text document records ([`DocGen`](crate::DocGen)).
pub const DOCS_INGEST: &str = "docs";

/// Serving knobs the catalog's queries take.
#[derive(Debug, Clone, Copy)]
pub struct CatalogConfig {
    /// Reducers per stage-0 job (per-tenant partitions; small keeps the
    /// per-tenant lease count down).
    pub reducers: usize,
    /// `k` for the exact top-k query.
    pub k: usize,
    /// Count-based queries refresh a hot group's early answer every time
    /// its count reaches a multiple of this (0 disables early answers).
    pub early_every: u64,
    /// User-dimension rows the broadcast `join` query bakes into its
    /// map side ([`crate::join::streaming_job`]).
    pub join_users: usize,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            reducers: 2,
            k: 10,
            early_every: 256,
            join_users: 1000,
        }
    }
}

/// Swap stage 0's reduce backend for incremental hash with a periodic
/// early-answer policy. The backends all produce byte-identical *final*
/// answers (the engine's determinism suite pins that), so this changes
/// when answers surface, never what they say.
fn with_periodic_early(mut q: StreamingQuery, every: u64) -> StreamingQuery {
    if every > 0 {
        q.stages[0].backend = ReduceBackend::IncHash {
            early: Some(Arc::new(PeriodicCount(every))),
        };
    }
    q
}

/// Build the standard catalog: the four Table-I workloads, the two
/// multi-stage query plans, and the broadcast clicks ⋈ users join, each
/// under the name `onepass run`/`onepass plan` knows it by.
pub fn standard_catalog(config: CatalogConfig) -> QueryCatalog {
    let CatalogConfig {
        reducers,
        k,
        early_every,
        join_users,
    } = config;
    let mut cat = QueryCatalog::new();
    cat.register("sessionization", move || {
        Ok(StreamingQuery::single(
            sessionization::job()
                .reducers(reducers)
                .preset_onepass()
                .build()?,
        )
        .with_ingest(CLICKS_INGEST))
    });
    cat.register("page-frequency", move || {
        Ok(with_periodic_early(
            StreamingQuery::single(
                page_frequency::job()
                    .reducers(reducers)
                    .preset_onepass()
                    .build()?,
            )
            .with_ingest(CLICKS_INGEST),
            early_every,
        ))
    });
    cat.register("per-user-count", move || {
        Ok(with_periodic_early(
            StreamingQuery::single(
                per_user_count::job()
                    .reducers(reducers)
                    .preset_onepass()
                    .build()?,
            )
            .with_ingest(CLICKS_INGEST),
            early_every,
        ))
    });
    cat.register("top-k", move || {
        Ok(with_periodic_early(
            StreamingQuery::from_plan(&top_k::plan(k, reducers)?)?.with_ingest(CLICKS_INGEST),
            early_every,
        ))
    });
    cat.register("inverted-index", move || {
        Ok(StreamingQuery::single(
            inverted_index::job()
                .reducers(reducers)
                .preset_onepass()
                .build()?,
        )
        .with_ingest(DOCS_INGEST))
    });
    cat.register("join", move || {
        Ok(StreamingQuery::single(
            crate::join::streaming_job(join_users)
                .reducers(reducers)
                .preset_onepass()
                .build()?,
        )
        .with_ingest(CLICKS_INGEST))
    });
    cat.register("df-histogram", move || {
        Ok(
            StreamingQuery::from_plan(&inverted_index::df_histogram_plan(reducers)?)?
                .with_ingest(DOCS_INGEST),
        )
    });
    cat
}

/// The ingest family `query` consumes, per the standard catalog.
pub fn ingest_family(query: &str) -> &'static str {
    match query {
        "inverted-index" | "df-histogram" => DOCS_INGEST,
        _ => CLICKS_INGEST,
    }
}

/// Resolve + sanity-check every catalog entry (used by tests and the
/// CLI's `workloads` listing).
pub fn validate_catalog(cat: &QueryCatalog) -> Result<()> {
    for name in cat.names() {
        cat.resolve(&name)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_registers_all_queries_and_they_compile() {
        let cat = standard_catalog(CatalogConfig::default());
        assert_eq!(
            cat.names(),
            vec![
                "df-histogram",
                "inverted-index",
                "join",
                "page-frequency",
                "per-user-count",
                "sessionization",
                "top-k",
            ]
        );
        validate_catalog(&cat).unwrap();
        // Multi-stage plans compile to cascades with routes.
        let topk = cat.resolve("top-k").unwrap();
        assert_eq!(topk.stages.len(), 2);
        assert_eq!(topk.ingest, CLICKS_INGEST);
        let dfh = cat.resolve("df-histogram").unwrap();
        assert_eq!(dfh.stages.len(), 2);
        assert_eq!(dfh.ingest, DOCS_INGEST);
    }

    #[test]
    fn ingest_family_matches_catalog_tags() {
        let cat = standard_catalog(CatalogConfig::default());
        for name in cat.names() {
            assert_eq!(cat.resolve(&name).unwrap().ingest, ingest_family(&name));
        }
    }
}
