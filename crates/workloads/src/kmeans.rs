//! Lloyd's k-means as a multi-round cached plan — the second iterative
//! workload. The point set is the M3R-style *cached input*: it never
//! changes across rounds, so round 0 parses it once into the
//! [`DatasetCache`] and every later round re-reads the cached
//! partitions as zero-copy splits; only the (tiny) centroid set moves
//! between rounds, also through the cache.
//!
//! Coordinates are `i64` fixed-point; distances accumulate in `i128`;
//! new centroids are truncating integer means and assignment ties break
//! toward the lowest centroid id — all byte-deterministic, matching
//! [`reference`] exactly. A centroid that attracts no points is
//! dropped (its id simply stops appearing), exactly as in the
//! reference.
//!
//! Text records: `"<pid>\t<c0>,<c1>,..."`. Cached point value:
//! `[i64 coord LE]*dim`, key = `u32` LE point id. Cached centroid
//! value: same coord layout, key = `u32` LE centroid id.

use std::collections::HashMap;
use std::sync::Arc;

use onepass_core::error::{Error, Result};
use onepass_groupby::{Aggregator, FirstAgg};
use onepass_runtime::{
    DatasetCache, Engine, IterativePlan, JobSpec, MapEmitter, MapFn, Plan, PlanConfig,
};

use crate::make_splits;

/// Cached dataset holding the immutable point set.
pub const POINTS_DATASET: &str = "kmeans-points";
/// Cached dataset holding the current centroids.
pub const CENTROIDS_DATASET: &str = "kmeans-centroids";

/// Deterministic clustered point generator.
#[derive(Debug, Clone, Copy)]
pub struct PointsConfig {
    /// Point count.
    pub points: usize,
    /// Dimensions per point.
    pub dim: usize,
    /// True cluster count the generator scatters points around.
    pub clusters: usize,
    /// Distance between generated cluster centers.
    pub spread: i64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for PointsConfig {
    fn default() -> Self {
        PointsConfig {
            points: 300,
            dim: 2,
            clusters: 3,
            spread: 10_000,
            seed: 5,
        }
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Generate text point records clustered around `clusters` centers.
pub fn point_records(cfg: PointsConfig) -> Vec<Vec<u8>> {
    assert!(cfg.points > 0 && cfg.dim > 0 && cfg.clusters > 0);
    let mut rng = cfg.seed | 1;
    (0..cfg.points)
        .map(|pid| {
            let c = pid % cfg.clusters;
            let coords: Vec<String> = (0..cfg.dim)
                .map(|d| {
                    let center = c as i64 * cfg.spread + d as i64;
                    let jitter = (xorshift(&mut rng) % (cfg.spread as u64 / 10).max(1)) as i64
                        - cfg.spread / 20;
                    (center + jitter).to_string()
                })
                .collect();
            format!("{pid}\t{}", coords.join(",")).into_bytes()
        })
        .collect()
}

fn encode_coords(coords: &[i64]) -> Vec<u8> {
    coords.iter().flat_map(|c| c.to_le_bytes()).collect()
}

fn decode_coords(value: &[u8]) -> Vec<i64> {
    value
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn parse_point(record: &[u8]) -> (u32, Vec<i64>) {
    let line = std::str::from_utf8(record).expect("utf8 point record");
    let (pid, rest) = line.split_once('\t').expect("pid\\tcoords");
    (
        pid.parse().expect("point id"),
        rest.split(',').map(|c| c.parse().expect("coord")).collect(),
    )
}

struct ParsePointMap;

impl MapFn for ParsePointMap {
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
        let (pid, coords) = parse_point(record);
        out.emit(&pid.to_le_bytes(), &encode_coords(&coords));
    }
}

fn nearest(coords: &[i64], centroids: &[(u32, Vec<i64>)]) -> u32 {
    let mut best = (i128::MAX, u32::MAX);
    for (cid, c) in centroids {
        let d: i128 = coords
            .iter()
            .zip(c)
            .map(|(&a, &b)| {
                let diff = (a - b) as i128;
                diff * diff
            })
            .sum();
        if (d, *cid) < best {
            best = (d, *cid);
        }
    }
    best.1
}

/// Assign each cached point to its nearest centroid. The centroid set
/// is baked in at plan-build time — rebuilt each round from the cache.
struct AssignMap {
    centroids: Vec<(u32, Vec<i64>)>,
}

impl MapFn for AssignMap {
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
        let (k, v) = onepass_runtime::codec::decode_pair(record).expect("edge record");
        self.map_pair(k, v, out);
    }

    fn map_pair(&self, _key: &[u8], value: &[u8], out: &mut dyn MapEmitter) {
        let coords = decode_coords(value);
        let cid = nearest(&coords, &self.centroids);
        let mut v = 1u64.to_le_bytes().to_vec();
        v.extend_from_slice(value);
        out.emit(&cid.to_le_bytes(), &v);
    }
}

/// Sum `[u64 count][i64 coord]*dim` partials; finish to the truncating
/// integer mean — the next round's centroid.
#[derive(Debug, Clone, Copy)]
struct MeanAgg;

impl Aggregator for MeanAgg {
    fn init(&self, _key: &[u8], value: &[u8]) -> Vec<u8> {
        value.to_vec()
    }

    fn update(&self, _key: &[u8], state: &mut Vec<u8>, value: &[u8]) {
        let n = u64::from_le_bytes(state[..8].try_into().unwrap())
            + u64::from_le_bytes(value[..8].try_into().unwrap());
        state[..8].copy_from_slice(&n.to_le_bytes());
        for (s, v) in state[8..].chunks_exact_mut(8).zip(value[8..].chunks_exact(8)) {
            let sum = i64::from_le_bytes(s.try_into().unwrap())
                + i64::from_le_bytes(v.try_into().unwrap());
            s.copy_from_slice(&sum.to_le_bytes());
        }
    }

    fn merge(&self, key: &[u8], state: &mut Vec<u8>, other: &[u8]) {
        self.update(key, state, other);
    }

    fn finish(&self, _key: &[u8], state: Vec<u8>) -> Vec<u8> {
        let count = u64::from_le_bytes(state[..8].try_into().unwrap()) as i64;
        let mean: Vec<i64> = state[8..]
            .chunks_exact(8)
            .map(|s| i64::from_le_bytes(s.try_into().unwrap()) / count)
            .collect();
        encode_coords(&mean)
    }

    fn combinable(&self) -> bool {
        true
    }
}

fn parse_job(reducers: usize) -> Result<JobSpec> {
    JobSpec::builder("kmeans-parse")
        .map_fn(Arc::new(ParsePointMap))
        .aggregate(Arc::new(FirstAgg))
        .reducers(reducers)
        .preset_onepass()
        .build()
}

fn assign_job(centroids: Vec<(u32, Vec<i64>)>, reducers: usize) -> Result<JobSpec> {
    JobSpec::builder("kmeans-assign")
        .map_fn(Arc::new(AssignMap { centroids }))
        .aggregate(Arc::new(MeanAgg))
        .reducers(reducers)
        .preset_onepass()
        .build()
}

/// Knobs for the k-means loop.
#[derive(Debug, Clone)]
pub struct KMeansConfig {
    /// Centroid count (seeded from the first `k` point records).
    pub k: usize,
    /// Maximum rounds (round 0 parses and caches the points).
    pub rounds: usize,
    /// Stop when no centroid coordinate moves by more than this;
    /// `None` always runs `rounds` rounds.
    pub eps: Option<i64>,
    /// Reducers per round.
    pub reducers: usize,
    /// Plan execution config for every round.
    pub plan: PlanConfig,
    /// Records per map split.
    pub records_per_split: usize,
}

impl KMeansConfig {
    /// Defaults for `k` centroids: 10 rounds, exact convergence cutoff.
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            rounds: 10,
            eps: Some(0),
            reducers: 4,
            plan: PlanConfig::default(),
            records_per_split: 256,
        }
    }
}

/// Final centroids, sorted by centroid id.
pub type Centroids = Vec<(u32, Vec<i64>)>;

fn seed_centroids(records: &[Vec<u8>], k: usize) -> Result<Centroids> {
    if records.len() < k {
        return Err(Error::Config(format!(
            "k-means needs at least k={k} records, got {}",
            records.len()
        )));
    }
    Ok(records[..k]
        .iter()
        .enumerate()
        .map(|(cid, r)| (cid as u32, parse_point(r).1))
        .collect())
}

fn cached_centroids(cache: &DatasetCache) -> Result<Centroids> {
    let parts = cache.get(CENTROIDS_DATASET)?.expect("centroids cached");
    let mut out: Centroids = parts
        .iter()
        .flat_map(|p| {
            p.iter().map(|(k, v)| {
                (
                    u32::from_le_bytes(k[..4].try_into().expect("cid")),
                    decode_coords(v),
                )
            })
        })
        .collect();
    out.sort_unstable();
    Ok(out)
}

fn moved(prev: &Centroids, cur: &Centroids, eps: i64) -> bool {
    if prev.len() != cur.len() {
        return true;
    }
    prev.iter().zip(cur).any(|((pid, pc), (cid, cc))| {
        pid != cid || pc.iter().zip(cc).any(|(&a, &b)| (a - b).abs() > eps)
    })
}

/// Run cached k-means: round 0 parses the points into the cache and the
/// driver seeds the centroids from the first `k` records; each later
/// round assigns the cached points to the current centroids and caches
/// the new centroid set. Returns final centroids and rounds run.
pub fn run_cached(
    engine: &Engine,
    cache: &DatasetCache,
    records: &[Vec<u8>],
    cfg: &KMeansConfig,
) -> Result<(Centroids, usize)> {
    let reducers = cfg.reducers;
    let splits = make_splits(records.to_vec(), cfg.records_per_split);
    let mut current = seed_centroids(records, cfg.k)?;
    let seed = current.clone();
    let mut iter = IterativePlan::new(cfg.plan.clone(), move |round, c| {
        let mut b = Plan::builder();
        if round == 0 {
            let s = b.add_stage(parse_job(reducers)?);
            b.cache_output(s, POINTS_DATASET);
            Ok((b.build()?, splits.clone()))
        } else {
            let centroids = if round == 1 {
                seed.clone()
            } else {
                cached_centroids(c)?
            };
            let s = b.add_stage(assign_job(centroids, reducers)?);
            b.cached_input(s, POINTS_DATASET);
            b.cache_output(s, CENTROIDS_DATASET);
            Ok((b.build()?, Vec::new()))
        }
    });
    let eps = cfg.eps;
    let reports = iter.run_until(engine, cache, cfg.rounds.max(1), |ctx| {
        if ctx.round == 0 {
            return Ok(false);
        }
        let next = cached_centroids(ctx.cache)?;
        let done = match eps {
            None => false,
            Some(eps) => !moved(&current, &next, eps),
        };
        current = next;
        Ok(done)
    })?;
    Ok((cached_centroids(cache)?, reports.len()))
}

/// Pure-Rust reference: same integer math, same seeding, same stopping
/// rule, single-threaded.
pub fn reference(records: &[Vec<u8>], cfg: &KMeansConfig) -> Result<(Centroids, usize)> {
    let points: Vec<(u32, Vec<i64>)> = records.iter().map(|r| parse_point(r)).collect();
    let mut current = seed_centroids(records, cfg.k)?;
    let mut rounds = 1; // the parse round
    for _ in 1..cfg.rounds.max(1) {
        let mut acc: HashMap<u32, (u64, Vec<i64>)> = HashMap::new();
        for (_, coords) in &points {
            let cid = nearest(coords, &current);
            let e = acc.entry(cid).or_insert_with(|| (0, vec![0; coords.len()]));
            e.0 += 1;
            for (s, &c) in e.1.iter_mut().zip(coords) {
                *s += c;
            }
        }
        let mut next: Centroids = acc
            .into_iter()
            .map(|(cid, (n, sums))| (cid, sums.into_iter().map(|s| s / n as i64).collect()))
            .collect();
        next.sort_unstable();
        rounds += 1;
        let done = matches!(cfg.eps, Some(eps) if !moved(&current, &next, eps));
        current = next;
        if done {
            break;
        }
    }
    Ok((current, rounds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use onepass_runtime::{CacheConfig, PlanMode};

    #[test]
    fn cached_loop_matches_reference_and_recovers_clusters() {
        let pcfg = PointsConfig::default();
        let records = point_records(pcfg);
        let mut cfg = KMeansConfig::new(pcfg.clusters);
        cfg.rounds = 15;
        cfg.reducers = 3;
        let (want, want_rounds) = reference(&records, &cfg).unwrap();
        assert!(want_rounds < 15, "converges before the cap");
        assert_eq!(want.len(), pcfg.clusters);
        // Each recovered centroid sits near one true generator center.
        for (i, (_, coords)) in want.iter().enumerate() {
            let center = i as i64 * pcfg.spread;
            assert!(
                (coords[0] - center).abs() < pcfg.spread / 5,
                "centroid {i} at {coords:?}, expected near {center}"
            );
        }

        for mode in [PlanMode::Pipelined, PlanMode::Barrier] {
            cfg.plan = PlanConfig::new(mode);
            let engine = Engine::new();
            let cache = DatasetCache::new(CacheConfig::default());
            let (got, rounds) = run_cached(&engine, &cache, &records, &cfg).unwrap();
            assert_eq!(got, want, "{mode:?}");
            assert_eq!(rounds, want_rounds, "{mode:?}");
            assert!(
                cache.stats().hits as usize >= rounds - 1,
                "{mode:?}: every assign round reads cached points"
            );
        }
    }

    #[test]
    fn fixed_rounds_without_eps() {
        let pcfg = PointsConfig {
            points: 60,
            ..Default::default()
        };
        let records = point_records(pcfg);
        let mut cfg = KMeansConfig::new(3);
        cfg.rounds = 4;
        cfg.eps = None;
        cfg.reducers = 2;
        let (want, want_rounds) = reference(&records, &cfg).unwrap();
        assert_eq!(want_rounds, 4);
        let engine = Engine::new();
        let cache = DatasetCache::new(CacheConfig::default());
        let (got, rounds) = run_cached(&engine, &cache, &records, &cfg).unwrap();
        assert_eq!((got, rounds), (want, 4));
    }
}
