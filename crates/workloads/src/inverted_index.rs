//! Inverted-index construction — the web-document workload (Table I
//! column 4, Fig. 3).
//!
//! "The map function extracts (word, (doc id, position)) pairs and the
//! reduce function builds a list of document ids and positions for each
//! word" (§III-A). Intermediate data is smaller than the collection but
//! still substantial (~70% of input including reduce spill).

use std::sync::Arc;

use onepass_core::error::Result;
use onepass_groupby::{Aggregator, SumAgg};
use onepass_runtime::{Combine, JobSpec, JobSpecBuilder, MapEmitter, MapFn, PairMap, Plan};

use crate::docgen::parse_doc;

/// One posting: where a word occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Posting {
    /// Document id.
    pub doc: u32,
    /// Word position within the document.
    pub pos: u32,
}

impl Posting {
    fn encode(self) -> [u8; 8] {
        let mut b = [0u8; 8];
        b[..4].copy_from_slice(&self.doc.to_le_bytes());
        b[4..].copy_from_slice(&self.pos.to_le_bytes());
        b
    }

    fn decode(b: &[u8]) -> Posting {
        Posting {
            doc: u32::from_le_bytes(b[0..4].try_into().unwrap()),
            pos: u32::from_le_bytes(b[4..8].try_into().unwrap()),
        }
    }
}

/// Map function: tokenize a document, emit `(word, (doc, pos))`.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexMap;

impl MapFn for IndexMap {
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
        let Some((doc, words)) = parse_doc(record) else {
            return;
        };
        for (pos, word) in words.enumerate() {
            out.emit(
                word,
                &Posting {
                    doc,
                    pos: pos as u32,
                }
                .encode(),
            );
        }
    }
}

/// The index-building reduce function: collect postings, sort by
/// `(doc, pos)`, emit the posting list. Holistic — no combiner can shrink
/// it (every posting must survive).
#[derive(Debug, Clone, Copy, Default)]
pub struct PostingListAgg;

impl PostingListAgg {
    /// Decode a finished posting list.
    pub fn decode(out: &[u8]) -> Vec<Posting> {
        out.chunks_exact(8).map(Posting::decode).collect()
    }
}

impl Aggregator for PostingListAgg {
    fn init(&self, _key: &[u8], value: &[u8]) -> Vec<u8> {
        value.to_vec()
    }

    fn update(&self, _key: &[u8], state: &mut Vec<u8>, value: &[u8]) {
        state.extend_from_slice(value);
    }

    fn merge(&self, _key: &[u8], state: &mut Vec<u8>, other: &[u8]) {
        state.extend_from_slice(other);
    }

    fn finish(&self, _key: &[u8], state: Vec<u8>) -> Vec<u8> {
        let mut postings = Self::decode(&state);
        postings.sort_unstable();
        let mut out = Vec::with_capacity(state.len());
        for p in postings {
            out.extend_from_slice(&p.encode());
        }
        out
    }

    fn combinable(&self) -> bool {
        false
    }
}

/// Job builder preset: inverted-index construction.
pub fn job() -> JobSpecBuilder {
    JobSpec::builder("inverted-index")
        .map_fn(Arc::new(IndexMap))
        .aggregate(Arc::new(PostingListAgg))
        .combine_mode(Combine::Off)
}

/// Count the distinct documents in a finished posting list. The list is
/// sorted by `(doc, pos)`, so distinct docs are doc-id transitions.
pub fn document_frequency(postings: &[Posting]) -> u64 {
    let mut df = 0u64;
    let mut last = None;
    for p in postings {
        if last != Some(p.doc) {
            df += 1;
            last = Some(p.doc);
        }
    }
    df
}

/// Two-stage query plan: build the inverted index, then histogram its
/// document frequencies — "how many words appear in exactly n docs".
///
/// Stage 1 is the holistic [`job`] above. Stage 2 consumes each
/// `(word, posting list)` final as a decoded pair, counts the distinct
/// docs in the list, and sums per df bucket: `(df as u64 LE, count)`
/// finals. The second stage is tiny next to the first, so a pipelined
/// run folds buckets while posting lists are still being built.
pub fn df_histogram_plan(index_reducers: usize) -> Result<Plan> {
    let index = job().reducers(index_reducers).preset_onepass().build()?;
    let histogram = JobSpec::builder("df-histogram")
        .aggregate(Arc::new(SumAgg))
        .reducers(1)
        .preset_onepass()
        .build()?;
    let bucket: Arc<dyn PairMap> =
        Arc::new(|_word: &[u8], list: &[u8], out: &mut dyn MapEmitter| {
            let df = document_frequency(&PostingListAgg::decode(list));
            out.emit(&df.to_le_bytes(), &1u64.to_le_bytes());
        });
    let mut b = Plan::builder();
    let s1 = b.add_stage(index);
    let s2 = b.add_pair_stage(histogram, bucket);
    b.connect(s1, s2);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use onepass_runtime::Engine;
    use std::collections::HashMap;

    #[test]
    fn posting_roundtrip_and_sort() {
        let agg = PostingListAgg;
        let mut state = agg.init(b"w", &Posting { doc: 2, pos: 5 }.encode());
        agg.update(b"w", &mut state, &Posting { doc: 1, pos: 9 }.encode());
        agg.update(b"w", &mut state, &Posting { doc: 1, pos: 3 }.encode());
        let out = agg.finish(b"w", state);
        let postings = PostingListAgg::decode(&out);
        assert_eq!(
            postings,
            vec![
                Posting { doc: 1, pos: 3 },
                Posting { doc: 1, pos: 9 },
                Posting { doc: 2, pos: 5 },
            ]
        );
    }

    #[test]
    fn index_matches_brute_force() {
        let mut gen = crate::docgen::DocGen::new(crate::docgen::DocGenConfig {
            vocabulary: 100,
            min_words: 10,
            max_words: 30,
            ..Default::default()
        });
        let docs = gen.records(40);
        // Brute-force reference index.
        let mut truth: HashMap<Vec<u8>, Vec<Posting>> = HashMap::new();
        for d in &docs {
            let (doc, words) = parse_doc(d).unwrap();
            for (pos, w) in words.enumerate() {
                truth.entry(w.to_vec()).or_default().push(Posting {
                    doc,
                    pos: pos as u32,
                });
            }
        }
        for v in truth.values_mut() {
            v.sort_unstable();
        }

        let splits = crate::make_splits(docs, 8);
        let job = job().reducers(3).preset_hadoop().build().unwrap();
        let report = Engine::new().run(&job, splits).unwrap();
        let mut got: HashMap<Vec<u8>, Vec<Posting>> = HashMap::new();
        for o in &report.outputs {
            got.insert(o.key.clone(), PostingListAgg::decode(&o.value));
        }
        assert_eq!(got.len(), truth.len(), "vocabulary coverage");
        for (w, t) in truth {
            assert_eq!(got[&w], t, "postings for {:?}", String::from_utf8_lossy(&w));
        }
    }

    #[test]
    fn df_histogram_plan_matches_brute_force() {
        use onepass_runtime::{PlanConfig, PlanMode};
        use std::collections::BTreeMap;

        let mut gen = crate::docgen::DocGen::new(crate::docgen::DocGenConfig {
            vocabulary: 120,
            min_words: 10,
            max_words: 40,
            ..Default::default()
        });
        let docs = gen.records(60);
        // Brute force: docs-per-word, then histogram of those counts.
        let mut word_docs: HashMap<Vec<u8>, Vec<u32>> = HashMap::new();
        for d in &docs {
            let (doc, words) = parse_doc(d).unwrap();
            for w in words {
                word_docs.entry(w.to_vec()).or_default().push(doc);
            }
        }
        let mut truth: BTreeMap<u64, u64> = BTreeMap::new();
        for ids in word_docs.values_mut() {
            ids.sort_unstable();
            ids.dedup();
            *truth.entry(ids.len() as u64).or_default() += 1;
        }

        let splits = crate::make_splits(docs, 8);
        let plan = df_histogram_plan(3).unwrap();
        let engine = Engine::new();
        for mode in [PlanMode::Pipelined, PlanMode::Barrier] {
            let report = engine
                .run_plan(
                    &plan,
                    splits.clone(),
                    &PlanConfig {
                        mode,
                        records_per_split: 16,
                        ..Default::default()
                    },
                )
                .unwrap();
            let hist: BTreeMap<u64, u64> = report
                .sorted_final_outputs()
                .into_iter()
                .map(|(k, v)| {
                    (
                        u64::from_le_bytes(k.as_slice().try_into().unwrap()),
                        u64::from_le_bytes(v.as_slice().try_into().unwrap()),
                    )
                })
                .collect();
            assert_eq!(hist, truth, "{mode:?}");
        }
    }
}
