//! Distinct users per URL — `COUNT(DISTINCT user) GROUP BY url` with an
//! approximate (HyperLogLog) per-key state.
//!
//! This is the workload family the paper's §IV proposal (ii) covers:
//! "extends the hash framework with incremental computation, where the
//! computation can be either exact or approximate". The exact state is a
//! user set (linear in distinct users per url); the approximate state is
//! a fixed-size, mergeable HLL — making the aggregate combinable and
//! keeping incremental-hash states small.

use std::sync::Arc;

use onepass_groupby::DistinctAgg;
use onepass_runtime::{Combine, JobSpec, JobSpecBuilder, MapEmitter, MapFn};

use crate::clickgen::Click;

/// Map function: emit `(url, user)` from text click logs.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistinctUsersMap;

impl MapFn for DistinctUsersMap {
    fn map(&self, record: &[u8], out: &mut dyn MapEmitter) {
        if let Some(c) = Click::from_text(record) {
            out.emit(&c.url.to_le_bytes(), &c.user.to_le_bytes());
        }
    }
}

/// Job builder preset: approximate distinct-users-per-url. `precision`
/// sets the HLL size/accuracy trade-off (state = `1 + 2^p` bytes;
/// p = 12 ⇒ ~1.6% standard error).
pub fn job(precision: u8) -> JobSpecBuilder {
    JobSpec::builder("distinct-users-per-url")
        .map_fn(Arc::new(DistinctUsersMap))
        .aggregate(Arc::new(DistinctAgg { precision }))
        .combine_mode(Combine::On)
}

#[cfg(test)]
mod tests {
    use super::*;
    use onepass_groupby::EmitKind;
    use onepass_runtime::Engine;
    use std::collections::{BTreeMap, BTreeSet};

    #[test]
    fn estimates_track_exact_distinct_counts() {
        let mut gen = crate::clickgen::ClickGen::new(crate::clickgen::ClickGenConfig {
            users: 3_000,
            urls: 40,
            url_skew: 0.8,
            ..Default::default()
        });
        let records = gen.text_records(60_000);
        // Exact distinct users per url.
        let mut truth: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        for r in &records {
            let c = Click::from_text(r).unwrap();
            truth.entry(c.url).or_default().insert(c.user);
        }

        let job = job(12).reducers(3).preset_onepass().build().unwrap();
        let report = Engine::new()
            .run(&job, crate::make_splits(records, 4000))
            .unwrap();

        let mut checked = 0;
        for o in report.outputs.iter().filter(|o| o.kind == EmitKind::Final) {
            let url = u32::from_le_bytes(o.key.as_slice().try_into().unwrap());
            let est = DistinctAgg::decode_estimate(&o.value);
            let exact = truth[&url].len() as f64;
            let err = (est as f64 - exact).abs() / exact.max(1.0);
            assert!(
                err < 0.12,
                "url {url}: estimate {est} vs exact {exact} (err {err:.3})"
            );
            checked += 1;
        }
        assert_eq!(checked, truth.len(), "every url must be answered");
        // The whole point: combined HLL states shuffle instead of raw
        // user ids, so the intermediate volume shrinks relative to a
        // na\u{ef}ve (url,user) shuffle whenever states are smaller than the
        // per-split (url,user) pair volume.
        assert!(report.shuffled_records < report.map_output_records);
    }
}
