//! Top-k page tracking — one of the "more complex tasks" the paper lists
//! as ongoing benchmark work ("we are extending our benchmark to ...
//! complex queries such as top-k", §III-A), and the §IV-3 open question
//! ("how to support the combine function for complex analytical tasks
//! such as top-k ... is an open question").
//!
//! The answer implemented here is the standard mergeable-summary one: each
//! side maintains a [`SpaceSaving`] summary; summaries merge by offering
//! each tracked item's count. That yields a combinable *approximate*
//! top-k whose error bounds come from the sketch — online answers at any
//! stream point, exactly the one-pass behaviour the paper wants.

use onepass_sketch::{FrequentItems, HeavyHitter, SpaceSaving};

use crate::clickgen::Click;

/// A streaming approximate top-k tracker over clicks.
#[derive(Debug)]
pub struct TopKUrls {
    k: usize,
    sketch: SpaceSaving,
}

impl TopKUrls {
    /// Track the top `k` URLs; the sketch keeps `headroom × k` counters
    /// (more headroom ⇒ tighter guarantees).
    pub fn new(k: usize, headroom: usize) -> Self {
        TopKUrls {
            k,
            sketch: SpaceSaving::new((k * headroom.max(1)).max(1)),
        }
    }

    /// Observe one text click record (malformed records are skipped).
    pub fn observe_text(&mut self, record: &[u8]) {
        if let Some(c) = Click::from_text(record) {
            self.observe(c.url);
        }
    }

    /// Observe a url id directly.
    pub fn observe(&mut self, url: u32) {
        self.sketch.offer(&url.to_le_bytes());
    }

    /// Merge another tracker (the combinable-summary answer to §IV-3).
    pub fn merge(&mut self, other: &TopKUrls) {
        self.sketch.merge_from(&other.sketch);
    }

    /// Clicks observed so far.
    pub fn processed(&self) -> u64 {
        self.sketch.processed()
    }

    /// Current top-k estimate: `(url, count, error)` descending by count.
    pub fn top(&self) -> Vec<(u32, u64, u64)> {
        self.sketch
            .items()
            .into_iter()
            .take(self.k)
            .map(|HeavyHitter { key, count, error }| {
                (
                    u32::from_le_bytes(key.as_slice().try_into().expect("4-byte url")),
                    count,
                    error,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_dominant_urls() {
        let mut t = TopKUrls::new(3, 10);
        for i in 0..3000u32 {
            // urls 0,1,2 dominate; noise from 100 others.
            let url = match i % 10 {
                0..=3 => 0,
                4..=6 => 1,
                7..=8 => 2,
                _ => 100 + (i % 97),
            };
            t.observe(url);
        }
        let top = t.top();
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, 0);
        assert_eq!(top[1].0, 1);
        assert_eq!(top[2].0, 2);
        assert_eq!(t.processed(), 3000);
    }

    #[test]
    fn merge_approximates_union() {
        let mut a = TopKUrls::new(2, 10);
        let mut b = TopKUrls::new(2, 10);
        for _ in 0..100 {
            a.observe(1);
            b.observe(2);
        }
        for _ in 0..30 {
            a.observe(2);
            b.observe(1);
        }
        a.merge(&b);
        let top = a.top();
        // Both heavy urls present with counts ≈ 130 (upper bounds).
        assert_eq!(top.len(), 2);
        let urls: Vec<u32> = top.iter().map(|&(u, _, _)| u).collect();
        assert!(urls.contains(&1) && urls.contains(&2));
        for &(_, count, _) in &top {
            assert!(count >= 130);
        }
    }

    #[test]
    fn text_observation_parses() {
        let mut t = TopKUrls::new(1, 4);
        t.observe_text(b"100\tu1\t/page/9");
        t.observe_text(b"garbage");
        assert_eq!(t.processed(), 1);
        assert_eq!(t.top()[0].0, 9);
    }
}
