//! Top-k page tracking — one of the "more complex tasks" the paper lists
//! as ongoing benchmark work ("we are extending our benchmark to ...
//! complex queries such as top-k", §III-A), and the §IV-3 open question
//! ("how to support the combine function for complex analytical tasks
//! such as top-k ... is an open question").
//!
//! Two answers are implemented here:
//!
//! * [`TopKUrls`] — a standard mergeable-summary sketch: each side
//!   maintains a [`SpaceSaving`] summary; summaries merge by offering
//!   each tracked item's count. A combinable *approximate* top-k whose
//!   error bounds come from the sketch — online answers at any stream
//!   point, exactly the one-pass behaviour the paper wants.
//! * [`plan`] — the *exact* top-k as a two-stage query plan: stage 1
//!   counts clicks per URL (the §II running example); stage 2 routes
//!   every `(url, total)` pair to a single key and keeps the k largest
//!   with the mergeable [`TopKAgg`]. Because each URL appears exactly
//!   once in stage 2's input, truncating each partial state to k entries
//!   is lossless, which makes [`TopKAgg`] a legal combine function — the
//!   §IV-3 question answered for the exact case. Under
//!   [`PlanMode::Pipelined`](onepass_runtime::PlanMode) stage 2 consumes
//!   stage 1's finals while stage 1's reducers are still draining.

use std::sync::Arc;

use onepass_core::error::Result;
use onepass_groupby::{Aggregator, SumAgg};
use onepass_runtime::{JobSpec, MapEmitter, PairMap, Plan};
use onepass_sketch::{FrequentItems, HeavyHitter, SpaceSaving};

use crate::clickgen::Click;
use crate::page_frequency::PageFreqMapText;

/// A streaming approximate top-k tracker over clicks.
#[derive(Debug)]
pub struct TopKUrls {
    k: usize,
    sketch: SpaceSaving,
}

impl TopKUrls {
    /// Track the top `k` URLs; the sketch keeps `headroom × k` counters
    /// (more headroom ⇒ tighter guarantees).
    pub fn new(k: usize, headroom: usize) -> Self {
        TopKUrls {
            k,
            sketch: SpaceSaving::new((k * headroom.max(1)).max(1)),
        }
    }

    /// Observe one text click record (malformed records are skipped).
    pub fn observe_text(&mut self, record: &[u8]) {
        if let Some(c) = Click::from_text(record) {
            self.observe(c.url);
        }
    }

    /// Observe a url id directly.
    pub fn observe(&mut self, url: u32) {
        self.sketch.offer(&url.to_le_bytes());
    }

    /// Merge another tracker (the combinable-summary answer to §IV-3).
    pub fn merge(&mut self, other: &TopKUrls) {
        self.sketch.merge_from(&other.sketch);
    }

    /// Clicks observed so far.
    pub fn processed(&self) -> u64 {
        self.sketch.processed()
    }

    /// Current top-k estimate: `(url, count, error)` descending by count.
    pub fn top(&self) -> Vec<(u32, u64, u64)> {
        self.sketch
            .items()
            .into_iter()
            .take(self.k)
            .map(|HeavyHitter { key, count, error }| {
                (
                    u32::from_le_bytes(key.as_slice().try_into().expect("4-byte url")),
                    count,
                    error,
                )
            })
            .collect()
    }
}

/// The single routing key stage 2 of the [`plan`] sends every
/// `(url, count)` pair to.
pub const TOP_KEY: &[u8] = b"top";

/// Exact top-k as a mergeable aggregate over per-URL totals.
///
/// Input values are `[u64 count LE][url bytes]` (as routed by the plan's
/// pair stage); states and final output are framed entry lists:
/// `[u64 count LE][u32 len LE][url bytes]` per entry, sorted by count
/// descending (ties by url ascending). Every state is truncated to k
/// entries, which is exact because each URL appears exactly once in the
/// stage's input: an entry dropped from a partial top-k can never belong
/// to the global top-k.
#[derive(Debug, Clone, Copy)]
pub struct TopKAgg {
    k: usize,
}

impl TopKAgg {
    /// Keep the `k` highest-count entries.
    pub fn new(k: usize) -> Self {
        TopKAgg { k: k.max(1) }
    }

    fn parse_value(value: &[u8]) -> (u64, Vec<u8>) {
        let count = u64::from_le_bytes(value[..8].try_into().expect("8-byte count prefix"));
        (count, value[8..].to_vec())
    }

    /// Decode a state or final output into `(count, url)` entries,
    /// descending by count.
    pub fn decode(buf: &[u8]) -> Vec<(u64, Vec<u8>)> {
        let mut entries = Vec::new();
        let mut i = 0;
        while i + 12 <= buf.len() {
            let count = u64::from_le_bytes(buf[i..i + 8].try_into().unwrap());
            let len = u32::from_le_bytes(buf[i + 8..i + 12].try_into().unwrap()) as usize;
            let end = (i + 12 + len).min(buf.len());
            entries.push((count, buf[i + 12..end].to_vec()));
            i = end;
        }
        entries
    }

    fn encode(entries: &[(u64, Vec<u8>)]) -> Vec<u8> {
        let mut out = Vec::with_capacity(entries.iter().map(|(_, u)| 12 + u.len()).sum());
        for (count, url) in entries {
            out.extend_from_slice(&count.to_le_bytes());
            out.extend_from_slice(&(url.len() as u32).to_le_bytes());
            out.extend_from_slice(url);
        }
        out
    }

    fn prune(&self, entries: &mut Vec<(u64, Vec<u8>)>) {
        entries.sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        entries.truncate(self.k);
    }
}

impl Aggregator for TopKAgg {
    fn init(&self, _key: &[u8], value: &[u8]) -> Vec<u8> {
        let (count, url) = Self::parse_value(value);
        Self::encode(&[(count, url)])
    }

    fn update(&self, _key: &[u8], state: &mut Vec<u8>, value: &[u8]) {
        let mut entries = Self::decode(state);
        let (count, url) = Self::parse_value(value);
        entries.push((count, url));
        self.prune(&mut entries);
        *state = Self::encode(&entries);
    }

    fn merge(&self, _key: &[u8], state: &mut Vec<u8>, other: &[u8]) {
        let mut entries = Self::decode(state);
        entries.extend(Self::decode(other));
        self.prune(&mut entries);
        *state = Self::encode(&entries);
    }

    fn finish(&self, _key: &[u8], state: Vec<u8>) -> Vec<u8> {
        let mut entries = Self::decode(&state);
        self.prune(&mut entries);
        Self::encode(&entries)
    }

    fn combinable(&self) -> bool {
        true
    }
}

/// The exact two-stage top-k query plan over text click logs.
///
/// Stage 1 (`url-counts`): `(url, 1)` per click, summed per URL — the
/// paper's §II running example. Stage 2 (`top-k`): every `(url, total)`
/// pair routes to [`TOP_KEY`]; one reducer keeps the k largest via
/// [`TopKAgg`]. Both stages use the one-pass preset (hash map side, push
/// shuffle), so a pipelined run overlaps stage 2 with stage 1's reduce
/// drain.
pub fn plan(k: usize, count_reducers: usize) -> Result<Plan> {
    let count = JobSpec::builder("url-counts")
        .map_fn(Arc::new(PageFreqMapText))
        .aggregate(Arc::new(SumAgg))
        .reducers(count_reducers)
        .preset_onepass()
        .build()?;
    let select = JobSpec::builder("top-k")
        .aggregate(Arc::new(TopKAgg::new(k)))
        .reducers(1)
        .preset_onepass()
        .build()?;
    let route: Arc<dyn PairMap> = Arc::new(|url: &[u8], total: &[u8], out: &mut dyn MapEmitter| {
        let mut value = Vec::with_capacity(total.len() + url.len());
        value.extend_from_slice(total);
        value.extend_from_slice(url);
        out.emit(TOP_KEY, &value);
    });
    let mut b = Plan::builder();
    let s1 = b.add_stage(count);
    let s2 = b.add_pair_stage(select, route);
    b.connect(s1, s2);
    b.build()
}

/// Decode the [`plan`]'s single final output into `(url, count)` pairs,
/// descending by count.
pub fn decode_top_urls(out: &[u8]) -> Vec<(u32, u64)> {
    TopKAgg::decode(out)
        .into_iter()
        .map(|(count, url)| {
            (
                u32::from_le_bytes(url.as_slice().try_into().expect("4-byte url")),
                count,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use onepass_runtime::{Engine, PlanConfig, PlanMode};
    use std::collections::HashMap;

    #[test]
    fn top_k_agg_is_exact_under_truncated_merges() {
        let agg = TopKAgg::new(3);
        // Partition 100 distinct urls across two states.
        let value = |count: u64, url: u32| {
            let mut v = count.to_le_bytes().to_vec();
            v.extend_from_slice(&url.to_le_bytes());
            v
        };
        let mut a = agg.init(TOP_KEY, &value(50, 0));
        for u in 1..50u32 {
            agg.update(TOP_KEY, &mut a, &value(u as u64, u));
        }
        let mut b = agg.init(TOP_KEY, &value(49, 100));
        for u in 101..150u32 {
            agg.update(TOP_KEY, &mut b, &value(u as u64 - 100, u));
        }
        agg.merge(TOP_KEY, &mut a, &b);
        let top = TopKAgg::decode(&agg.finish(TOP_KEY, a));
        let counts: Vec<u64> = top.iter().map(|&(c, _)| c).collect();
        assert_eq!(counts, vec![50, 49, 49]);
    }

    #[test]
    fn two_stage_plan_finds_exact_top_k() {
        let mut gen = crate::clickgen::ClickGen::new(crate::clickgen::ClickGenConfig {
            users: 50,
            urls: 200,
            ..Default::default()
        });
        let records = gen.text_records(4000);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for r in &records {
            *truth.entry(Click::from_text(r).unwrap().url).or_default() += 1;
        }
        let mut truth_sorted: Vec<(u64, u32)> = truth.iter().map(|(&u, &c)| (c, u)).collect();
        truth_sorted.sort_unstable_by(|a, b| b.cmp(a));
        let expected_counts: Vec<u64> = truth_sorted.iter().take(5).map(|&(c, _)| c).collect();

        let splits = crate::make_splits(records, 256);
        let plan = plan(5, 3).unwrap();
        let engine = Engine::new();
        for mode in [PlanMode::Pipelined, PlanMode::Barrier] {
            let report = engine
                .run_plan(
                    &plan,
                    splits.clone(),
                    &PlanConfig {
                        mode,
                        records_per_split: 64,
                        ..Default::default()
                    },
                )
                .unwrap();
            let outs = report.sorted_final_outputs();
            assert_eq!(outs.len(), 1, "{mode:?}: one top-k answer");
            assert_eq!(outs[0].0, TOP_KEY);
            let top = decode_top_urls(&outs[0].1);
            assert_eq!(top.len(), 5, "{mode:?}");
            // Counts must be the true top-5 counts, and every returned
            // url's count must be its true total (ties at the boundary
            // make the url *set* ambiguous, never the counts).
            let counts: Vec<u64> = top.iter().map(|&(_, c)| c).collect();
            assert_eq!(counts, expected_counts, "{mode:?}");
            for &(url, count) in &top {
                assert_eq!(truth[&url], count, "{mode:?}: url {url}");
            }
        }
    }

    #[test]
    fn finds_dominant_urls() {
        let mut t = TopKUrls::new(3, 10);
        for i in 0..3000u32 {
            // urls 0,1,2 dominate; noise from 100 others.
            let url = match i % 10 {
                0..=3 => 0,
                4..=6 => 1,
                7..=8 => 2,
                _ => 100 + (i % 97),
            };
            t.observe(url);
        }
        let top = t.top();
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, 0);
        assert_eq!(top[1].0, 1);
        assert_eq!(top[2].0, 2);
        assert_eq!(t.processed(), 3000);
    }

    #[test]
    fn merge_approximates_union() {
        let mut a = TopKUrls::new(2, 10);
        let mut b = TopKUrls::new(2, 10);
        for _ in 0..100 {
            a.observe(1);
            b.observe(2);
        }
        for _ in 0..30 {
            a.observe(2);
            b.observe(1);
        }
        a.merge(&b);
        let top = a.top();
        // Both heavy urls present with counts ≈ 130 (upper bounds).
        assert_eq!(top.len(), 2);
        let urls: Vec<u32> = top.iter().map(|&(u, _, _)| u).collect();
        assert!(urls.contains(&1) && urls.contains(&2));
        for &(_, count, _) in &top {
            assert!(count >= 130);
        }
    }

    #[test]
    fn text_observation_parses() {
        let mut t = TopKUrls::new(1, 4);
        t.observe_text(b"100\tu1\t/page/9");
        t.observe_text(b"garbage");
        assert_eq!(t.processed(), 1);
        assert_eq!(t.top()[0].0, 9);
    }
}
