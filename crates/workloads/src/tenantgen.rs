//! Zipf-distributed tenant traffic for the serving front-end.
//!
//! Real multi-tenant load is skewed: a few queries are hot, most are
//! cold. The generator assigns each of `n` tenants a query drawn
//! Zipf(`s`) over the catalog's names (rank order = the order given), so
//! `s = 0` spreads tenants uniformly and larger `s` piles them onto the
//! first queries. Deterministic per seed — the load generator, the
//! serving experiment, and the smoke test all derive the *same* tenant
//! population from the same `(seed, n, queries, s)` tuple, which is what
//! lets a checker recompute per-tenant solo references offline.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::zipf::Zipf;

/// One tenant of serving traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Stable tenant id (`t0042` style, zero-padded for lexical order).
    pub id: String,
    /// Catalog query name this tenant subscribes to.
    pub query: String,
}

/// Configuration for a tenant population.
#[derive(Debug, Clone)]
pub struct TenantGenConfig {
    /// RNG seed; same seed ⇒ same population.
    pub seed: u64,
    /// Zipf exponent over query ranks (0 = uniform).
    pub zipf_s: f64,
}

impl Default for TenantGenConfig {
    fn default() -> Self {
        TenantGenConfig {
            seed: 0x7e_a4_15,
            zipf_s: 1.0,
        }
    }
}

/// Deterministically assign `n` tenants to `queries` (Zipf by rank).
///
/// # Panics
/// If `queries` is empty.
pub fn assign_tenants(n: usize, queries: &[String], config: &TenantGenConfig) -> Vec<TenantSpec> {
    assert!(!queries.is_empty(), "need at least one query");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf = Zipf::new(queries.len(), config.zipf_s);
    let width = n.saturating_sub(1).max(1).ilog10() as usize + 1;
    (0..n)
        .map(|i| TenantSpec {
            id: format!("t{i:0width$}"),
            query: queries[zipf.sample(&mut rng)].clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(qs: &[&str]) -> Vec<String> {
        qs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn deterministic_per_seed_and_skewed() {
        let qs = names(&["hot", "warm", "cold"]);
        let cfg = TenantGenConfig {
            seed: 7,
            zipf_s: 1.5,
        };
        let a = assign_tenants(500, &qs, &cfg);
        let b = assign_tenants(500, &qs, &cfg);
        assert_eq!(a, b);
        let hot = a.iter().filter(|t| t.query == "hot").count();
        let cold = a.iter().filter(|t| t.query == "cold").count();
        assert!(hot > cold, "zipf should favour rank 0 ({hot} vs {cold})");
        // Ids are unique and lexically ordered.
        assert_eq!(a[0].id, "t000");
        assert_eq!(a[499].id, "t499");
    }

    #[test]
    fn uniform_when_s_is_zero() {
        let qs = names(&["a", "b"]);
        let cfg = TenantGenConfig {
            seed: 1,
            zipf_s: 0.0,
        };
        let t = assign_tenants(2000, &qs, &cfg);
        let a = t.iter().filter(|t| t.query == "a").count();
        assert!((700..1300).contains(&a), "roughly even split, got {a}");
    }
}
