//! Spill-run file management — the paper's "file management library" (§V).
//!
//! Both the sort-merge baseline and the hash techniques stage intermediate
//! data in *runs*: sequences of `(key, value)` records written once and
//! read back sequentially. A [`SpillStore`] creates, opens and deletes runs
//! and keeps global I/O counters, which the experiment drivers report (the
//! paper's central quantitative claims are about exactly these bytes:
//! 370 GB of reduce-side merge I/O for sessionization, and a three
//! orders-of-magnitude reduction under frequent-hash).
//!
//! Two backends are provided, plus a fault-injection decorator:
//! * [`SharedMemStore`] — runs held in memory; deterministic and fast,
//!   used by unit tests and by callers that only want the *accounting*.
//! * [`FileSpillStore`] — runs as real files under a directory, with
//!   buffered sequential I/O; used by the engine when actually spilling.
//! * [`FaultInjectStore`] — wraps any store and starts failing after a
//!   configured number of operations, for failure-propagation testing.
//!
//! On-disk record format: `[u32 klen][u32 vlen][key bytes][value bytes]`,
//! little-endian, no alignment. A run must end exactly at a record
//! boundary; anything else surfaces as [`Error::Corrupt`].

use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::bytes_kv::{SegmentBuf, SegmentBufBuilder};
use crate::error::{Error, Result};

/// Identifier of a spill run within its store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunId(pub u64);

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunMeta {
    /// The run's id, usable with [`SpillStore::open_run`].
    pub id: RunId,
    /// Number of records written.
    pub records: u64,
    /// Total encoded bytes (including the 8-byte headers).
    pub bytes: u64,
}

/// Cumulative I/O accounting for a store. All figures are encoded bytes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Bytes written across all runs.
    pub bytes_written: u64,
    /// Bytes read back across all runs.
    pub bytes_read: u64,
    /// Runs created.
    pub runs_created: u64,
    /// Runs deleted.
    pub runs_deleted: u64,
}

#[derive(Debug, Default)]
struct StatsCell {
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    runs_created: AtomicU64,
    runs_deleted: AtomicU64,
}

impl StatsCell {
    fn snapshot(&self) -> IoStats {
        IoStats {
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            runs_created: self.runs_created.load(Ordering::Relaxed),
            runs_deleted: self.runs_deleted.load(Ordering::Relaxed),
        }
    }
}

/// A borrowed record yielded by a [`RunReader`].
#[derive(Debug, PartialEq, Eq)]
pub struct Record<'a> {
    /// Key bytes.
    pub key: &'a [u8],
    /// Value bytes.
    pub value: &'a [u8],
}

/// Sequential writer for one run. Obtain via [`SpillStore::begin_run`].
pub trait RunWriter: Send {
    /// Append one record.
    fn write_record(&mut self, key: &[u8], value: &[u8]) -> Result<()>;

    /// Append a whole batch. The on-disk byte stream is identical to
    /// record-at-a-time writes; backends override this to encode and write
    /// the batch in one operation instead of one syscall/copy per record.
    fn write_segment(&mut self, seg: &SegmentBuf) -> Result<()> {
        for (k, v) in seg.iter() {
            self.write_record(k, v)?;
        }
        Ok(())
    }

    /// Flush and seal the run, returning its metadata.
    fn finish(self: Box<Self>) -> Result<RunMeta>;
}

/// Sequential reader over one run. Obtain via [`SpillStore::open_run`].
pub trait RunReader: Send {
    /// Next record, or `None` at a clean end-of-run.
    fn next_record(&mut self) -> Result<Option<Record<'_>>>;

    /// Read roughly `max_bytes` of encoded records as one arena-backed
    /// batch, or `None` at a clean end-of-run. Backends override this to
    /// return the data in one read — the in-memory store hands back the
    /// remaining run bytes zero-copy.
    fn read_batch(&mut self, max_bytes: usize) -> Result<Option<SegmentBuf>> {
        let mut batch = SegmentBufBuilder::new();
        let mut taken = 0u64;
        while taken < max_bytes as u64 {
            match self.next_record()? {
                None => break,
                Some(rec) => {
                    taken += encoded_len(rec.key, rec.value);
                    batch.push(rec.key, rec.value);
                }
            }
        }
        if batch.is_empty() {
            Ok(None)
        } else {
            Ok(Some(batch.finish()))
        }
    }
}

/// A store of spill runs with shared I/O accounting.
pub trait SpillStore: Send + Sync {
    /// Start writing a new run.
    fn begin_run(&self) -> Result<Box<dyn RunWriter>>;
    /// Open a finished run for sequential reading.
    fn open_run(&self, id: RunId) -> Result<Box<dyn RunReader>>;
    /// Delete a finished run, reclaiming its space.
    fn delete_run(&self, id: RunId) -> Result<()>;
    /// Cumulative I/O counters.
    fn stats(&self) -> IoStats;
}

/// Encoded size of one record (header + payload).
#[inline]
pub fn encoded_len(key: &[u8], value: &[u8]) -> u64 {
    8 + key.len() as u64 + value.len() as u64
}

// ---------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------

struct MemWriter {
    store: Arc<MemStoreInner>,
    id: u64,
    buf: Vec<u8>,
    records: u64,
}

#[derive(Debug, Default)]
struct MemStoreInner {
    runs: Mutex<HashMap<u64, Arc<Vec<u8>>>>,
    next_id: AtomicU64,
    stats: StatsCell,
}

/// Spill store keeping runs in memory. Cheap and deterministic; used by
/// unit tests and by callers that only need the byte accounting. Clones
/// share the same underlying store.
#[derive(Debug, Clone, Default)]
pub struct SharedMemStore {
    inner: Arc<MemStoreInner>,
}

impl SharedMemStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (not yet deleted) runs.
    pub fn live_runs(&self) -> usize {
        self.inner.runs.lock().len()
    }

    /// Total payload bytes currently held by live runs.
    pub fn resident_bytes(&self) -> u64 {
        self.inner
            .runs
            .lock()
            .values()
            .map(|v| v.len() as u64)
            .sum()
    }
}

impl SpillStore for SharedMemStore {
    fn begin_run(&self) -> Result<Box<dyn RunWriter>> {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .runs_created
            .fetch_add(1, Ordering::Relaxed);
        Ok(Box::new(MemWriter {
            store: Arc::clone(&self.inner),
            id,
            buf: Vec::new(),
            records: 0,
        }))
    }

    fn open_run(&self, id: RunId) -> Result<Box<dyn RunReader>> {
        let data = self
            .inner
            .runs
            .lock()
            .get(&id.0)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("mem run {}", id.0)))?;
        Ok(Box::new(MemReader {
            store: Arc::clone(&self.inner),
            data,
            pos: 0,
        }))
    }

    fn delete_run(&self, id: RunId) -> Result<()> {
        self.inner
            .runs
            .lock()
            .remove(&id.0)
            .ok_or_else(|| Error::NotFound(format!("mem run {}", id.0)))?;
        self.inner
            .stats
            .runs_deleted
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.inner.stats.snapshot()
    }
}

impl RunWriter for MemWriter {
    fn write_record(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.buf
            .extend_from_slice(&(key.len() as u32).to_le_bytes());
        self.buf
            .extend_from_slice(&(value.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(key);
        self.buf.extend_from_slice(value);
        self.records += 1;
        Ok(())
    }

    fn write_segment(&mut self, seg: &SegmentBuf) -> Result<()> {
        // One reservation for the whole batch; the per-record extends
        // below can never reallocate.
        self.buf.reserve(seg.payload_bytes() + 8 * seg.len());
        for (k, v) in seg.iter() {
            self.buf.extend_from_slice(&(k.len() as u32).to_le_bytes());
            self.buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
            self.buf.extend_from_slice(k);
            self.buf.extend_from_slice(v);
        }
        self.records += seg.len() as u64;
        Ok(())
    }

    fn finish(self: Box<Self>) -> Result<RunMeta> {
        let bytes = self.buf.len() as u64;
        self.store
            .stats
            .bytes_written
            .fetch_add(bytes, Ordering::Relaxed);
        self.store.runs.lock().insert(self.id, Arc::new(self.buf));
        Ok(RunMeta {
            id: RunId(self.id),
            records: self.records,
            bytes,
        })
    }
}

struct MemReader {
    store: Arc<MemStoreInner>,
    data: Arc<Vec<u8>>,
    pos: usize,
}

impl RunReader for MemReader {
    fn next_record(&mut self) -> Result<Option<Record<'_>>> {
        if self.pos == self.data.len() {
            return Ok(None);
        }
        if self.data.len() - self.pos < 8 {
            return Err(Error::Corrupt("truncated record header".into()));
        }
        let klen =
            u32::from_le_bytes(self.data[self.pos..self.pos + 4].try_into().unwrap()) as usize;
        let vlen =
            u32::from_le_bytes(self.data[self.pos + 4..self.pos + 8].try_into().unwrap()) as usize;
        let start = self.pos + 8;
        if self.data.len() - start < klen + vlen {
            return Err(Error::Corrupt("truncated record payload".into()));
        }
        self.pos = start + klen + vlen;
        self.store
            .stats
            .bytes_read
            .fetch_add((8 + klen + vlen) as u64, Ordering::Relaxed);
        Ok(Some(Record {
            key: &self.data[start..start + klen],
            value: &self.data[start + klen..start + klen + vlen],
        }))
    }

    /// Zero-copy batch read: the remaining run bytes already live in one
    /// `Arc`-shared buffer in the record wire format, so the returned
    /// segment's entries point straight into it — no payload copy, one
    /// "read" for the whole remainder regardless of `max_bytes`.
    fn read_batch(&mut self, _max_bytes: usize) -> Result<Option<SegmentBuf>> {
        if self.pos == self.data.len() {
            return Ok(None);
        }
        let seg = SegmentBuf::from_framed(Arc::clone(&self.data), self.pos)?;
        let consumed = (self.data.len() - self.pos) as u64;
        self.pos = self.data.len();
        self.store
            .stats
            .bytes_read
            .fetch_add(consumed, Ordering::Relaxed);
        Ok(Some(seg))
    }
}

// ---------------------------------------------------------------------------
// File-backed backend
// ---------------------------------------------------------------------------

/// Spill store persisting runs as files under a directory.
#[derive(Debug)]
pub struct FileSpillStore {
    dir: PathBuf,
    next_id: AtomicU64,
    stats: Arc<StatsCell>,
    /// Remove the directory (and any leftover runs) on drop.
    cleanup_on_drop: bool,
}

impl FileSpillStore {
    /// Create a store rooted at `dir` (created if missing).
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(FileSpillStore {
            dir,
            next_id: AtomicU64::new(0),
            stats: Arc::new(StatsCell::default()),
            cleanup_on_drop: false,
        })
    }

    /// Create a store in a fresh unique subdirectory of the system temp
    /// dir, removed when the store is dropped.
    pub fn temp() -> Result<Self> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = format!(
            "onepass-spill-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let dir = std::env::temp_dir().join(unique);
        let mut s = Self::new(dir)?;
        s.cleanup_on_drop = true;
        Ok(s)
    }

    fn run_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("run-{id}.bin"))
    }
}

impl Drop for FileSpillStore {
    fn drop(&mut self) {
        if self.cleanup_on_drop {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

impl SpillStore for FileSpillStore {
    fn begin_run(&self) -> Result<Box<dyn RunWriter>> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.stats.runs_created.fetch_add(1, Ordering::Relaxed);
        let file = File::create(self.run_path(id))?;
        Ok(Box::new(FileWriter {
            id,
            out: BufWriter::with_capacity(1 << 16, file),
            records: 0,
            bytes: 0,
            scratch: Vec::new(),
            stats: Arc::clone(&self.stats),
        }))
    }

    fn open_run(&self, id: RunId) -> Result<Box<dyn RunReader>> {
        let path = self.run_path(id.0);
        let file = File::open(&path).map_err(|_| Error::NotFound(format!("file run {}", id.0)))?;
        Ok(Box::new(FileReader {
            input: BufReader::with_capacity(1 << 16, file),
            scratch: Vec::new(),
            klen: 0,
            stats: Arc::clone(&self.stats),
        }))
    }

    fn delete_run(&self, id: RunId) -> Result<()> {
        fs::remove_file(self.run_path(id.0))
            .map_err(|_| Error::NotFound(format!("file run {}", id.0)))?;
        self.stats.runs_deleted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }
}

struct FileWriter {
    id: u64,
    out: BufWriter<File>,
    records: u64,
    bytes: u64,
    scratch: Vec<u8>,
    stats: Arc<StatsCell>,
}

impl RunWriter for FileWriter {
    fn write_record(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.out.write_all(&(key.len() as u32).to_le_bytes())?;
        self.out.write_all(&(value.len() as u32).to_le_bytes())?;
        self.out.write_all(key)?;
        self.out.write_all(value)?;
        self.records += 1;
        self.bytes += encoded_len(key, value);
        Ok(())
    }

    fn write_segment(&mut self, seg: &SegmentBuf) -> Result<()> {
        // Encode the batch into one contiguous buffer and hand it to the
        // writer in a single write, instead of 4 small writes per record.
        let encoded = seg.payload_bytes() + 8 * seg.len();
        self.scratch.clear();
        self.scratch.reserve(encoded);
        for (k, v) in seg.iter() {
            self.scratch
                .extend_from_slice(&(k.len() as u32).to_le_bytes());
            self.scratch
                .extend_from_slice(&(v.len() as u32).to_le_bytes());
            self.scratch.extend_from_slice(k);
            self.scratch.extend_from_slice(v);
        }
        self.out.write_all(&self.scratch)?;
        self.records += seg.len() as u64;
        self.bytes += encoded as u64;
        Ok(())
    }

    fn finish(mut self: Box<Self>) -> Result<RunMeta> {
        self.out.flush()?;
        self.stats
            .bytes_written
            .fetch_add(self.bytes, Ordering::Relaxed);
        Ok(RunMeta {
            id: RunId(self.id),
            records: self.records,
            bytes: self.bytes,
        })
    }
}

struct FileReader {
    input: BufReader<File>,
    scratch: Vec<u8>,
    klen: usize,
    stats: Arc<StatsCell>,
}

impl RunReader for FileReader {
    fn next_record(&mut self) -> Result<Option<Record<'_>>> {
        let mut header = [0u8; 8];
        match self.input.read_exact(&mut header[..1]) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        self.input
            .read_exact(&mut header[1..])
            .map_err(|_| Error::Corrupt("truncated record header".into()))?;
        let klen = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
        self.scratch.resize(klen + vlen, 0);
        self.input
            .read_exact(&mut self.scratch)
            .map_err(|_| Error::Corrupt("truncated record payload".into()))?;
        self.klen = klen;
        self.stats
            .bytes_read
            .fetch_add((8 + klen + vlen) as u64, Ordering::Relaxed);
        Ok(Some(Record {
            key: &self.scratch[..self.klen],
            value: &self.scratch[self.klen..],
        }))
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// A [`SpillStore`] decorator that starts failing after a configured
/// number of I/O operations — for testing that operators and engines
/// propagate storage failures as errors instead of losing data or
/// panicking. Each record write, record read, run open/begin/delete
/// counts as one operation.
pub struct FaultInjectStore {
    inner: Arc<dyn SpillStore>,
    budget: Arc<AtomicU64>,
}

/// Saturating decrement of a shared fault budget; `Err` once exhausted.
fn fault_tick(budget: &AtomicU64) -> Result<()> {
    let mut cur = budget.load(Ordering::Relaxed);
    loop {
        if cur == 0 {
            return Err(Error::Io(std::io::Error::other(
                "injected spill-store failure",
            )));
        }
        match budget.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return Ok(()),
            Err(actual) => cur = actual,
        }
    }
}

impl FaultInjectStore {
    /// Wrap `inner`; the first `ops_before_failure` operations succeed,
    /// everything after fails with [`Error::Io`].
    pub fn new(inner: Arc<dyn SpillStore>, ops_before_failure: u64) -> Self {
        FaultInjectStore {
            inner,
            budget: Arc::new(AtomicU64::new(ops_before_failure)),
        }
    }

    /// Operations remaining before failures begin.
    pub fn remaining(&self) -> u64 {
        self.budget.load(Ordering::Relaxed)
    }
}

impl SpillStore for FaultInjectStore {
    fn begin_run(&self) -> Result<Box<dyn RunWriter>> {
        fault_tick(&self.budget)?;
        let inner = self.inner.begin_run()?;
        Ok(Box::new(FaultWriter {
            inner,
            budget: Arc::clone(&self.budget),
        }))
    }

    fn open_run(&self, id: RunId) -> Result<Box<dyn RunReader>> {
        fault_tick(&self.budget)?;
        self.inner.open_run(id)
    }

    fn delete_run(&self, id: RunId) -> Result<()> {
        fault_tick(&self.budget)?;
        self.inner.delete_run(id)
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }
}

struct FaultWriter {
    inner: Box<dyn RunWriter>,
    budget: Arc<AtomicU64>,
}

impl RunWriter for FaultWriter {
    // Note: the default `write_segment` is kept deliberately — it loops
    // through `write_record`, so a batch write still ticks the fault
    // budget once per record, preserving operation-count semantics.
    fn write_record(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        fault_tick(&self.budget)?;
        self.inner.write_record(key, value)
    }

    fn finish(self: Box<Self>) -> Result<RunMeta> {
        fault_tick(&self.budget)?;
        self.inner.finish()
    }
}

/// Drain a reader into owned pairs — convenience for tests and small runs.
pub fn read_all(reader: &mut dyn RunReader) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
    let mut out = Vec::new();
    while let Some(rec) = reader.next_record()? {
        out.push((rec.key.to_vec(), rec.value.to_vec()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(store: &dyn SpillStore) {
        let mut w = store.begin_run().unwrap();
        w.write_record(b"alpha", b"1").unwrap();
        w.write_record(b"", b"empty-key").unwrap();
        w.write_record(b"beta", b"").unwrap();
        let meta = w.finish().unwrap();
        assert_eq!(meta.records, 3);
        assert_eq!(
            meta.bytes,
            encoded_len(b"alpha", b"1")
                + encoded_len(b"", b"empty-key")
                + encoded_len(b"beta", b"")
        );

        let mut r = store.open_run(meta.id).unwrap();
        let recs = read_all(r.as_mut()).unwrap();
        assert_eq!(
            recs,
            vec![
                (b"alpha".to_vec(), b"1".to_vec()),
                (b"".to_vec(), b"empty-key".to_vec()),
                (b"beta".to_vec(), b"".to_vec()),
            ]
        );

        let st = store.stats();
        assert_eq!(st.bytes_written, meta.bytes);
        assert_eq!(st.bytes_read, meta.bytes);
        assert_eq!(st.runs_created, 1);

        store.delete_run(meta.id).unwrap();
        assert!(store.open_run(meta.id).is_err());
        assert_eq!(store.stats().runs_deleted, 1);
    }

    #[test]
    fn mem_store_roundtrip() {
        roundtrip(&SharedMemStore::new());
    }

    #[test]
    fn file_store_roundtrip() {
        let store = FileSpillStore::temp().unwrap();
        roundtrip(&store);
    }

    #[test]
    fn empty_run_is_legal() {
        let store = SharedMemStore::new();
        let w = store.begin_run().unwrap();
        let meta = w.finish().unwrap();
        assert_eq!(meta.records, 0);
        let mut r = store.open_run(meta.id).unwrap();
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn missing_run_is_not_found() {
        let store = SharedMemStore::new();
        assert!(matches!(store.open_run(RunId(42)), Err(Error::NotFound(_))));
        assert!(store.delete_run(RunId(42)).is_err());
    }

    #[test]
    fn concurrent_writers_get_distinct_runs() {
        let store = SharedMemStore::new();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let store = store.clone();
                s.spawn(move || {
                    let mut w = store.begin_run().unwrap();
                    w.write_record(&t.to_le_bytes(), b"v").unwrap();
                    w.finish().unwrap();
                });
            }
        });
        assert_eq!(store.live_runs(), 4);
        assert_eq!(store.stats().runs_created, 4);
    }

    #[test]
    fn file_store_temp_cleans_up() {
        let dir;
        {
            let store = FileSpillStore::temp().unwrap();
            dir = store.dir.clone();
            let mut w = store.begin_run().unwrap();
            w.write_record(b"k", b"v").unwrap();
            w.finish().unwrap();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "temp spill dir should be removed on drop");
    }

    fn batch_roundtrip(store: &dyn SpillStore) {
        let seg = SegmentBuf::from_pairs([
            (b"alpha".as_slice(), b"1".as_slice()),
            (b"", b"empty-key"),
            (b"beta", b""),
        ]);
        // Batch write produces byte-identical runs to record-at-a-time.
        let mut w = store.begin_run().unwrap();
        w.write_segment(&seg).unwrap();
        let batch_meta = w.finish().unwrap();
        let mut w = store.begin_run().unwrap();
        for (k, v) in seg.iter() {
            w.write_record(k, v).unwrap();
        }
        let record_meta = w.finish().unwrap();
        assert_eq!(batch_meta.records, 3);
        assert_eq!(batch_meta.bytes, record_meta.bytes);

        // Batch read returns the same records, and accounts the same
        // bytes as a record-at-a-time scan.
        let before = store.stats().bytes_read;
        let mut r = store.open_run(batch_meta.id).unwrap();
        let got = r.read_batch(usize::MAX).unwrap().unwrap();
        assert_eq!(store.stats().bytes_read - before, batch_meta.bytes);
        let got: Vec<_> = got.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        let want: Vec<_> = seg.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        assert_eq!(got, want);
        assert!(r.read_batch(usize::MAX).unwrap().is_none(), "end of run");

        // A mixed scan: one record, then the batched remainder.
        let mut r = store.open_run(record_meta.id).unwrap();
        let first = r.next_record().unwrap().unwrap();
        assert_eq!(first.key, b"alpha");
        let rest = r.read_batch(usize::MAX).unwrap().unwrap();
        assert_eq!(rest.len(), 2);
        assert_eq!(rest.get(0), (b"".as_slice(), b"empty-key".as_slice()));

        store.delete_run(batch_meta.id).unwrap();
        store.delete_run(record_meta.id).unwrap();
    }

    #[test]
    fn mem_store_batch_roundtrip() {
        batch_roundtrip(&SharedMemStore::new());
    }

    #[test]
    fn file_store_batch_roundtrip() {
        let store = FileSpillStore::temp().unwrap();
        batch_roundtrip(&store);
    }

    #[test]
    fn bounded_batch_reads_respect_max_bytes() {
        let store = FileSpillStore::temp().unwrap();
        let mut w = store.begin_run().unwrap();
        for i in 0..10u32 {
            w.write_record(&i.to_le_bytes(), &[0xee; 16]).unwrap();
        }
        let meta = w.finish().unwrap();
        let mut r = store.open_run(meta.id).unwrap();
        // Each record encodes to 28 bytes; a 30-byte cap yields ~2 records
        // per batch (the default impl stops once the cap is crossed).
        let mut total = 0usize;
        let mut batches = 0usize;
        while let Some(b) = r.read_batch(30).unwrap() {
            total += b.len();
            batches += 1;
            assert!(b.len() <= 2);
        }
        assert_eq!(total, 10);
        assert!(batches >= 5);
    }

    #[test]
    fn large_records_roundtrip_through_files() {
        let store = FileSpillStore::temp().unwrap();
        let big_val = vec![0xabu8; 1 << 20];
        let mut w = store.begin_run().unwrap();
        w.write_record(b"big", &big_val).unwrap();
        let meta = w.finish().unwrap();
        let mut r = store.open_run(meta.id).unwrap();
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.key, b"big");
        assert_eq!(rec.value.len(), big_val.len());
        assert!(rec.value == big_val.as_slice());
    }
}
