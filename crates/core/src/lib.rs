//! # onepass-core
//!
//! Foundational substrate for the `onepass` analytics engine — a Rust
//! reproduction of *"Towards Scalable One-Pass Analytics Using MapReduce"*
//! (Mazur, Li, Diao, Shenoy; IPPS 2011).
//!
//! Section V of the paper describes a set of support libraries its prototype
//! is built on; this crate provides their Rust equivalents:
//!
//! * [`bytes_kv`] — the *byte-array based memory management library*: all
//!   key/value records live in contiguous byte arenas with offset tables, so
//!   no per-record heap allocations occur on the hot path.
//! * [`hashlib`] — the *hash function library*: pair-wise independent hash
//!   families (multiply-shift and tabulation) used for partitioning,
//!   hybrid-hash bucket splits, and sketches.
//! * [`memory`] — budgeted memory accounting, the mechanism by which
//!   operators detect "buffer full" (Hadoop's `io.sort.mb` analogue).
//! * [`governor`] — the adaptive memory governor: a job-wide pool leasing
//!   hierarchical budgets to tasks, rebalancing under skew and picking
//!   spill victims via pluggable policies under global pressure.
//! * [`io`] — the *file management library*: spill-run files with counted
//!   sequential I/O, backed either by real temp files or by an in-memory
//!   store for tests.
//! * [`metrics`] — phase-attributed CPU timers, counters and time-series
//!   samplers (the paper's `iostat`/`ps` profiling harness analogue).
//! * [`obs`] — live metrics: a sharded lock-free registry of atomic
//!   counters/gauges/histograms with a background sampler, Prometheus
//!   text exposition, and JSONL snapshot streaming.
//! * [`trace`] — structured task/phase trace events with Chrome
//!   trace-event JSON export (the timeline plots of Fig. 2a/3 as data).
//! * [`fault`] — seeded, deterministic fault schedules used to exercise
//!   the engine's task retry / speculative-execution machinery.
//! * [`json`] — dependency-free JSON building and parsing backing the
//!   trace and report exporters.
//! * [`table`] — minimal aligned-text / CSV emission for experiment drivers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bytes_kv;
pub mod config;
pub mod error;
pub mod fault;
pub mod governor;
pub mod hashlib;
pub mod io;
pub mod json;
pub mod memory;
pub mod metrics;
pub mod obs;
pub mod table;
pub mod trace;

pub use bytes_kv::{KvBuf, OwnedKv, SegmentBuf, SegmentBufBuilder};
pub use error::{Error, Result};
