//! Pair-wise independent hash function library.
//!
//! The paper's prototype ships "a set of pair-wise independent hash
//! functions to meet the requirement of hashing techniques" (§V). Hybrid
//! hash needs *independent* functions at each recursion level (otherwise a
//! bucket re-hashes into a single sub-bucket and recursion never
//! terminates), and the frequent-items sketches need seeded families.
//!
//! Two families are provided:
//!
//! * [`MultiplyShift`] — Dietzfelbinger's multiply-shift scheme over a
//!   64-bit mixed fingerprint. Extremely fast; pair-wise independent over
//!   the fingerprint domain.
//! * [`Tabulation`] — 8-per-byte table lookup hashing, 3-independent and
//!   empirically far stronger; slower to seed, similar evaluation speed.
//!
//! Both operate on `&[u8]` keys via a common [`KeyHasher`] trait so callers
//! can be generic over the family (the `bench_hashlib` benchmark compares
//! them).

/// A seeded hash function over byte-string keys.
pub trait KeyHasher: Send + Sync {
    /// Hash `key` to a 64-bit value.
    fn hash(&self, key: &[u8]) -> u64;

    /// Map `key` into one of `buckets` bins (uniformly, given a good hash).
    ///
    /// Uses the fixed-point multiply trick (`(h * n) >> 64`) instead of
    /// modulo: no division on the hot path and no modulo bias.
    fn bucket(&self, key: &[u8], buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        (((self.hash(key) as u128) * (buckets as u128)) >> 64) as usize
    }
}

/// A 64→64 bit finalization mixer (SplitMix64's finalizer). Used to reduce
/// variable-length byte strings to a well-mixed 64-bit fingerprint before
/// the pair-wise independent stage.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Reduce a byte string to a 64-bit fingerprint by folding 8-byte words
/// through the SplitMix64 mixer. This is *not* itself the pair-wise
/// independent stage — the seeded families are applied on top of it.
#[inline]
pub fn fingerprint(key: &[u8]) -> u64 {
    let mut acc: u64 = 0x9e37_79b9_7f4a_7c15 ^ (key.len() as u64);
    let mut chunks = key.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("chunk of 8"));
        acc = mix64(acc ^ w);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = [0u8; 8];
        w[..rem.len()].copy_from_slice(rem);
        acc = mix64(acc ^ u64::from_le_bytes(w));
    }
    mix64(acc)
}

/// Dietzfelbinger multiply-shift hashing: `h(x) = (a*x + b) >> (64 - out)`
/// evaluated in 128-bit arithmetic over the key fingerprint.
#[derive(Debug, Clone)]
pub struct MultiplyShift {
    a: u128,
    b: u128,
}

impl MultiplyShift {
    /// Construct from a seed. Distinct seeds give (with overwhelming
    /// probability) distinct, independent functions.
    pub fn new(seed: u64) -> Self {
        // Derive the 128-bit multiplier/addend from the seed via the mixer;
        // `a` must be odd for the multiply-shift guarantees.
        let a_lo = mix64(seed ^ 0xa076_1d64_78bd_642f) | 1;
        let a_hi = mix64(seed ^ 0xe703_7ed1_a0b4_28db);
        let b_lo = mix64(seed ^ 0x8ebc_6af0_9c88_c6e3);
        let b_hi = mix64(seed ^ 0x5899_65cc_7537_4cc3);
        MultiplyShift {
            a: ((a_hi as u128) << 64) | a_lo as u128,
            b: ((b_hi as u128) << 64) | b_lo as u128,
        }
    }
}

impl KeyHasher for MultiplyShift {
    #[inline]
    fn hash(&self, key: &[u8]) -> u64 {
        let x = fingerprint(key) as u128;
        (self.a.wrapping_mul(x).wrapping_add(self.b) >> 64) as u64
    }
}

/// Simple tabulation hashing: the 8 bytes of the key fingerprint index
/// eight 256-entry tables of random 64-bit words which are XORed together.
/// 3-independent; behaves like a fully random function for hashing with
/// chaining, linear probing, and frequency sketches.
#[derive(Clone)]
pub struct Tabulation {
    tables: Box<[[u64; 256]; 8]>,
}

impl std::fmt::Debug for Tabulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tabulation").finish_non_exhaustive()
    }
}

impl Tabulation {
    /// Construct from a seed, filling the tables with a SplitMix64 stream.
    pub fn new(seed: u64) -> Self {
        let mut state = seed ^ 0x1234_5678_9abc_def0;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            mix64(state)
        };
        let mut tables = Box::new([[0u64; 256]; 8]);
        for t in tables.iter_mut() {
            for e in t.iter_mut() {
                *e = next();
            }
        }
        Tabulation { tables }
    }
}

impl KeyHasher for Tabulation {
    #[inline]
    fn hash(&self, key: &[u8]) -> u64 {
        let fp = fingerprint(key).to_le_bytes();
        let mut h = 0u64;
        for (i, b) in fp.iter().enumerate() {
            h ^= self.tables[i][*b as usize];
        }
        h
    }
}

/// A seeded *family* of hash functions: level `i` of a recursive algorithm
/// (hybrid hash) or row `i` of a sketch asks for `family.member(i)`.
#[derive(Debug, Clone)]
pub struct HashFamily {
    seed: u64,
}

impl HashFamily {
    /// Create a family rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        HashFamily { seed }
    }

    /// The `i`-th member function (multiply-shift; cheap to construct).
    pub fn member(&self, i: u64) -> MultiplyShift {
        MultiplyShift::new(mix64(self.seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }
}

/// Seed used by [`HashFamily::default`].
pub const DEFAULT_FAMILY_SEED: u64 = 0x0e70_37ed_1a0b_428d;

/// A `std::hash` adapter over [`mix64`]: a fast, non-cryptographic hasher
/// for the engine's internal byte-key hash tables (the per-key state maps
/// of the incremental hash paths). Not DoS-hardened — these tables hold
/// engine-internal intermediate keys, not attacker-controlled map keys of
/// a long-lived service.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

impl std::hash::Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.state = mix64(self.state ^ fingerprint(bytes));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = mix64(self.state ^ i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FastBuildHasher;

impl std::hash::BuildHasher for FastBuildHasher {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher::default()
    }
}

/// A `HashMap` keyed by byte strings using [`FastHasher`].
pub type ByteMap<V> = std::collections::HashMap<Vec<u8>, V, FastBuildHasher>;

impl Default for HashFamily {
    fn default() -> Self {
        HashFamily::new(DEFAULT_FAMILY_SEED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_lengths_and_content() {
        assert_ne!(fingerprint(b""), fingerprint(b"\0"));
        assert_ne!(fingerprint(b"\0"), fingerprint(b"\0\0"));
        assert_ne!(fingerprint(b"abcdefgh"), fingerprint(b"abcdefgi"));
        // Deterministic.
        assert_eq!(fingerprint(b"hello"), fingerprint(b"hello"));
    }

    #[test]
    fn multiply_shift_seeds_differ() {
        let h1 = MultiplyShift::new(1);
        let h2 = MultiplyShift::new(2);
        let mut same = 0;
        for i in 0..1000u32 {
            let k = i.to_le_bytes();
            if h1.hash(&k) == h2.hash(&k) {
                same += 1;
            }
        }
        assert!(same < 5, "independent seeds should rarely collide: {same}");
    }

    #[test]
    fn bucket_is_in_range_and_covers_all_buckets() {
        let h = Tabulation::new(42);
        let n = 16;
        let mut seen = vec![false; n];
        for i in 0..10_000u32 {
            let b = h.bucket(&i.to_le_bytes(), n);
            assert!(b < n);
            seen[b] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn bucket_distribution_is_roughly_uniform() {
        let h = MultiplyShift::new(7);
        let n = 8;
        let trials = 80_000u32;
        let mut counts = vec![0usize; n];
        for i in 0..trials {
            counts[h.bucket(&i.to_le_bytes(), n)] += 1;
        }
        let expect = trials as f64 / n as f64;
        for c in counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn family_members_are_distinct() {
        let fam = HashFamily::new(99);
        let a = fam.member(0);
        let b = fam.member(1);
        let k = b"some key";
        assert_ne!(a.hash(k), b.hash(k));
        // Same index is the same function.
        assert_eq!(fam.member(3).hash(k), fam.member(3).hash(k));
    }

    #[test]
    fn byte_map_basic_usage() {
        let mut m: ByteMap<u32> = ByteMap::default();
        m.insert(b"alpha".to_vec(), 1);
        m.insert(b"beta".to_vec(), 2);
        assert_eq!(m.get(b"alpha".as_slice()), Some(&1));
        *m.entry(b"alpha".to_vec()).or_insert(0) += 10;
        assert_eq!(m[b"alpha".as_slice()], 11);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn tabulation_collision_rate_is_low() {
        let h = Tabulation::new(5);
        let mut hashes: Vec<u64> = (0..20_000u32).map(|i| h.hash(&i.to_le_bytes())).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 20_000, "no 64-bit collisions expected");
    }
}
