//! Pair-wise independent hash function library.
//!
//! The paper's prototype ships "a set of pair-wise independent hash
//! functions to meet the requirement of hashing techniques" (§V). Hybrid
//! hash needs *independent* functions at each recursion level (otherwise a
//! bucket re-hashes into a single sub-bucket and recursion never
//! terminates), and the frequent-items sketches need seeded families.
//!
//! Two families are provided:
//!
//! * [`MultiplyShift`] — Dietzfelbinger's multiply-shift scheme over a
//!   64-bit mixed fingerprint. Extremely fast; pair-wise independent over
//!   the fingerprint domain.
//! * [`Tabulation`] — 8-per-byte table lookup hashing, 3-independent and
//!   empirically far stronger; slower to seed, similar evaluation speed.
//!
//! Both operate on `&[u8]` keys via a common [`KeyHasher`] trait so callers
//! can be generic over the family (the `bench_hashlib` benchmark compares
//! them).

/// A seeded hash function over byte-string keys.
pub trait KeyHasher: Send + Sync {
    /// Hash `key` to a 64-bit value.
    fn hash(&self, key: &[u8]) -> u64;

    /// Map `key` into one of `buckets` bins (uniformly, given a good hash).
    ///
    /// Uses the fixed-point multiply trick (`(h * n) >> 64`) instead of
    /// modulo: no division on the hot path and no modulo bias.
    fn bucket(&self, key: &[u8], buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        (((self.hash(key) as u128) * (buckets as u128)) >> 64) as usize
    }
}

/// A 64→64 bit finalization mixer (SplitMix64's finalizer). Used to reduce
/// variable-length byte strings to a well-mixed 64-bit fingerprint before
/// the pair-wise independent stage.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Reduce a byte string to a 64-bit fingerprint by folding 8-byte words
/// through the SplitMix64 mixer. This is *not* itself the pair-wise
/// independent stage — the seeded families are applied on top of it.
///
/// The length seeds the accumulator *multiplied* by an odd constant, not
/// raw: with a raw `len` XOR, a zero-padded key could cancel the length
/// difference in the final partial word (`fingerprint(b"b") ==
/// fingerprint(b"a\0")` — the low bits of `len1 ^ len2` matched
/// `w1 ^ w2`). Spreading the length across all 64 bits makes such
/// trivial zero-padding / length-extension collisions impossible for any
/// key shorter than a full word.
#[inline]
pub fn fingerprint(key: &[u8]) -> u64 {
    let mut acc: u64 =
        0x9e37_79b9_7f4a_7c15 ^ (key.len() as u64).wrapping_mul(0xff51_afd7_ed55_8ccd);
    let mut chunks = key.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("chunk of 8"));
        acc = mix64(acc ^ w);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = [0u8; 8];
        w[..rem.len()].copy_from_slice(rem);
        acc = mix64(acc ^ u64::from_le_bytes(w));
    }
    mix64(acc)
}

/// Dietzfelbinger multiply-shift hashing: `h(x) = (a*x + b) >> (64 - out)`
/// evaluated in 128-bit arithmetic over the key fingerprint.
#[derive(Debug, Clone)]
pub struct MultiplyShift {
    a: u128,
    b: u128,
}

impl MultiplyShift {
    /// Construct from a seed. Distinct seeds give (with overwhelming
    /// probability) distinct, independent functions.
    pub fn new(seed: u64) -> Self {
        // Derive the 128-bit multiplier/addend from the seed via the mixer;
        // `a` must be odd for the multiply-shift guarantees.
        let a_lo = mix64(seed ^ 0xa076_1d64_78bd_642f) | 1;
        let a_hi = mix64(seed ^ 0xe703_7ed1_a0b4_28db);
        let b_lo = mix64(seed ^ 0x8ebc_6af0_9c88_c6e3);
        let b_hi = mix64(seed ^ 0x5899_65cc_7537_4cc3);
        MultiplyShift {
            a: ((a_hi as u128) << 64) | a_lo as u128,
            b: ((b_hi as u128) << 64) | b_lo as u128,
        }
    }
}

impl MultiplyShift {
    /// Hash a precomputed [`fingerprint`]. Batched probe loops compute the
    /// fingerprint once per record and reuse it across partition routing
    /// and table probes instead of re-reducing the key bytes each time.
    #[inline]
    pub fn hash_fp(&self, fp: u64) -> u64 {
        (self.a.wrapping_mul(fp as u128).wrapping_add(self.b) >> 64) as u64
    }

    /// Bucket a precomputed [`fingerprint`] into `buckets` bins.
    #[inline]
    pub fn bucket_fp(&self, fp: u64, buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        (((self.hash_fp(fp) as u128) * (buckets as u128)) >> 64) as usize
    }
}

impl KeyHasher for MultiplyShift {
    #[inline]
    fn hash(&self, key: &[u8]) -> u64 {
        self.hash_fp(fingerprint(key))
    }
}

/// Simple tabulation hashing: the 8 bytes of the key fingerprint index
/// eight 256-entry tables of random 64-bit words which are XORed together.
/// 3-independent; behaves like a fully random function for hashing with
/// chaining, linear probing, and frequency sketches.
#[derive(Clone)]
pub struct Tabulation {
    tables: Box<[[u64; 256]; 8]>,
}

impl std::fmt::Debug for Tabulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tabulation").finish_non_exhaustive()
    }
}

impl Tabulation {
    /// Construct from a seed, filling the tables with a SplitMix64 stream.
    pub fn new(seed: u64) -> Self {
        let mut state = seed ^ 0x1234_5678_9abc_def0;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            mix64(state)
        };
        let mut tables = Box::new([[0u64; 256]; 8]);
        for t in tables.iter_mut() {
            for e in t.iter_mut() {
                *e = next();
            }
        }
        Tabulation { tables }
    }
}

impl Tabulation {
    /// Hash a precomputed [`fingerprint`] (see
    /// [`MultiplyShift::hash_fp`]).
    #[inline]
    pub fn hash_fp(&self, fp: u64) -> u64 {
        let fp = fp.to_le_bytes();
        let mut h = 0u64;
        for (i, b) in fp.iter().enumerate() {
            h ^= self.tables[i][*b as usize];
        }
        h
    }

    /// Bucket a precomputed [`fingerprint`] into `buckets` bins.
    #[inline]
    pub fn bucket_fp(&self, fp: u64, buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        (((self.hash_fp(fp) as u128) * (buckets as u128)) >> 64) as usize
    }
}

impl KeyHasher for Tabulation {
    #[inline]
    fn hash(&self, key: &[u8]) -> u64 {
        self.hash_fp(fingerprint(key))
    }
}

/// Which pair-wise independent hash family the engine uses for partition
/// routing and group-by bucket decisions.
///
/// This is the *configuration* type exposed through
/// `EngineConfigBuilder::hash_family` and the CLI `--hash-family` flag;
/// the seeded machinery behind it lives in [`SeededFamily`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HashFamily {
    /// Dietzfelbinger multiply-shift over the key fingerprint. Pair-wise
    /// independent, essentially free to evaluate and to seed. The default.
    #[default]
    MultiplyShift,
    /// Simple tabulation hashing: 3-independent and empirically far
    /// stronger, at the cost of 16 KiB of tables per member function.
    Tabulation,
}

impl HashFamily {
    /// Stable lowercase label (used by CLI parsing and reports).
    pub fn label(self) -> &'static str {
        match self {
            HashFamily::MultiplyShift => "multiply-shift",
            HashFamily::Tabulation => "tabulation",
        }
    }

    /// Parse a CLI label; accepts the `label()` forms.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "multiply-shift" | "multiplyshift" | "ms" => Some(HashFamily::MultiplyShift),
            "tabulation" | "tab" => Some(HashFamily::Tabulation),
            _ => None,
        }
    }
}

/// One member function drawn from a [`SeededFamily`] — either family
/// evaluated over the shared key [`fingerprint`], so batched loops can
/// hash once per record and reuse the fingerprint for every routing
/// decision.
#[derive(Debug, Clone)]
pub enum FamilyHasher {
    /// A multiply-shift member.
    MultiplyShift(MultiplyShift),
    /// A tabulation member.
    Tabulation(Tabulation),
}

impl FamilyHasher {
    /// Hash a precomputed [`fingerprint`].
    #[inline]
    pub fn hash_fp(&self, fp: u64) -> u64 {
        match self {
            FamilyHasher::MultiplyShift(h) => h.hash_fp(fp),
            FamilyHasher::Tabulation(h) => h.hash_fp(fp),
        }
    }

    /// Bucket a precomputed [`fingerprint`] into `buckets` bins.
    #[inline]
    pub fn bucket_fp(&self, fp: u64, buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        (((self.hash_fp(fp) as u128) * (buckets as u128)) >> 64) as usize
    }
}

impl KeyHasher for FamilyHasher {
    #[inline]
    fn hash(&self, key: &[u8]) -> u64 {
        self.hash_fp(fingerprint(key))
    }
}

/// A seeded *family* of hash functions: level `i` of a recursive algorithm
/// (hybrid hash) or row `i` of a sketch asks for `family.member(i)`.
///
/// The family's [`HashFamily`] kind decides which scheme members use.
/// Tabulation members cost 16 KiB of tables each — cache the member, do
/// not construct one per record.
#[derive(Debug, Clone)]
pub struct SeededFamily {
    seed: u64,
    kind: HashFamily,
}

impl SeededFamily {
    /// Create a multiply-shift family rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SeededFamily {
            seed,
            kind: HashFamily::MultiplyShift,
        }
    }

    /// Create a family of the given kind rooted at `seed`.
    pub fn with_kind(seed: u64, kind: HashFamily) -> Self {
        SeededFamily { seed, kind }
    }

    /// The default-seeded family of the given kind — how engine config
    /// (`hash_family`) maps onto concrete hashers.
    pub fn of(kind: HashFamily) -> Self {
        SeededFamily {
            seed: DEFAULT_FAMILY_SEED,
            kind,
        }
    }

    /// The family kind.
    pub fn kind(&self) -> HashFamily {
        self.kind
    }

    /// The `i`-th member function.
    pub fn member(&self, i: u64) -> FamilyHasher {
        let seed = mix64(self.seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        match self.kind {
            HashFamily::MultiplyShift => FamilyHasher::MultiplyShift(MultiplyShift::new(seed)),
            HashFamily::Tabulation => FamilyHasher::Tabulation(Tabulation::new(seed)),
        }
    }
}

/// Seed used by [`SeededFamily::default`].
pub const DEFAULT_FAMILY_SEED: u64 = 0x0e70_37ed_1a0b_428d;

/// A `std::hash` adapter over [`mix64`]: a fast, non-cryptographic hasher
/// for the engine's internal byte-key hash tables (the per-key state maps
/// of the incremental hash paths). Not DoS-hardened — these tables hold
/// engine-internal intermediate keys, not attacker-controlled map keys of
/// a long-lived service.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

impl std::hash::Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.state = mix64(self.state ^ fingerprint(bytes));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = mix64(self.state ^ i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FastBuildHasher;

impl std::hash::BuildHasher for FastBuildHasher {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher::default()
    }
}

/// A `HashMap` keyed by byte strings using [`FastHasher`].
pub type ByteMap<V> = std::collections::HashMap<Vec<u8>, V, FastBuildHasher>;

impl Default for SeededFamily {
    fn default() -> Self {
        SeededFamily::new(DEFAULT_FAMILY_SEED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_lengths_and_content() {
        assert_ne!(fingerprint(b""), fingerprint(b"\0"));
        assert_ne!(fingerprint(b"\0"), fingerprint(b"\0\0"));
        assert_ne!(fingerprint(b"abcdefgh"), fingerprint(b"abcdefgi"));
        // Deterministic.
        assert_eq!(fingerprint(b"hello"), fingerprint(b"hello"));
    }

    #[test]
    fn multiply_shift_seeds_differ() {
        let h1 = MultiplyShift::new(1);
        let h2 = MultiplyShift::new(2);
        let mut same = 0;
        for i in 0..1000u32 {
            let k = i.to_le_bytes();
            if h1.hash(&k) == h2.hash(&k) {
                same += 1;
            }
        }
        assert!(same < 5, "independent seeds should rarely collide: {same}");
    }

    #[test]
    fn bucket_is_in_range_and_covers_all_buckets() {
        let h = Tabulation::new(42);
        let n = 16;
        let mut seen = vec![false; n];
        for i in 0..10_000u32 {
            let b = h.bucket(&i.to_le_bytes(), n);
            assert!(b < n);
            seen[b] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn bucket_distribution_is_roughly_uniform() {
        let h = MultiplyShift::new(7);
        let n = 8;
        let trials = 80_000u32;
        let mut counts = vec![0usize; n];
        for i in 0..trials {
            counts[h.bucket(&i.to_le_bytes(), n)] += 1;
        }
        let expect = trials as f64 / n as f64;
        for c in counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn family_members_are_distinct() {
        for kind in [HashFamily::MultiplyShift, HashFamily::Tabulation] {
            let fam = SeededFamily::with_kind(99, kind);
            let a = fam.member(0);
            let b = fam.member(1);
            let k = b"some key";
            assert_ne!(a.hash(k), b.hash(k), "{}", kind.label());
            // Same index is the same function.
            assert_eq!(fam.member(3).hash(k), fam.member(3).hash(k));
        }
    }

    #[test]
    fn family_hasher_fp_path_matches_key_path() {
        for kind in [HashFamily::MultiplyShift, HashFamily::Tabulation] {
            let h = SeededFamily::of(kind).member(7);
            for i in 0..500u32 {
                let k = i.to_le_bytes();
                let fp = fingerprint(&k);
                assert_eq!(h.hash(&k), h.hash_fp(fp));
                assert_eq!(h.bucket(&k, 13), h.bucket_fp(fp, 13));
            }
        }
    }

    #[test]
    fn hash_family_labels_round_trip() {
        for kind in [HashFamily::MultiplyShift, HashFamily::Tabulation] {
            assert_eq!(HashFamily::parse(kind.label()), Some(kind));
        }
        assert_eq!(HashFamily::parse("ms"), Some(HashFamily::MultiplyShift));
        assert_eq!(HashFamily::parse("tab"), Some(HashFamily::Tabulation));
        assert_eq!(HashFamily::parse("bogus"), None);
        assert_eq!(HashFamily::default(), HashFamily::MultiplyShift);
    }

    /// Property: `KeyHasher::bucket` is unbiased — over a large keyset,
    /// every bucket count of every family stays within a chi-square-style
    /// bound of the uniform expectation, including non-power-of-two bucket
    /// counts where modulo reduction would skew.
    #[test]
    fn bucket_is_unbiased_for_both_families() {
        let trials = 60_000u32;
        for kind in [HashFamily::MultiplyShift, HashFamily::Tabulation] {
            for n in [3usize, 7, 16, 61] {
                let h = SeededFamily::of(kind).member(11);
                let mut counts = vec![0u64; n];
                for i in 0..trials {
                    counts[h.bucket(&i.to_le_bytes(), n)] += 1;
                }
                let expect = trials as f64 / n as f64;
                let chi2: f64 = counts
                    .iter()
                    .map(|&c| {
                        let d = c as f64 - expect;
                        d * d / expect
                    })
                    .sum();
                // 99.9th percentile of chi-square with n-1 dof is well
                // under 3x dof for these sizes; 2.5x gives slack without
                // masking real bias (a mod-reduced 61-bucket split fails
                // this by orders of magnitude).
                assert!(
                    chi2 < 2.5 * (n as f64 - 1.0).max(6.0),
                    "{} buckets={n}: chi2={chi2:.1}",
                    kind.label()
                );
            }
        }
    }

    /// Property: `fingerprint` has no collisions at all across every key
    /// of length 0..=2 — which exhaustively covers the trivial
    /// zero-padding / length-extension pairs (`"b"` vs `"a\0"`, `""` vs
    /// `"\0"`, ...). The pre-fix fingerprint seeded with a raw `len` XOR
    /// and failed this on 65k of these pairs.
    #[test]
    fn fingerprint_has_no_short_key_collisions() {
        let mut seen: Vec<(u64, Vec<u8>)> = Vec::with_capacity(1 + 256 + 65536);
        seen.push((fingerprint(b""), Vec::new()));
        for a in 0..=255u8 {
            seen.push((fingerprint(&[a]), vec![a]));
            for b in 0..=255u8 {
                seen.push((fingerprint(&[a, b]), vec![a, b]));
            }
        }
        seen.sort_unstable();
        for w in seen.windows(2) {
            assert_ne!(
                w[0].0, w[1].0,
                "fingerprint collision: {:?} vs {:?}",
                w[0].1, w[1].1
            );
        }
    }

    /// The specific pre-fix failure: a key zero-extended by one byte
    /// colliding with the next length's key whose last byte absorbed the
    /// length delta.
    #[test]
    fn fingerprint_zero_padding_regression() {
        assert_ne!(fingerprint(b"b"), fingerprint(b"a\0"));
        assert_ne!(fingerprint(b"a"), fingerprint(b"a\0"));
        assert_ne!(fingerprint(b"ab"), fingerprint(b"ab\0"));
        assert_ne!(fingerprint(b"abcdefg"), fingerprint(b"abcdefg\0"));
    }

    #[test]
    fn byte_map_basic_usage() {
        let mut m: ByteMap<u32> = ByteMap::default();
        m.insert(b"alpha".to_vec(), 1);
        m.insert(b"beta".to_vec(), 2);
        assert_eq!(m.get(b"alpha".as_slice()), Some(&1));
        *m.entry(b"alpha".to_vec()).or_insert(0) += 10;
        assert_eq!(m[b"alpha".as_slice()], 11);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn tabulation_collision_rate_is_low() {
        let h = Tabulation::new(5);
        let mut hashes: Vec<u64> = (0..20_000u32).map(|i| h.hash(&i.to_le_bytes())).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 20_000, "no 64-bit collisions expected");
    }
}
