//! Error type shared by all onepass crates.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the onepass engine and its substrates.
#[derive(Debug)]
pub enum Error {
    /// An underlying filesystem / I/O operation failed.
    Io(std::io::Error),
    /// A spill run or partition id was requested that does not exist.
    NotFound(String),
    /// An operator was driven through an invalid state transition
    /// (e.g. pushing records after `finish`).
    InvalidState(String),
    /// A configuration value is out of its legal range.
    Config(String),
    /// A memory budget was exceeded where the operator cannot spill
    /// (e.g. a single record larger than the whole budget).
    MemoryExceeded {
        /// Bytes the operation needed.
        requested: usize,
        /// Bytes the budget could still grant.
        available: usize,
    },
    /// Corrupt or truncated on-disk run data.
    Corrupt(String),
    /// The task attempt was cancelled by the driver (e.g. a speculative
    /// twin finished first). Not a failure: the driver treats it as a
    /// benign early exit and never retries it.
    Cancelled,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            Error::Config(msg) => write!(f, "bad configuration: {msg}"),
            Error::MemoryExceeded {
                requested,
                available,
            } => write!(
                f,
                "memory budget exceeded: requested {requested} B, {available} B available"
            ),
            Error::Corrupt(msg) => write!(f, "corrupt run data: {msg}"),
            Error::Cancelled => write!(f, "task attempt cancelled"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::MemoryExceeded {
            requested: 100,
            available: 10,
        };
        let s = e.to_string();
        assert!(s.contains("100"));
        assert!(s.contains("10"));

        assert!(Error::NotFound("run 3".into())
            .to_string()
            .contains("run 3"));
        assert!(Error::Config("bad".into()).to_string().contains("bad"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        use std::error::Error as _;
        assert!(e.source().is_some());
        assert!(Error::Corrupt("x".into()).source().is_none());
    }
}
