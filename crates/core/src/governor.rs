//! Adaptive memory governance: a job-wide byte pool with leased,
//! rebalanced child budgets.
//!
//! The paper's one-pass operators are defined by what happens at the
//! memory boundary (§IV, Table III): hybrid hash partitions, incremental
//! hash overflows, frequent hash evicts cold keys, and the sort-merge
//! reducer spills runs. With a *static* split of job memory, a skewed
//! reducer hits its boundary while its neighbors sit on idle headroom —
//! the pathology M3R's in-memory budget sharing attacks. The
//! [`MemoryGovernor`] removes it:
//!
//! * the governor owns the **pool** (job-wide limit) and [`lease`]s child
//!   [`MemoryBudget`]s to tasks;
//! * a task that exhausts its lease escalates
//!   ([`MemoryBudget::try_grant_or_request`]) instead of spilling
//!   immediately. The governor grows the lease from uncommitted pool
//!   slack, or **rebalances** idle headroom away from the slackest
//!   sibling lease;
//! * when every lease is genuinely loaded (global pressure), a pluggable
//!   [`SpillPolicy`] picks a **victim** lease and posts a shed request on
//!   it; the victim's operator sheds bytes (`GroupBy::shed`) at its next
//!   batch boundary, and the requester falls back to its own spill path
//!   this one time.
//!
//! Shedding is a correctness-neutral reordering: operators shed by
//! spilling partial state through the same tagged-record paths their
//! normal overflow uses, so final output bytes are unchanged.
//!
//! [`lease`]: MemoryGovernor::lease

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Weak};

use crate::memory::{Escalator, MemoryBudget, WeakBudget};

/// Snapshot of one live lease, handed to [`SpillPolicy::pick_victim`].
#[derive(Debug, Clone)]
pub struct LeaseStat {
    /// Lease id (allocation order).
    pub id: usize,
    /// Bytes currently granted to the lease.
    pub used: usize,
    /// The lease's current limit.
    pub limit: usize,
    /// Operator-published size of its largest shedable unit (0 = none
    /// published). See [`MemoryBudget::publish_shed_unit`].
    pub shed_unit: usize,
    /// Operator-published heat of its coldest resident key (`u64::MAX` =
    /// unknown). See [`MemoryBudget::publish_heat`].
    pub coldest_heat: u64,
}

/// Chooses which lease sheds memory under global pressure.
///
/// Returning `None`, or the requester's own id, means "no useful victim":
/// the governor denies the request and the requester spills locally.
pub trait SpillPolicy: Send + Sync {
    /// Policy name for reports and CLI round-tripping.
    fn name(&self) -> &'static str;

    /// Pick a victim among `leases` (live leases only; `requester` is the
    /// lease asking for more memory).
    fn pick_victim(&self, leases: &[LeaseStat], requester: usize) -> Option<usize>;
}

/// Shed from the lease holding the most bytes — the default: freeing the
/// biggest consumer yields the most headroom per shed.
#[derive(Debug, Default, Clone, Copy)]
pub struct LargestConsumer;

impl SpillPolicy for LargestConsumer {
    fn name(&self) -> &'static str {
        "largest-consumer"
    }

    fn pick_victim(&self, leases: &[LeaseStat], _requester: usize) -> Option<usize> {
        leases
            .iter()
            .filter(|l| l.used > 0)
            .max_by_key(|l| (l.used, l.id))
            .map(|l| l.id)
    }
}

/// Shed from the lease whose largest shedable unit is biggest — tuned for
/// hybrid hash, where one partition event frees a whole resident bucket.
#[derive(Debug, Default, Clone, Copy)]
pub struct LargestBucket;

impl SpillPolicy for LargestBucket {
    fn name(&self) -> &'static str {
        "largest-bucket"
    }

    fn pick_victim(&self, leases: &[LeaseStat], _requester: usize) -> Option<usize> {
        leases
            .iter()
            .filter(|l| l.used > 0)
            .max_by_key(|l| (l.shed_unit, l.used, l.id))
            .map(|l| l.id)
    }
}

/// Shed from the lease with the coldest resident keys — tuned for
/// frequent hash, whose eviction cost is lowest where the data is cold
/// (cold states are small and unlikely to be touched again).
#[derive(Debug, Default, Clone, Copy)]
pub struct ColdestKeys;

impl SpillPolicy for ColdestKeys {
    fn name(&self) -> &'static str {
        "coldest-keys"
    }

    fn pick_victim(&self, leases: &[LeaseStat], _requester: usize) -> Option<usize> {
        leases
            .iter()
            .filter(|l| l.used > 0)
            .min_by_key(|l| (l.coldest_heat, usize::MAX - l.used, l.id))
            .map(|l| l.id)
    }
}

/// Rotate the victim across leases — the fairness baseline the adaptive
/// policies are measured against.
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: AtomicUsize,
}

impl SpillPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn pick_victim(&self, leases: &[LeaseStat], _requester: usize) -> Option<usize> {
        let candidates: Vec<&LeaseStat> = leases.iter().filter(|l| l.used > 0).collect();
        if candidates.is_empty() {
            return None;
        }
        let at = self.cursor.fetch_add(1, Ordering::Relaxed) % candidates.len();
        Some(candidates[at].id)
    }
}

/// Construct a policy by its [`SpillPolicy::name`] (CLI round-trip).
pub fn policy_by_name(name: &str) -> Option<Arc<dyn SpillPolicy>> {
    match name {
        "largest-consumer" => Some(Arc::new(LargestConsumer)),
        "largest-bucket" => Some(Arc::new(LargestBucket)),
        "coldest-keys" => Some(Arc::new(ColdestKeys)),
        "round-robin" => Some(Arc::new(RoundRobin::default())),
        _ => None,
    }
}

/// Default high-water fraction: above this pool utilization the shuffle
/// backpressures map-side pushes instead of growing reducer buffers.
pub const DEFAULT_HIGH_WATER: f64 = 0.85;

/// How the engine allocates reduce-side memory across tasks.
#[derive(Clone, Default)]
pub enum MemoryPolicy {
    /// Every task gets a fixed, independent budget slice (the seed
    /// behaviour).
    #[default]
    Static,
    /// Tasks lease from a shared pool under a [`MemoryGovernor`] that
    /// rebalances limits and, under pressure, sheds via `policy`.
    Adaptive {
        /// Victim-selection policy under global pressure.
        policy: Arc<dyn SpillPolicy>,
        /// Pool-utilization fraction above which the shuffle
        /// backpressures map-side pushes.
        high_water: f64,
    },
}

impl MemoryPolicy {
    /// The adaptive policy with default knobs ([`LargestConsumer`],
    /// [`DEFAULT_HIGH_WATER`]).
    pub fn adaptive() -> Self {
        MemoryPolicy::Adaptive {
            policy: Arc::new(LargestConsumer),
            high_water: DEFAULT_HIGH_WATER,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            MemoryPolicy::Static => "static".into(),
            MemoryPolicy::Adaptive { policy, .. } => format!("adaptive/{}", policy.name()),
        }
    }
}

impl std::fmt::Debug for MemoryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryPolicy::Static => f.write_str("Static"),
            MemoryPolicy::Adaptive { policy, high_water } => f
                .debug_struct("Adaptive")
                .field("policy", &policy.name())
                .field("high_water", high_water)
                .finish(),
        }
    }
}

/// Monotonic governor activity counters (report gauges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorCounters {
    /// Leases handed out over the governor's lifetime.
    pub leases: u64,
    /// Successful lease-limit raises (slack grants + reclaims).
    pub rebalances: u64,
    /// Shed requests posted on victim leases.
    pub sheds: u64,
    /// Total bytes requested across all shed requests.
    pub shed_bytes_requested: u64,
    /// Escalations denied outright (no slack, no reclaimable headroom,
    /// no useful victim).
    pub denied: u64,
}

struct LeaseEntry {
    id: usize,
    budget: WeakBudget,
}

pub(crate) struct GovInner {
    pool: MemoryBudget,
    policy: Arc<dyn SpillPolicy>,
    high_water: f64,
    /// Minimum bytes moved per rebalance, so hot leases don't escalate
    /// once per record.
    min_grant: usize,
    leases: Mutex<Vec<LeaseEntry>>,
    next_id: AtomicUsize,
    leases_total: AtomicU64,
    rebalances: AtomicU64,
    sheds: AtomicU64,
    shed_bytes: AtomicU64,
    denied: AtomicU64,
}

impl GovInner {
    /// Prune dead leases and snapshot the live ones.
    fn live(&self, leases: &mut Vec<LeaseEntry>) -> Vec<(usize, MemoryBudget)> {
        leases.retain(|l| l.budget.upgrade().is_some());
        leases
            .iter()
            .filter_map(|l| l.budget.upgrade().map(|b| (l.id, b)))
            .collect()
    }
}

impl Escalator for GovInner {
    fn request_more(&self, lease_id: usize, bytes: usize) -> bool {
        let grant = bytes.max(self.min_grant);
        let mut guard = self.leases.lock().expect("governor lock");
        let live = self.live(&mut guard);
        let Some((_, requester)) = live.iter().find(|(id, _)| *id == lease_id) else {
            return false;
        };
        let global = self.pool.limit();
        let committed: usize = live.iter().map(|(_, b)| b.limit()).sum();

        // 1. Uncommitted pool slack: grow the lease outright.
        if committed.saturating_add(grant) <= global {
            requester.set_limit(requester.limit() + grant);
            self.rebalances.fetch_add(1, Ordering::Relaxed);
            return true;
        }

        // 2. Rebalance: reclaim idle headroom from the slackest sibling.
        let donor = live
            .iter()
            .filter(|(id, _)| *id != lease_id)
            .max_by_key(|(_, b)| b.limit().saturating_sub(b.used()));
        if let Some((_, donor)) = donor {
            let slack = donor.limit().saturating_sub(donor.used());
            if slack >= grant {
                donor.set_limit(donor.limit() - grant);
                requester.set_limit(requester.limit() + grant);
                self.rebalances.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }

        // 3. Global pressure: ask a victim to shed. The requester spills
        //    locally this time; the freed headroom becomes reclaimable on
        //    its next escalation.
        let stats: Vec<LeaseStat> = live
            .iter()
            .map(|(id, b)| LeaseStat {
                id: *id,
                used: b.used(),
                limit: b.limit(),
                shed_unit: b.shed_unit_hint(),
                coldest_heat: b.heat_hint(),
            })
            .collect();
        match self.policy.pick_victim(&stats, lease_id) {
            Some(victim) if victim != lease_id => {
                if let Some((_, v)) = live.iter().find(|(id, _)| *id == victim) {
                    v.request_shed(grant);
                    self.sheds.fetch_add(1, Ordering::Relaxed);
                    self.shed_bytes.fetch_add(grant as u64, Ordering::Relaxed);
                } else {
                    self.denied.fetch_add(1, Ordering::Relaxed);
                }
            }
            _ => {
                self.denied.fetch_add(1, Ordering::Relaxed);
            }
        }
        false
    }
}

/// The job-wide memory governor. Cheap to clone (shared state).
#[derive(Clone)]
pub struct MemoryGovernor {
    inner: Arc<GovInner>,
}

impl std::fmt::Debug for MemoryGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryGovernor")
            .field("policy", &self.inner.policy.name())
            .field("pool_limit", &self.inner.pool.limit())
            .field("pool_used", &self.inner.pool.used())
            .finish()
    }
}

impl MemoryGovernor {
    /// Create a governor owning a `global_limit`-byte pool.
    pub fn new(global_limit: usize, policy: Arc<dyn SpillPolicy>, high_water: f64) -> Self {
        MemoryGovernor {
            inner: Arc::new(GovInner {
                pool: MemoryBudget::new(global_limit),
                policy,
                high_water: high_water.clamp(0.0, 1.0),
                min_grant: (global_limit / 64).clamp(256, 1 << 20),
                leases: Mutex::new(Vec::new()),
                next_id: AtomicUsize::new(0),
                leases_total: AtomicU64::new(0),
                rebalances: AtomicU64::new(0),
                sheds: AtomicU64::new(0),
                shed_bytes: AtomicU64::new(0),
                denied: AtomicU64::new(0),
            }),
        }
    }

    /// Lease a child budget with an `initial` limit. The lease escalates
    /// back to this governor when exhausted; dropping every clone of the
    /// returned budget ends the lease (its committed limit returns to
    /// slack, any un-released bytes refund the pool).
    pub fn lease(&self, initial: usize) -> MemoryBudget {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let esc: Weak<dyn Escalator> = Arc::downgrade(&self.inner) as Weak<dyn Escalator>;
        let budget = MemoryBudget::leased(&self.inner.pool, initial, esc, id);
        self.inner
            .leases
            .lock()
            .expect("governor lock")
            .push(LeaseEntry {
                id,
                budget: budget.downgrade(),
            });
        self.inner.leases_total.fetch_add(1, Ordering::Relaxed);
        budget
    }

    /// The shared pool (for gauges: `used`, `high_water`, `limit`).
    pub fn pool(&self) -> &MemoryBudget {
        &self.inner.pool
    }

    /// Is pool utilization above the high-water fraction? The shuffle
    /// uses this to backpressure map-side pushes.
    pub fn over_high_water(&self) -> bool {
        let limit = self.inner.pool.limit();
        limit > 0 && self.inner.pool.used() as f64 >= self.inner.high_water * limit as f64
    }

    /// The configured high-water fraction.
    pub fn high_water_frac(&self) -> f64 {
        self.inner.high_water
    }

    /// The victim-selection policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.inner.policy.name()
    }

    /// Snapshot the activity counters.
    pub fn counters(&self) -> GovernorCounters {
        GovernorCounters {
            leases: self.inner.leases_total.load(Ordering::Relaxed),
            rebalances: self.inner.rebalances.load(Ordering::Relaxed),
            sheds: self.inner.sheds.load(Ordering::Relaxed),
            shed_bytes_requested: self.inner.shed_bytes.load(Ordering::Relaxed),
            denied: self.inner.denied.load(Ordering::Relaxed),
        }
    }

    /// Live (un-dropped) leases right now.
    pub fn live_leases(&self) -> usize {
        let mut guard = self.inner.leases.lock().expect("governor lock");
        self.inner.live(&mut guard).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gov(limit: usize) -> MemoryGovernor {
        MemoryGovernor::new(limit, Arc::new(LargestConsumer), 0.85)
    }

    #[test]
    fn lease_grants_charge_the_pool() {
        let g = gov(1000);
        let a = g.lease(500);
        let b = g.lease(500);
        assert!(a.try_grant(400));
        assert!(b.try_grant(300));
        assert_eq!(g.pool().used(), 700);
        assert_eq!(g.live_leases(), 2);
        a.release(400);
        b.release(300);
        assert_eq!(g.pool().used(), 0);
        assert_eq!(g.counters().leases, 2);
    }

    #[test]
    fn skewed_demand_rebalances_from_idle_sibling() {
        // Two children split the pool statically; the hot one outgrows its
        // half by borrowing the idle sibling's headroom — no spill needed.
        let g = gov(1000);
        let hot = g.lease(500);
        let idle = g.lease(500);
        assert!(idle.try_grant(50)); // idle sits on 450 B of headroom
        assert!(hot.try_grant(500));
        assert!(!hot.try_grant(300), "plain grant is over the lease");
        assert!(
            hot.try_grant_or_request(300),
            "escalation must reclaim idle headroom"
        );
        assert!(hot.limit() > 500, "hot lease limit must have grown");
        assert!(idle.limit() < 500, "idle lease must have donated");
        assert!(idle.limit() >= idle.used(), "donor keeps what it uses");
        let c = g.counters();
        assert!(c.rebalances >= 1);
        assert_eq!(c.sheds, 0, "no shed under mere skew");
        assert!(g.pool().used() <= g.pool().limit());
    }

    #[test]
    fn uncommitted_slack_grows_lease_without_donor() {
        let g = gov(1000);
        let only = g.lease(200);
        assert!(only.try_grant(200));
        assert!(only.try_grant_or_request(100), "pool has 800 B slack");
        assert!(only.limit() >= 300);
        assert_eq!(g.counters().rebalances, 1);
    }

    #[test]
    fn global_pressure_posts_shed_on_largest_consumer() {
        let g = gov(1000);
        let big = g.lease(600);
        let small = g.lease(400);
        assert!(big.try_grant(600));
        assert!(small.try_grant(390));
        // No slack, no reclaimable headroom: escalation must pick `big`
        // as the victim and deny the grant.
        assert!(!small.try_grant_or_request(200));
        assert!(
            big.shed_requested() >= 200,
            "victim must carry the shed request"
        );
        assert_eq!(small.shed_requested(), 0, "requester is not the victim");
        let c = g.counters();
        assert_eq!(c.sheds, 1);
        assert!(c.shed_bytes_requested >= 200);

        // After the victim sheds, the next escalation reclaims its now-
        // idle headroom.
        big.release(big.take_shed_request().min(600));
        assert!(small.try_grant_or_request(200));
        big.release(big.used());
        small.release(small.used());
    }

    #[test]
    fn dead_leases_return_their_commitment_to_slack() {
        let g = gov(1000);
        let a = g.lease(900);
        assert!(a.try_grant(900));
        drop(a);
        assert_eq!(g.pool().used(), 0, "dead lease refunds the pool");
        let b = g.lease(100);
        assert!(
            b.try_grant_or_request(800),
            "commitment of the dead lease is slack again"
        );
        assert_eq!(g.live_leases(), 1);
    }

    #[test]
    fn round_robin_rotates_victims() {
        let g = MemoryGovernor::new(300, Arc::new(RoundRobin::default()), 0.85);
        let a = g.lease(100);
        let b = g.lease(100);
        let c = g.lease(100);
        assert!(a.try_grant(100));
        assert!(b.try_grant(100));
        assert!(c.try_grant(95));
        // Repeated denied escalations must spread shed requests around.
        for _ in 0..6 {
            let _ = c.try_grant_or_request(50);
        }
        let hit = [&a, &b, &c]
            .iter()
            .filter(|x| x.shed_requested() > 0)
            .count();
        assert!(hit >= 2, "round-robin must rotate across victims");
    }

    #[test]
    fn policies_use_their_hints() {
        let mk = |used: usize, unit: usize, heat: u64, id: usize| LeaseStat {
            id,
            used,
            limit: used,
            shed_unit: unit,
            coldest_heat: heat,
        };
        let stats = vec![
            mk(500, 40, u64::MAX, 0),
            mk(300, 200, 7, 1),
            mk(400, 90, 2, 2),
        ];
        assert_eq!(LargestConsumer.pick_victim(&stats, 9), Some(0));
        assert_eq!(LargestBucket.pick_victim(&stats, 9), Some(1));
        assert_eq!(ColdestKeys.pick_victim(&stats, 9), Some(2));
        assert_eq!(LargestConsumer.pick_victim(&[], 9), None);
    }

    #[test]
    fn policy_names_round_trip() {
        for name in [
            "largest-consumer",
            "largest-bucket",
            "coldest-keys",
            "round-robin",
        ] {
            let p = policy_by_name(name).expect("known policy");
            assert_eq!(p.name(), name);
        }
        assert!(policy_by_name("nope").is_none());
        assert_eq!(
            MemoryPolicy::adaptive().label(),
            "adaptive/largest-consumer"
        );
        assert_eq!(MemoryPolicy::Static.label(), "static");
    }

    #[test]
    fn over_high_water_tracks_pool_utilization() {
        let g = MemoryGovernor::new(1000, Arc::new(LargestConsumer), 0.8);
        let a = g.lease(1000);
        assert!(!g.over_high_water());
        assert!(a.try_grant(800));
        assert!(g.over_high_water());
        a.release(100);
        assert!(!g.over_high_water());
        a.release(700);
    }

    #[test]
    fn stress_high_water_never_exceeds_global_limit() {
        // 8 threads lease, grant, escalate, shed and release concurrently;
        // the pool's high-water mark must never pass the global limit
        // (leases use try_grant only — no force overshoot).
        let global = 8 * 1024;
        let g = gov(global);
        std::thread::scope(|s| {
            for t in 0..8 {
                let g = g.clone();
                s.spawn(move || {
                    let lease = g.lease(global / 8);
                    let mut held = 0usize;
                    for i in 0..2000 {
                        let want = 64 + (t * 37 + i * 13) % 256;
                        if lease.try_grant_or_request(want) {
                            held += want;
                        } else {
                            // Spill path: drop everything we hold.
                            lease.release(held);
                            held = 0;
                        }
                        if lease.take_shed_request() > 0 {
                            lease.release(held);
                            held = 0;
                        }
                    }
                    lease.release(held);
                });
            }
        });
        assert_eq!(g.pool().used(), 0);
        assert!(
            g.pool().high_water() <= global,
            "pool high water {} exceeded global limit {}",
            g.pool().high_water(),
            global
        );
        assert_eq!(g.live_leases(), 0);
    }
}
