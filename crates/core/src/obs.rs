//! Live metrics: a sharded, lock-free registry of counters, gauges and
//! log-bucketed histograms, with a background sampler and two exporters.
//!
//! The paper's empirical method is in-depth instrumentation of the
//! running engine — per-phase CPU cost, shuffle volume, progress and
//! time-to-first-answer. [`crate::metrics::Profile`] attributes CPU to
//! phases *after* a task finishes; this module is the *live* complement:
//! instruments update atomic cells while the job runs, and anything —
//! the in-process [`MetricsSampler`], a Prometheus scraper hitting
//! [`MetricsServer`], or a JSONL tail — can observe the whole registry
//! at any instant.
//!
//! # Architecture
//!
//! * [`MetricsRegistry`] — a cheaply cloneable handle to a set of
//!   *shards*, each an `RwLock<BTreeMap<key, metric>>`. The lock is
//!   taken only to **register** a metric (slow path, once per metric);
//!   after that, updates go through handles.
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — handles wrapping an
//!   `Arc` of atomic cells. Updating is one (or a few) relaxed atomic
//!   operations: no locks, no allocation, safe from any thread. Hot
//!   loops keep a handle and hit the atomics directly.
//! * [`Histogram`] buckets observations by the binary exponent of the
//!   value (one bucket per power of two), so p50/p95/p99 extraction is
//!   a 128-entry scan and any quantile is bounded by one octave of
//!   relative error.
//! * [`MetricsSampler`] — a background thread snapshotting the whole
//!   registry on a period into a time series of [`MetricsSnapshot`]s,
//!   optionally streaming each snapshot as a JSONL line.
//! * [`MetricsServer`] — a minimal blocking HTTP listener (std only)
//!   answering every GET with [`MetricsRegistry::render_prometheus`]
//!   text exposition.
//!
//! # Naming
//!
//! Metric names follow `onepass_<layer>_<name>` with `_total` suffixed
//! on counters (Prometheus convention); differing contexts (stage,
//! side, phase) are labels, never name fragments. The simulator
//! publishes mirrors of engine metrics under the same names with a
//! `source="sim"` label, so predicted-vs-actual comparison is a join on
//! metric name.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use crate::json::fmt_f64;
use crate::metrics::Series;

/// Registration shards; updates never touch these locks.
const NUM_SHARDS: usize = 8;

/// Histogram bucket count: one bucket per binary exponent.
const NUM_BUCKETS: usize = 128;

/// Exponent of the lowest bucket: bucket 0 spans `[2^MIN_EXP, 2^(MIN_EXP+1))`,
/// i.e. everything below ~2.3e-10 (and all non-positive values) lands there.
/// The top bucket ends at `2^(MIN_EXP + NUM_BUCKETS)` = 2^96 — wide enough
/// for nanoseconds-to-hours durations and byte counts alike.
const MIN_EXP: i32 = -32;

/// Atomic f64 add via compare-exchange on the bit pattern.
fn atomic_f64_add(cell: &AtomicU64, delta: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + delta).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A monotonically increasing counter handle.
///
/// Cloning shares the underlying cell; `inc` is one relaxed atomic add.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A counter not registered anywhere — updates go to a private cell.
    /// Useful as a no-op default in contexts where metrics are optional.
    pub fn detached() -> Self {
        Counter {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn inc(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.value())
    }
}

/// A last-value-wins gauge handle (stored as f64 bits in an atomic).
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// A gauge not registered anywhere (no-op default).
    pub fn detached() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adjust the gauge by `delta` (CAS loop; still lock-free).
    #[inline]
    pub fn add(&self, delta: f64) {
        atomic_f64_add(&self.bits, delta);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gauge({})", self.value())
    }
}

struct HistogramCore {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    /// Sum of observed values, as f64 bits.
    sum_bits: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((bucket_upper_bound(i), n));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            buckets,
        }
    }
}

/// Bucket index for a value: its binary exponent, clamped into range.
/// Non-positive and subnormal values land in bucket 0.
fn bucket_index(v: f64) -> usize {
    // NaN fails the is_finite check, so the comparison never sees it.
    if v <= 0.0 || !v.is_finite() {
        return 0;
    }
    let exp = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
    (exp - MIN_EXP).clamp(0, NUM_BUCKETS as i32 - 1) as usize
}

/// Exclusive upper bound of bucket `i`: `2^(MIN_EXP + i + 1)`.
fn bucket_upper_bound(i: usize) -> f64 {
    (2.0f64).powi(MIN_EXP + i as i32 + 1)
}

/// A log-bucketed histogram handle.
///
/// One bucket per power of two of the observed value; `observe` is two
/// relaxed atomic adds plus one CAS-loop f64 add for the sum. Quantiles
/// extracted from a snapshot are upper bounds with at most one octave
/// (2×) of relative error — plenty for "did TTFA regress 10×" questions,
/// at a fraction of the cost of exact reservoirs.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// A histogram not registered anywhere (no-op default).
    pub fn detached() -> Self {
        Histogram {
            core: Arc::new(HistogramCore::new()),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        self.core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.core.sum_bits, v);
    }

    /// Record a duration, in seconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Snapshot the current bucket contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core.snapshot()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.snapshot();
        write!(f, "Histogram(count={}, sum={})", s.count, s.sum)
    }
}

/// A point-in-time copy of one histogram's buckets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Non-empty buckets as `(exclusive_upper_bound, count)`, ascending.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// containing that rank — i.e. a value `>=` the true quantile, within
    /// one octave. Returns `0.0` for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(upper, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return upper;
            }
        }
        self.buckets.last().map(|&(u, _)| u).unwrap_or(0.0)
    }

    /// Mean of the observed values (exact — tracked as a running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// What kind of metric a registry entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    kind: Kind,
    cell: Cell,
}

struct RegistryInner {
    created: Instant,
    shards: [RwLock<BTreeMap<String, Entry>>; NUM_SHARDS],
}

/// The sharded metrics registry. Cloning shares the same metric set.
///
/// Handles obtained from [`counter`](MetricsRegistry::counter) /
/// [`gauge`](MetricsRegistry::gauge) /
/// [`histogram`](MetricsRegistry::histogram) stay valid for the life of
/// the registry; asking twice for the same name + labels returns a
/// handle to the same cell.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MetricsRegistry({} metrics)", self.len())
    }
}

/// Canonical registry key: name + sorted labels.
fn metric_key(name: &str, labels: &[(String, String)]) -> String {
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    for (k, v) in labels {
        key.push('\u{1}');
        key.push_str(k);
        key.push('\u{2}');
        key.push_str(v);
    }
    key
}

fn shard_of(key: &str) -> usize {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % NUM_SHARDS
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

impl MetricsRegistry {
    /// An empty registry; `at_s` timestamps count from this instant.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Arc::new(RegistryInner {
                created: Instant::now(),
                shards: std::array::from_fn(|_| RwLock::new(BTreeMap::new())),
            }),
        }
    }

    /// Seconds since the registry was created.
    pub fn elapsed_s(&self) -> f64 {
        self.inner.created.elapsed().as_secs_f64()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn register(&self, name: &str, labels: &[(&str, &str)], kind: Kind) -> Cell {
        let labels = sorted_labels(labels);
        let key = metric_key(name, &labels);
        let shard = &self.inner.shards[shard_of(&key)];
        if let Some(e) = shard.read().get(&key) {
            assert!(
                e.kind == kind,
                "metric `{name}` already registered as a {}, requested as a {}",
                e.kind.label(),
                kind.label()
            );
            return e.cell.clone();
        }
        let mut w = shard.write();
        let e = w.entry(key).or_insert_with(|| Entry {
            name: name.to_string(),
            labels,
            kind,
            cell: match kind {
                Kind::Counter => Cell::Counter(Arc::new(AtomicU64::new(0))),
                Kind::Gauge => Cell::Gauge(Arc::new(AtomicU64::new(0))),
                Kind::Histogram => Cell::Histogram(Arc::new(HistogramCore::new())),
            },
        });
        assert!(
            e.kind == kind,
            "metric `{name}` already registered as a {}, requested as a {}",
            e.kind.label(),
            kind.label()
        );
        e.cell.clone()
    }

    /// Get-or-register a counter.
    ///
    /// # Panics
    /// If `name` + `labels` was already registered with a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, labels, Kind::Counter) {
            Cell::Counter(cell) => Counter { cell },
            _ => unreachable!(),
        }
    }

    /// Get-or-register a gauge.
    ///
    /// # Panics
    /// If `name` + `labels` was already registered with a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, labels, Kind::Gauge) {
            Cell::Gauge(bits) => Gauge { bits },
            _ => unreachable!(),
        }
    }

    /// Get-or-register a histogram.
    ///
    /// # Panics
    /// If `name` + `labels` was already registered with a different kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.register(name, labels, Kind::Histogram) {
            Cell::Histogram(core) => Histogram { core },
            _ => unreachable!(),
        }
    }

    /// Snapshot every metric, sorted by name then labels.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut metrics = Vec::new();
        for shard in &self.inner.shards {
            let guard = shard.read();
            for e in guard.values() {
                let value = match &e.cell {
                    Cell::Counter(c) => SampleValue::Counter(c.load(Ordering::Relaxed)),
                    Cell::Gauge(g) => SampleValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed))),
                    Cell::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                };
                metrics.push(MetricSample {
                    name: e.name.clone(),
                    labels: e.labels.clone(),
                    value,
                });
            }
        }
        metrics.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        MetricsSnapshot {
            at_s: self.elapsed_s(),
            metrics,
        }
    }

    /// Render the whole registry in Prometheus text exposition format
    /// (version 0.0.4). Histograms are emitted as summaries with
    /// `quantile` labels for p50/p95/p99 plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        let mut last_name = "";
        for m in &snap.metrics {
            if m.name != last_name {
                let ty = match &m.value {
                    SampleValue::Counter(_) => "counter",
                    SampleValue::Gauge(_) => "gauge",
                    SampleValue::Histogram(_) => "summary",
                };
                out.push_str("# TYPE ");
                out.push_str(&m.name);
                out.push(' ');
                out.push_str(ty);
                out.push('\n');
            }
            match &m.value {
                SampleValue::Counter(v) => {
                    out.push_str(&m.name);
                    prom_labels(&mut out, &m.labels, None);
                    out.push(' ');
                    out.push_str(&v.to_string());
                    out.push('\n');
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&m.name);
                    prom_labels(&mut out, &m.labels, None);
                    out.push(' ');
                    out.push_str(&fmt_f64(*v));
                    out.push('\n');
                }
                SampleValue::Histogram(h) => {
                    for q in ["0.5", "0.95", "0.99"] {
                        out.push_str(&m.name);
                        prom_labels(&mut out, &m.labels, Some(q));
                        out.push(' ');
                        out.push_str(&fmt_f64(h.quantile(q.parse().unwrap())));
                        out.push('\n');
                    }
                    out.push_str(&m.name);
                    out.push_str("_sum");
                    prom_labels(&mut out, &m.labels, None);
                    out.push(' ');
                    out.push_str(&fmt_f64(h.sum));
                    out.push('\n');
                    out.push_str(&m.name);
                    out.push_str("_count");
                    prom_labels(&mut out, &m.labels, None);
                    out.push(' ');
                    out.push_str(&h.count.to_string());
                    out.push('\n');
                }
            }
            last_name = &m.name;
        }
        out
    }
}

/// Escape a Prometheus label value: backslash, double quote, newline.
fn prom_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn prom_labels(out: &mut String, labels: &[(String, String)], quantile: Option<&str>) {
    if labels.is_empty() && quantile.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&prom_escape(v));
        out.push('"');
    }
    if let Some(q) = quantile {
        if !first {
            out.push(',');
        }
        out.push_str("quantile=\"");
        out.push_str(q);
        out.push('"');
    }
    out.push('}');
}

/// One sampled metric inside a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Metric name (`onepass_<layer>_<name>`).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: SampleValue,
}

/// The value part of a [`MetricSample`].
#[derive(Debug, Clone)]
pub enum SampleValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram bucket snapshot.
    Histogram(HistogramSnapshot),
}

/// A whole-registry snapshot at one instant.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Seconds since registry creation.
    pub at_s: f64,
    /// Every metric, sorted by name then labels.
    pub metrics: Vec<MetricSample>,
}

fn jsonl_labels(out: &mut String, labels: &[(String, String)]) {
    out.push_str("\"labels\":{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(&crate::json::escape(k));
        out.push_str("\":\"");
        out.push_str(&crate::json::escape(v));
        out.push('"');
    }
    out.push('}');
}

impl MetricsSnapshot {
    /// Render the snapshot as one JSONL line:
    ///
    /// ```json
    /// {"type":"metrics","at_s":1.5,
    ///  "counters":[{"name":"...","labels":{"stage":"s0"},"value":3}],
    ///  "gauges":[{"name":"...","labels":{},"value":0.5}],
    ///  "histograms":[{"name":"...","labels":{},"count":3,"sum":1.5,
    ///                 "p50":0.25,"p95":0.5,"p99":0.5}]}
    /// ```
    pub fn to_jsonl(&self) -> String {
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for m in &self.metrics {
            let (buf, tail) = match &m.value {
                SampleValue::Counter(v) => (&mut counters, format!("\"value\":{v}}}")),
                SampleValue::Gauge(v) => (&mut gauges, format!("\"value\":{}}}", fmt_f64(*v))),
                SampleValue::Histogram(h) => (
                    &mut histograms,
                    format!(
                        "\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                        h.count,
                        fmt_f64(h.sum),
                        fmt_f64(h.quantile(0.5)),
                        fmt_f64(h.quantile(0.95)),
                        fmt_f64(h.quantile(0.99)),
                    ),
                ),
            };
            if !buf.is_empty() {
                buf.push(',');
            }
            buf.push_str("{\"name\":\"");
            buf.push_str(&crate::json::escape(&m.name));
            buf.push_str("\",");
            jsonl_labels(buf, &m.labels);
            buf.push(',');
            buf.push_str(&tail);
        }
        format!(
            "{{\"type\":\"metrics\",\"at_s\":{},\"counters\":[{}],\"gauges\":[{}],\"histograms\":[{}]}}\n",
            fmt_f64(self.at_s),
            counters,
            gauges,
            histograms,
        )
    }

    /// Find a sample by name and (subset of) labels.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSample> {
        self.metrics.iter().find(|m| {
            m.name == name
                && labels
                    .iter()
                    .all(|(k, v)| m.labels.iter().any(|(mk, mv)| mk == k && mv == v))
        })
    }
}

/// Extract one metric's trajectory across a snapshot series as a
/// [`Series`] (x = `at_s`, y = counter value / gauge value / histogram
/// count). Snapshots where the metric is absent are skipped.
pub fn snapshots_series(snaps: &[MetricsSnapshot], name: &str, labels: &[(&str, &str)]) -> Series {
    let mut s = Series::new("metric");
    for snap in snaps {
        if let Some(m) = snap.find(name, labels) {
            let y = match &m.value {
                SampleValue::Counter(v) => *v as f64,
                SampleValue::Gauge(v) => *v,
                SampleValue::Histogram(h) => h.count as f64,
            };
            s.push(snap.at_s, y);
        }
    }
    s
}

/// Background thread snapshotting a registry on a period.
///
/// Snapshots accumulate in memory and are returned by
/// [`stop`](MetricsSampler::stop); with
/// [`start_streaming`](MetricsSampler::start_streaming) each snapshot is
/// also written as a JSONL line as it is taken. A final snapshot is
/// always taken on stop, so even sub-period runs yield one sample.
pub struct MetricsSampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<Vec<MetricsSnapshot>>>,
}

impl fmt::Debug for MetricsSampler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MetricsSampler(running={})", self.handle.is_some())
    }
}

impl MetricsSampler {
    /// Start sampling `registry` every `period`.
    pub fn start(registry: MetricsRegistry, period: Duration) -> Self {
        Self::start_streaming(registry, period, None)
    }

    /// Start sampling; when `writer` is given, each snapshot is streamed
    /// to it as one JSONL line (flushed on stop).
    pub fn start_streaming(
        registry: MetricsRegistry,
        period: Duration,
        mut writer: Option<Box<dyn std::io::Write + Send>>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("metrics-sampler".into())
            .spawn(move || {
                let mut snaps = Vec::new();
                let tick = Duration::from_millis(2);
                let mut since_sample = Duration::ZERO;
                loop {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::sleep(tick);
                    since_sample += tick;
                    if since_sample >= period {
                        since_sample = Duration::ZERO;
                        let snap = registry.snapshot();
                        if let Some(w) = writer.as_mut() {
                            let _ = w.write_all(snap.to_jsonl().as_bytes());
                        }
                        snaps.push(snap);
                    }
                }
                let snap = registry.snapshot();
                if let Some(w) = writer.as_mut() {
                    let _ = w.write_all(snap.to_jsonl().as_bytes());
                    let _ = w.flush();
                }
                snaps.push(snap);
                snaps
            })
            .expect("spawn metrics-sampler");
        MetricsSampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the sampler and return every snapshot taken (a final one is
    /// appended on the way out).
    pub fn stop(mut self) -> Vec<MetricsSnapshot> {
        self.stop.store(true, Ordering::Relaxed);
        match self.handle.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => Vec::new(),
        }
    }
}

impl Drop for MetricsSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// A minimal blocking HTTP listener serving Prometheus text exposition.
///
/// Every request — the path is ignored — is answered `200 OK` with
/// `Content-Type: text/plain; version=0.0.4` and the current
/// [`MetricsRegistry::render_prometheus`] body. One connection is served
/// at a time; scrapers poll, they don't flood. Dropping the server stops
/// the listener thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MetricsServer({})", self.addr)
    }
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port) and
    /// serve `registry` until dropped.
    pub fn serve(registry: MetricsRegistry, addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("metrics-http".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((mut conn, _)) => {
                            let _ = conn.set_nonblocking(false);
                            let _ = conn.set_read_timeout(Some(Duration::from_millis(200)));
                            // Drain the request line + headers, best effort.
                            let mut buf = [0u8; 4096];
                            let mut seen = Vec::new();
                            loop {
                                match conn.read(&mut buf) {
                                    Ok(0) => break,
                                    Ok(n) => {
                                        seen.extend_from_slice(&buf[..n]);
                                        if seen.windows(4).any(|w| w == b"\r\n\r\n") {
                                            break;
                                        }
                                    }
                                    Err(_) => break,
                                }
                            }
                            let body = registry.render_prometheus();
                            let resp = format!(
                                "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                                body.len(),
                                body
                            );
                            let _ = conn.write_all(resp.as_bytes());
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn metrics-http");
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn counter_gauge_histogram_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("onepass_test_total", &[("stage", "s0")]);
        c.inc(3);
        c.inc(2);
        let g = reg.gauge("onepass_test_progress", &[]);
        g.set(0.25);
        g.add(0.25);
        let h = reg.histogram("onepass_test_seconds", &[]);
        h.observe(1.0);
        h.observe_duration(Duration::from_secs(1));

        assert_eq!(c.value(), 5);
        assert_eq!(g.value(), 0.5);
        let snap = reg.snapshot();
        assert_eq!(reg.len(), 3);
        match &snap
            .find("onepass_test_total", &[("stage", "s0")])
            .unwrap()
            .value
        {
            SampleValue::Counter(v) => assert_eq!(*v, 5),
            other => panic!("wrong kind: {other:?}"),
        }
        match &snap.find("onepass_test_seconds", &[]).unwrap().value {
            SampleValue::Histogram(h) => {
                assert_eq!(h.count, 2);
                assert_eq!(h.sum, 2.0);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn same_name_and_labels_share_a_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("onepass_shared_total", &[("k", "v")]);
        let b = reg.counter("onepass_shared_total", &[("k", "v")]);
        a.inc(1);
        b.inc(1);
        assert_eq!(a.value(), 2);
        // Different labels are a different cell.
        let c = reg.counter("onepass_shared_total", &[("k", "w")]);
        assert_eq!(c.value(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _c = reg.counter("onepass_kind_total", &[]);
        let _g = reg.gauge("onepass_kind_total", &[]);
    }

    // Satellite: quantile extraction pinned at bucket boundaries.
    #[test]
    fn histogram_quantiles_at_bucket_boundaries() {
        let h = Histogram::detached();
        // 1.0 has exponent 0 → bucket [1, 2); every quantile reports the
        // bucket's upper bound.
        for _ in 0..100 {
            h.observe(1.0);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 2.0);
        assert_eq!(s.quantile(0.5), 2.0);
        assert_eq!(s.quantile(0.99), 2.0);
        assert_eq!(s.quantile(1.0), 2.0);
        assert_eq!(s.mean(), 1.0);
    }

    #[test]
    fn histogram_exact_powers_of_two_fall_in_their_own_bucket() {
        let h = Histogram::detached();
        // One observation per bucket: 1, 2, 4, 8 land in [1,2), [2,4),
        // [4,8), [8,16) respectively.
        for v in [1.0, 2.0, 4.0, 8.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets.len(), 4);
        assert_eq!(s.buckets[0], (2.0, 1));
        assert_eq!(s.buckets[3], (16.0, 1));
        // rank(0.5 * 4) = 2 → second bucket's upper bound.
        assert_eq!(s.quantile(0.5), 4.0);
        // rank(0.75 * 4) = 3 → third bucket.
        assert_eq!(s.quantile(0.75), 8.0);
        assert_eq!(s.quantile(1.0), 16.0);
    }

    #[test]
    fn histogram_boundary_value_just_below_a_power_stays_below() {
        let h = Histogram::detached();
        // 2.0 - ulp is still in [1, 2); 2.0 itself is in [2, 4).
        h.observe(1.9999999999999998);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(2.0, 1)]);
    }

    #[test]
    fn histogram_pathological_values_clamp_to_bucket_zero() {
        let h = Histogram::detached();
        h.observe(0.0);
        h.observe(-5.0);
        h.observe(f64::NAN);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets.len(), 1);
        assert_eq!(s.buckets[0].1, 3);
        // The shared bottom bucket's upper bound: 2^(MIN_EXP + 1).
        assert_eq!(s.buckets[0].0, (2.0f64).powi(MIN_EXP + 1));
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let s = Histogram::detached().snapshot();
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("onepass_a_total", &[("stage", "s\"0")]).inc(7);
        reg.gauge("onepass_b", &[]).set(1.5);
        reg.histogram("onepass_c_seconds", &[]).observe(1.0);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE onepass_a_total counter\n"));
        assert!(text.contains("onepass_a_total{stage=\"s\\\"0\"} 7\n"));
        assert!(text.contains("# TYPE onepass_b gauge\n"));
        assert!(text.contains("onepass_b 1.5\n"));
        assert!(text.contains("# TYPE onepass_c_seconds summary\n"));
        assert!(text.contains("onepass_c_seconds{quantile=\"0.5\"} 2\n"));
        assert!(text.contains("onepass_c_seconds_sum 1\n"));
        assert!(text.contains("onepass_c_seconds_count 1\n"));
        // Every non-comment line is `name{...} value` with a numeric value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, val) = line.rsplit_once(' ').expect("value separator");
            val.parse::<f64>().expect("numeric value");
        }
    }

    #[test]
    fn snapshot_jsonl_parses_and_carries_sections() {
        let reg = MetricsRegistry::new();
        reg.counter("onepass_a_total", &[("stage", "s0")]).inc(7);
        reg.gauge("onepass_b", &[]).set(0.5);
        reg.histogram("onepass_c_seconds", &[]).observe(0.25);
        let line = reg.snapshot().to_jsonl();
        assert!(line.ends_with('\n'));
        let doc = Json::parse(line.trim()).expect("valid JSON");
        assert_eq!(doc.get("type").and_then(Json::as_str), Some("metrics"));
        assert!(doc.get("at_s").and_then(Json::as_f64).is_some());
        let counters = doc.get("counters").and_then(Json::as_arr).unwrap();
        assert_eq!(counters.len(), 1);
        assert_eq!(
            counters[0].get("name").and_then(Json::as_str),
            Some("onepass_a_total")
        );
        assert_eq!(counters[0].get("value").and_then(Json::as_f64), Some(7.0));
        assert_eq!(
            counters[0]
                .get("labels")
                .and_then(|l| l.get("stage"))
                .and_then(Json::as_str),
            Some("s0")
        );
        let hists = doc.get("histograms").and_then(Json::as_arr).unwrap();
        assert_eq!(hists[0].get("count").and_then(Json::as_f64), Some(1.0));
        assert!(hists[0].get("p95").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn sampler_collects_snapshots_and_series() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("onepass_work_total", &[]);
        let sampler = MetricsSampler::start(reg.clone(), Duration::from_millis(5));
        c.inc(10);
        std::thread::sleep(Duration::from_millis(25));
        let snaps = sampler.stop();
        assert!(!snaps.is_empty());
        let last = snaps.last().unwrap();
        match &last.find("onepass_work_total", &[]).unwrap().value {
            SampleValue::Counter(v) => assert_eq!(*v, 10),
            other => panic!("wrong kind: {other:?}"),
        }
        let series = snapshots_series(&snaps, "onepass_work_total", &[]);
        assert_eq!(series.len(), snaps.len());
        assert_eq!(series.points.last().unwrap().1, 10.0);
    }

    #[test]
    fn http_server_answers_with_exposition() {
        use std::io::{Read, Write};
        let reg = MetricsRegistry::new();
        reg.counter("onepass_http_total", &[]).inc(42);
        let server = MetricsServer::serve(reg, "127.0.0.1:0").expect("bind");
        let mut conn = std::net::TcpStream::connect(server.local_addr()).expect("connect");
        conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        conn.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 200 OK"));
        assert!(resp.contains("text/plain; version=0.0.4"));
        assert!(resp.contains("onepass_http_total 42\n"));
    }

    #[test]
    fn streaming_sampler_writes_jsonl() {
        use std::sync::Mutex;
        #[derive(Clone)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let reg = MetricsRegistry::new();
        reg.counter("onepass_stream_total", &[]).inc(1);
        let buf = Buf(Arc::new(Mutex::new(Vec::new())));
        let sampler = MetricsSampler::start_streaming(
            reg,
            Duration::from_millis(5),
            Some(Box::new(buf.clone())),
        );
        std::thread::sleep(Duration::from_millis(15));
        drop(sampler.stop());
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            let doc = Json::parse(line).expect("each line is valid JSON");
            assert_eq!(doc.get("type").and_then(Json::as_str), Some("metrics"));
        }
    }
}
