//! Deterministic fault injection for exercising task-level recovery.
//!
//! The paper's Hadoop baseline pays for map-output persistence (§II-A)
//! purely so that failed or slow tasks can be re-executed from durable
//! input. To test that the engine actually delivers on that promise, this
//! module provides a *planned*, seeded fault schedule: a [`FaultPlan`]
//! lists exactly which task attempts fail (or stall) and after how many
//! records, and a cheaply-cloneable [`FaultInjector`] is consulted by the
//! map and reduce execution paths at record granularity. Two runs with the
//! same plan observe the same faults, so recovery tests are reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which side of the job a planned fault targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    /// A map task (identified by split index).
    Map,
    /// A reduce task (identified by partition index).
    Reduce,
}

/// What happens when a planned fault fires.
#[derive(Clone, Debug)]
pub enum FaultKind {
    /// The task attempt returns an `Err`, as a failing spill store would.
    Error,
    /// The task attempt panics, as a buggy user map function would.
    Panic,
    /// The task attempt keeps running but sleeps this long before every
    /// record — a straggler, not a failure.
    Straggle(Duration),
}

/// One scheduled fault: fires on `(target, task, attempt)` once the task
/// has processed `after_records` records.
#[derive(Clone, Debug)]
pub struct PlannedFault {
    /// Map or reduce side.
    pub target: FaultTarget,
    /// Task id (map split index or reduce partition).
    pub task: usize,
    /// Attempt the fault applies to (re-executions get fresh ids and are
    /// unaffected unless separately planned).
    pub attempt: usize,
    /// Number of records the attempt processes before the fault fires.
    /// Ignored by [`FaultKind::Straggle`], which applies to every record.
    pub after_records: u64,
    /// Failure mode.
    pub kind: FaultKind,
}

/// A deterministic schedule of task faults.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<PlannedFault>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Deterministically derive a plan from `seed` that kills one map
    /// task and one reduce task mid-run (first attempts only), so a
    /// retried job exercises recovery on both sides of the shuffle.
    pub fn seeded(seed: u64, map_tasks: usize, reduce_tasks: usize) -> Self {
        let mut s = seed;
        let mut plan = Self::new();
        if map_tasks > 0 {
            let task = (splitmix64(&mut s) % map_tasks as u64) as usize;
            let after = 1 + splitmix64(&mut s) % 7;
            plan = plan.fail_map(task, 0, after);
        }
        if reduce_tasks > 0 {
            let task = (splitmix64(&mut s) % reduce_tasks as u64) as usize;
            let after = 1 + splitmix64(&mut s) % 7;
            plan = plan.fail_reduce(task, 0, after);
        }
        plan
    }

    /// Add an arbitrary planned fault.
    pub fn with(mut self, fault: PlannedFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Map task `task`, attempt `attempt`, errors after `after_records`
    /// records.
    pub fn fail_map(self, task: usize, attempt: usize, after_records: u64) -> Self {
        self.with(PlannedFault {
            target: FaultTarget::Map,
            task,
            attempt,
            after_records,
            kind: FaultKind::Error,
        })
    }

    /// Map task `task`, attempt `attempt`, panics after `after_records`
    /// records.
    pub fn panic_map(self, task: usize, attempt: usize, after_records: u64) -> Self {
        self.with(PlannedFault {
            target: FaultTarget::Map,
            task,
            attempt,
            after_records,
            kind: FaultKind::Panic,
        })
    }

    /// Map task `task`, attempt `attempt`, sleeps `delay` before every
    /// record — a straggler for speculative execution to race.
    pub fn straggle_map(self, task: usize, attempt: usize, delay: Duration) -> Self {
        self.with(PlannedFault {
            target: FaultTarget::Map,
            task,
            attempt,
            after_records: 0,
            kind: FaultKind::Straggle(delay),
        })
    }

    /// Reduce partition `task`, attempt `attempt`, errors after absorbing
    /// `after_records` shuffle records.
    pub fn fail_reduce(self, task: usize, attempt: usize, after_records: u64) -> Self {
        self.with(PlannedFault {
            target: FaultTarget::Reduce,
            task,
            attempt,
            after_records,
            kind: FaultKind::Error,
        })
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[PlannedFault] {
        &self.faults
    }

    /// Wrap the plan in a shareable injector handle.
    pub fn into_injector(self) -> FaultInjector {
        FaultInjector::new(self)
    }
}

/// Action the execution layer takes when a fault fires.
#[derive(Clone, Debug)]
pub enum FaultAction {
    /// Return an error from the task attempt.
    Fail,
    /// Panic inside the task attempt.
    Panic,
    /// Sleep this long, then continue (straggler).
    Delay(Duration),
}

struct Inner {
    plan: FaultPlan,
    triggered: AtomicU64,
}

/// Cheap handle consulted by map/reduce execution at record granularity.
///
/// The default (and [`FaultInjector::none`]) handle is inert: `check`
/// returns `None` without touching any shared state, so the fault hook
/// costs one branch on the hot path when no plan is installed.
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("FaultInjector::none"),
            Some(inner) => f
                .debug_struct("FaultInjector")
                .field("faults", &inner.plan.len())
                .field("triggered", &inner.triggered.load(Ordering::Relaxed))
                .finish(),
        }
    }
}

impl FaultInjector {
    /// An inert injector that never fires.
    pub fn none() -> Self {
        Self::default()
    }

    /// Injector enforcing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        if plan.is_empty() {
            return Self::none();
        }
        Self {
            inner: Some(Arc::new(Inner {
                plan,
                triggered: AtomicU64::new(0),
            })),
        }
    }

    /// Whether any faults are scheduled.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of Error/Panic faults that have fired so far (stragglers
    /// count once, on their first delayed record).
    pub fn triggered(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.triggered.load(Ordering::Relaxed))
    }

    /// Consult the plan before processing record `record` (0-based count
    /// of records the attempt has already processed). Callers must act on
    /// the returned action immediately: `Fail`/`Panic` abort the attempt,
    /// `Delay` sleeps and continues.
    pub fn check(
        &self,
        target: FaultTarget,
        task: usize,
        attempt: usize,
        record: u64,
    ) -> Option<FaultAction> {
        let inner = self.inner.as_ref()?;
        for fault in &inner.plan.faults {
            if fault.target != target || fault.task != task || fault.attempt != attempt {
                continue;
            }
            match fault.kind {
                FaultKind::Error if record >= fault.after_records => {
                    inner.triggered.fetch_add(1, Ordering::Relaxed);
                    return Some(FaultAction::Fail);
                }
                FaultKind::Panic if record >= fault.after_records => {
                    inner.triggered.fetch_add(1, Ordering::Relaxed);
                    return Some(FaultAction::Panic);
                }
                FaultKind::Straggle(delay) => {
                    if record == 0 {
                        inner.triggered.fetch_add(1, Ordering::Relaxed);
                    }
                    return Some(FaultAction::Delay(delay));
                }
                _ => {}
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_injector_never_fires() {
        let inj = FaultInjector::none();
        assert!(!inj.is_active());
        for r in 0..100 {
            assert!(inj.check(FaultTarget::Map, 0, 0, r).is_none());
        }
        assert_eq!(inj.triggered(), 0);
    }

    #[test]
    fn planned_error_fires_at_threshold_for_matching_attempt_only() {
        let inj = FaultPlan::new().fail_map(2, 0, 5).into_injector();
        assert!(inj.check(FaultTarget::Map, 2, 0, 4).is_none());
        assert!(matches!(
            inj.check(FaultTarget::Map, 2, 0, 5),
            Some(FaultAction::Fail)
        ));
        // Other tasks, attempts, and the reduce side are unaffected.
        assert!(inj.check(FaultTarget::Map, 1, 0, 9).is_none());
        assert!(inj.check(FaultTarget::Map, 2, 1, 9).is_none());
        assert!(inj.check(FaultTarget::Reduce, 2, 0, 9).is_none());
        assert_eq!(inj.triggered(), 1);
    }

    #[test]
    fn straggle_delays_every_record() {
        let d = Duration::from_millis(3);
        let inj = FaultPlan::new().straggle_map(0, 0, d).into_injector();
        for r in 0..3 {
            match inj.check(FaultTarget::Map, 0, 0, r) {
                Some(FaultAction::Delay(got)) => assert_eq!(got, d),
                other => panic!("expected delay, got {other:?}"),
            }
        }
        assert_eq!(inj.triggered(), 1, "straggler counts once");
    }

    #[test]
    fn seeded_plans_are_deterministic_and_cover_both_sides() {
        let a = FaultPlan::seeded(42, 8, 4);
        let b = FaultPlan::seeded(42, 8, 4);
        assert_eq!(a.len(), 2);
        assert_eq!(format!("{:?}", a.faults()), format!("{:?}", b.faults()));
        let targets: Vec<_> = a.faults().iter().map(|f| f.target).collect();
        assert!(targets.contains(&FaultTarget::Map));
        assert!(targets.contains(&FaultTarget::Reduce));
        // A different seed picks a different schedule (with these sizes).
        let c = FaultPlan::seeded(43, 8, 4);
        assert_ne!(format!("{:?}", a.faults()), format!("{:?}", c.faults()));
    }

    #[test]
    fn empty_plan_collapses_to_inert_injector() {
        assert!(!FaultPlan::new().into_injector().is_active());
        assert!(FaultPlan::seeded(7, 4, 2).into_injector().is_active());
    }
}
