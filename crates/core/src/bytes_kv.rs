//! Byte-array based key/value record storage.
//!
//! The paper's prototype "implements its key data structures in byte arrays
//! in the memory management library" to avoid the overhead of creating a
//! large number of per-record objects (§V). The Rust analogue of that
//! concern is per-record heap allocation: a naive
//! `Vec<(Vec<u8>, Vec<u8>)>` performs two allocations per record and
//! scatters records across the heap, destroying cache locality for the
//! sort/scan-heavy MapReduce inner loops.
//!
//! [`KvBuf`] instead stores all key and value bytes in one contiguous arena
//! with a parallel entry table `(partition, key_off, key_len, val_len)`.
//! Sorting permutes only the 24-byte entries, never the payload — exactly
//! what Hadoop's map-side buffer does with its kvindices array. The
//! `bench_kvbuf` benchmark quantifies the gap against the naive layout.

use crate::hashlib::fingerprint;

/// One logical record inside a [`KvBuf`]: which reducer partition it
/// belongs to plus the location of its key/value bytes in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Reducer partition assigned by the partitioner.
    pub partition: u32,
    /// Byte offset of the key within the arena; the value follows the key.
    pub key_off: u32,
    /// Key length in bytes.
    pub key_len: u32,
    /// Value length in bytes.
    pub val_len: u32,
}

/// An append-only arena of `(partition, key, value)` records.
///
/// Typical lifecycle: a mapper `push`es records until
/// [`KvBuf::arena_bytes`] exceeds its budget, then sorts (sort-merge path)
/// or partitions (hash path) and drains the buffer.
#[derive(Debug, Default, Clone)]
pub struct KvBuf {
    arena: Vec<u8>,
    entries: Vec<Entry>,
}

impl KvBuf {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty buffer with arena capacity pre-reserved.
    pub fn with_capacity(arena_bytes: usize, records: usize) -> Self {
        KvBuf {
            arena: Vec::with_capacity(arena_bytes),
            entries: Vec::with_capacity(records),
        }
    }

    /// Append one record.
    pub fn push(&mut self, partition: u32, key: &[u8], value: &[u8]) {
        let key_off = self.arena.len() as u32;
        self.arena.extend_from_slice(key);
        self.arena.extend_from_slice(value);
        self.entries.push(Entry {
            partition,
            key_off,
            key_len: key.len() as u32,
            val_len: value.len() as u32,
        });
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total payload bytes currently in the arena.
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// Approximate total heap footprint (arena + entry table), used for
    /// memory budgeting.
    pub fn mem_bytes(&self) -> usize {
        self.arena.capacity() + self.entries.capacity() * std::mem::size_of::<Entry>()
    }

    /// Key bytes of the `i`-th record (in current entry order).
    #[inline]
    pub fn key(&self, i: usize) -> &[u8] {
        let e = self.entries[i];
        &self.arena[e.key_off as usize..(e.key_off + e.key_len) as usize]
    }

    /// Value bytes of the `i`-th record (in current entry order).
    #[inline]
    pub fn value(&self, i: usize) -> &[u8] {
        let e = self.entries[i];
        let start = (e.key_off + e.key_len) as usize;
        &self.arena[start..start + e.val_len as usize]
    }

    /// Partition of the `i`-th record (in current entry order).
    #[inline]
    pub fn partition(&self, i: usize) -> u32 {
        self.entries[i].partition
    }

    /// Iterate `(partition, key, value)` in current entry order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u8], &[u8])> + '_ {
        (0..self.len()).map(move |i| (self.partition(i), self.key(i), self.value(i)))
    }

    /// Sort entries by the compound `(partition, key)` — Hadoop's map-side
    /// block sort (§II-A: "a block-level sort on the compound (partition,
    /// key) to achieve both partitioning and sorting in each partition").
    ///
    /// Only the entry table is permuted; payload bytes never move.
    pub fn sort_by_partition_key(&mut self) {
        // Split borrows: sort `entries` with a comparator reading `arena`.
        let arena = std::mem::take(&mut self.arena);
        self.entries.sort_unstable_by(|a, b| {
            a.partition.cmp(&b.partition).then_with(|| {
                let ka = &arena[a.key_off as usize..(a.key_off + a.key_len) as usize];
                let kb = &arena[b.key_off as usize..(b.key_off + b.key_len) as usize];
                ka.cmp(kb)
            })
        });
        self.arena = arena;
    }

    /// Sort entries by key only (used by single-partition operators).
    pub fn sort_by_key(&mut self) {
        let arena = std::mem::take(&mut self.arena);
        self.entries.sort_unstable_by(|a, b| {
            let ka = &arena[a.key_off as usize..(a.key_off + a.key_len) as usize];
            let kb = &arena[b.key_off as usize..(b.key_off + b.key_len) as usize];
            ka.cmp(kb)
        });
        self.arena = arena;
    }

    /// Stable counting "sort" on partition only — the hash path's
    /// replacement for the compound sort ("the map output is scanned once
    /// for partitioning, and no effort is spent for grouping", §V). O(n).
    pub fn group_by_partition(&mut self, partitions: usize) {
        if self.entries.is_empty() {
            return;
        }
        let mut counts = vec![0usize; partitions];
        for e in &self.entries {
            counts[e.partition as usize] += 1;
        }
        let mut starts = vec![0usize; partitions];
        let mut acc = 0;
        for (s, c) in starts.iter_mut().zip(&counts) {
            *s = acc;
            acc += c;
        }
        let mut out = vec![
            Entry {
                partition: 0,
                key_off: 0,
                key_len: 0,
                val_len: 0
            };
            self.entries.len()
        ];
        for e in &self.entries {
            let slot = &mut starts[e.partition as usize];
            out[*slot] = *e;
            *slot += 1;
        }
        self.entries = out;
    }

    /// Ranges of entry indices per partition, assuming entries are already
    /// ordered by partition (after either sort above).
    pub fn partition_ranges(&self, partitions: usize) -> Vec<std::ops::Range<usize>> {
        let mut ranges = Vec::with_capacity(partitions);
        let mut start = 0usize;
        for p in 0..partitions as u32 {
            let mut end = start;
            while end < self.entries.len() && self.entries[end].partition == p {
                end += 1;
            }
            ranges.push(start..end);
            start = end;
        }
        debug_assert_eq!(start, self.entries.len(), "entries not partition-ordered");
        ranges
    }

    /// Remove all records, retaining capacity.
    pub fn clear(&mut self) {
        self.arena.clear();
        self.entries.clear();
    }

    /// A 64-bit content fingerprint, invariant under record order. Used by
    /// tests to check that transformations preserve the multiset of
    /// records.
    pub fn unordered_fingerprint(&self) -> u64 {
        let mut acc = 0u64;
        for i in 0..self.len() {
            let mut h = fingerprint(self.key(i));
            h = h.rotate_left(17) ^ fingerprint(self.value(i));
            h ^= (self.partition(i) as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            acc = acc.wrapping_add(crate::hashlib::mix64(h));
        }
        acc
    }
}

/// An owned `(key, value)` pair — used at API boundaries where borrowing
/// from an arena is impractical (e.g. crossing thread channels).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct OwnedKv {
    /// Key bytes.
    pub key: Vec<u8>,
    /// Value bytes.
    pub value: Vec<u8>,
}

impl OwnedKv {
    /// Construct from borrowed slices.
    pub fn new(key: &[u8], value: &[u8]) -> Self {
        OwnedKv {
            key: key.to_vec(),
            value: value.to_vec(),
        }
    }

    /// Payload size in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.key.len() + self.value.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KvBuf {
        let mut b = KvBuf::new();
        b.push(1, b"banana", b"v1");
        b.push(0, b"cherry", b"v2");
        b.push(1, b"apple", b"v3");
        b.push(0, b"apple", b"v4");
        b
    }

    #[test]
    fn push_and_access_roundtrip() {
        let b = sample();
        assert_eq!(b.len(), 4);
        assert_eq!(b.key(0), b"banana");
        assert_eq!(b.value(0), b"v1");
        assert_eq!(b.partition(3), 0);
        assert_eq!(b.arena_bytes(), 6 + 2 + 6 + 2 + 5 + 2 + 5 + 2);
    }

    #[test]
    fn sort_by_partition_key_orders_compound() {
        let mut b = sample();
        let fp = b.unordered_fingerprint();
        b.sort_by_partition_key();
        let got: Vec<(u32, &[u8])> = (0..b.len()).map(|i| (b.partition(i), b.key(i))).collect();
        assert_eq!(
            got,
            vec![
                (0, b"apple".as_slice()),
                (0, b"cherry".as_slice()),
                (1, b"apple".as_slice()),
                (1, b"banana".as_slice()),
            ]
        );
        assert_eq!(b.unordered_fingerprint(), fp, "sort must preserve content");
    }

    #[test]
    fn group_by_partition_clusters_without_key_order() {
        let mut b = sample();
        let fp = b.unordered_fingerprint();
        b.group_by_partition(2);
        assert!(b.partition(0) == 0 && b.partition(1) == 0);
        assert!(b.partition(2) == 1 && b.partition(3) == 1);
        // Stability: original relative order within partitions preserved.
        assert_eq!(b.key(0), b"cherry");
        assert_eq!(b.key(1), b"apple");
        assert_eq!(b.key(2), b"banana");
        assert_eq!(b.unordered_fingerprint(), fp);
    }

    #[test]
    fn partition_ranges_cover_all_entries() {
        let mut b = sample();
        b.sort_by_partition_key();
        let ranges = b.partition_ranges(2);
        assert_eq!(ranges, vec![0..2, 2..4]);
        // Partitions with no records get empty ranges.
        let mut c = KvBuf::new();
        c.push(2, b"k", b"v");
        c.group_by_partition(4);
        let r = c.partition_ranges(4);
        assert_eq!(r, vec![0..0, 0..0, 0..1, 1..1]);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut b = sample();
        let cap = b.arena.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.arena.capacity(), cap);
    }

    #[test]
    fn empty_buffer_edge_cases() {
        let mut b = KvBuf::new();
        assert!(b.is_empty());
        b.sort_by_partition_key();
        b.group_by_partition(4);
        assert_eq!(b.partition_ranges(2), vec![0..0, 0..0]);
        assert_eq!(b.unordered_fingerprint(), 0);
    }

    #[test]
    fn zero_length_keys_and_values_are_legal() {
        let mut b = KvBuf::new();
        b.push(0, b"", b"v");
        b.push(0, b"k", b"");
        b.push(0, b"", b"");
        assert_eq!(b.key(0), b"");
        assert_eq!(b.value(1), b"");
        assert_eq!(b.key(2), b"");
        assert_eq!(b.value(2), b"");
        b.sort_by_key();
        assert_eq!(b.len(), 3);
    }
}
