//! Byte-array based key/value record storage.
//!
//! The paper's prototype "implements its key data structures in byte arrays
//! in the memory management library" to avoid the overhead of creating a
//! large number of per-record objects (§V). The Rust analogue of that
//! concern is per-record heap allocation: a naive
//! `Vec<(Vec<u8>, Vec<u8>)>` performs two allocations per record and
//! scatters records across the heap, destroying cache locality for the
//! sort/scan-heavy MapReduce inner loops.
//!
//! [`KvBuf`] instead stores all key and value bytes in one contiguous arena
//! with a parallel entry table `(partition, key_off, key_len, val_len)`.
//! Sorting permutes only the 24-byte entries, never the payload — exactly
//! what Hadoop's map-side buffer does with its kvindices array. The
//! `bench_kvbuf` benchmark quantifies the gap against the naive layout.

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::hashlib::fingerprint;

/// One logical record inside a [`KvBuf`]: which reducer partition it
/// belongs to plus the location of its key/value bytes in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Reducer partition assigned by the partitioner.
    pub partition: u32,
    /// Byte offset of the key within the arena; the value follows the key.
    pub key_off: u32,
    /// Key length in bytes.
    pub key_len: u32,
    /// Value length in bytes.
    pub val_len: u32,
}

/// An append-only arena of `(partition, key, value)` records.
///
/// Typical lifecycle: a mapper `push`es records until
/// [`KvBuf::arena_bytes`] exceeds its budget, then sorts (sort-merge path)
/// or partitions (hash path) and drains the buffer.
#[derive(Debug, Default, Clone)]
pub struct KvBuf {
    arena: Vec<u8>,
    entries: Vec<Entry>,
}

impl KvBuf {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty buffer with arena capacity pre-reserved.
    pub fn with_capacity(arena_bytes: usize, records: usize) -> Self {
        KvBuf {
            arena: Vec::with_capacity(arena_bytes),
            entries: Vec::with_capacity(records),
        }
    }

    /// Append one record.
    pub fn push(&mut self, partition: u32, key: &[u8], value: &[u8]) {
        let key_off = self.arena.len() as u32;
        self.arena.extend_from_slice(key);
        self.arena.extend_from_slice(value);
        self.entries.push(Entry {
            partition,
            key_off,
            key_len: key.len() as u32,
            val_len: value.len() as u32,
        });
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total payload bytes currently in the arena.
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// Approximate total heap footprint (arena + entry table), used for
    /// memory budgeting.
    pub fn mem_bytes(&self) -> usize {
        self.arena.capacity() + self.entries.capacity() * std::mem::size_of::<Entry>()
    }

    /// Key bytes of the `i`-th record (in current entry order).
    #[inline]
    pub fn key(&self, i: usize) -> &[u8] {
        let e = self.entries[i];
        &self.arena[e.key_off as usize..(e.key_off + e.key_len) as usize]
    }

    /// Value bytes of the `i`-th record (in current entry order).
    #[inline]
    pub fn value(&self, i: usize) -> &[u8] {
        let e = self.entries[i];
        let start = (e.key_off + e.key_len) as usize;
        &self.arena[start..start + e.val_len as usize]
    }

    /// Partition of the `i`-th record (in current entry order).
    #[inline]
    pub fn partition(&self, i: usize) -> u32 {
        self.entries[i].partition
    }

    /// Iterate `(partition, key, value)` in current entry order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u8], &[u8])> + '_ {
        (0..self.len()).map(move |i| (self.partition(i), self.key(i), self.value(i)))
    }

    /// Sort entries by the compound `(partition, key)` — Hadoop's map-side
    /// block sort (§II-A: "a block-level sort on the compound (partition,
    /// key) to achieve both partitioning and sorting in each partition").
    ///
    /// Only the entry table is permuted; payload bytes never move.
    pub fn sort_by_partition_key(&mut self) {
        // Split borrows: sort `entries` with a comparator reading `arena`.
        let arena = std::mem::take(&mut self.arena);
        self.entries.sort_unstable_by(|a, b| {
            a.partition.cmp(&b.partition).then_with(|| {
                let ka = &arena[a.key_off as usize..(a.key_off + a.key_len) as usize];
                let kb = &arena[b.key_off as usize..(b.key_off + b.key_len) as usize];
                ka.cmp(kb)
            })
        });
        self.arena = arena;
    }

    /// Sort entries by key only (used by single-partition operators).
    pub fn sort_by_key(&mut self) {
        let arena = std::mem::take(&mut self.arena);
        self.entries.sort_unstable_by(|a, b| {
            let ka = &arena[a.key_off as usize..(a.key_off + a.key_len) as usize];
            let kb = &arena[b.key_off as usize..(b.key_off + b.key_len) as usize];
            ka.cmp(kb)
        });
        self.arena = arena;
    }

    /// Stable counting "sort" on partition only — the hash path's
    /// replacement for the compound sort ("the map output is scanned once
    /// for partitioning, and no effort is spent for grouping", §V). O(n).
    pub fn group_by_partition(&mut self, partitions: usize) {
        if self.entries.is_empty() {
            return;
        }
        let mut counts = vec![0usize; partitions];
        for e in &self.entries {
            counts[e.partition as usize] += 1;
        }
        let mut starts = vec![0usize; partitions];
        let mut acc = 0;
        for (s, c) in starts.iter_mut().zip(&counts) {
            *s = acc;
            acc += c;
        }
        let mut out = vec![
            Entry {
                partition: 0,
                key_off: 0,
                key_len: 0,
                val_len: 0
            };
            self.entries.len()
        ];
        for e in &self.entries {
            let slot = &mut starts[e.partition as usize];
            out[*slot] = *e;
            *slot += 1;
        }
        self.entries = out;
    }

    /// Ranges of entry indices per partition, assuming entries are already
    /// ordered by partition (after either sort above).
    pub fn partition_ranges(&self, partitions: usize) -> Vec<std::ops::Range<usize>> {
        let mut ranges = Vec::with_capacity(partitions);
        let mut start = 0usize;
        for p in 0..partitions as u32 {
            let mut end = start;
            while end < self.entries.len() && self.entries[end].partition == p {
                end += 1;
            }
            ranges.push(start..end);
            start = end;
        }
        debug_assert_eq!(start, self.entries.len(), "entries not partition-ordered");
        ranges
    }

    /// Remove all records, retaining capacity.
    pub fn clear(&mut self) {
        self.arena.clear();
        self.entries.clear();
    }

    /// Drain the buffer into one immutable [`SegmentBuf`] per partition
    /// **without re-allocating payload bytes**: the arena is moved into an
    /// `Arc` shared by every returned segment, and only the (12-byte)
    /// entry tables are scattered per partition. Entries keep their
    /// current order within each partition, so a buffer sorted with
    /// [`KvBuf::sort_by_partition_key`] yields key-sorted segments and an
    /// unsorted buffer yields arrival-ordered segments — no
    /// partition-clustering pass is needed either way.
    ///
    /// The buffer is left empty (its arena ownership has been given away).
    pub fn freeze_into_segments(&mut self, partitions: usize) -> Vec<SegmentBuf> {
        let arena = Arc::new(std::mem::take(&mut self.arena));
        let entries = std::mem::take(&mut self.entries);
        let mut counts = vec![0usize; partitions];
        for e in &entries {
            counts[e.partition as usize] += 1;
        }
        let mut per: Vec<Vec<SegEntry>> = counts.iter().map(|&c| Vec::with_capacity(c)).collect();
        for e in entries {
            per[e.partition as usize].push(SegEntry {
                key_off: e.key_off,
                key_len: e.key_len,
                val_len: e.val_len,
            });
        }
        per.into_iter()
            .map(|es| SegmentBuf::from_parts(Arc::clone(&arena), es))
            .collect()
    }

    /// A 64-bit content fingerprint, invariant under record order. Used by
    /// tests to check that transformations preserve the multiset of
    /// records.
    pub fn unordered_fingerprint(&self) -> u64 {
        let mut acc = 0u64;
        for i in 0..self.len() {
            let mut h = fingerprint(self.key(i));
            h = h.rotate_left(17) ^ fingerprint(self.value(i));
            h ^= (self.partition(i) as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            acc = acc.wrapping_add(crate::hashlib::mix64(h));
        }
        acc
    }
}

/// Location of one record inside a [`SegmentBuf`] arena. The value bytes
/// immediately follow the key bytes, so one entry is 12 bytes and a record
/// access is two slice operations on the shared arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegEntry {
    /// Byte offset of the key within the arena.
    pub key_off: u32,
    /// Key length in bytes.
    pub key_len: u32,
    /// Value length in bytes.
    pub val_len: u32,
}

/// An immutable batch of `(key, value)` records backed by one contiguous,
/// `Arc`-shared byte arena.
///
/// This is the flat-buffer record representation that flows across the
/// whole engine: map flushes freeze a [`KvBuf`] into per-partition
/// `SegmentBuf`s ([`KvBuf::freeze_into_segments`]), the shuffle moves one
/// arena per partition instead of N boxed pairs, reducers retain segments
/// for retry replay with two atomic increments instead of a deep copy, and
/// spill readers hand back whole runs as zero-copy segments
/// ([`SegmentBuf::from_framed`]). `clone()` bumps two `Arc`s; payload
/// bytes are never re-allocated.
#[derive(Debug, Clone, Default)]
pub struct SegmentBuf {
    arena: Arc<Vec<u8>>,
    entries: Arc<Vec<SegEntry>>,
    payload: usize,
}

impl SegmentBuf {
    fn from_parts(arena: Arc<Vec<u8>>, entries: Vec<SegEntry>) -> Self {
        let payload = entries
            .iter()
            .map(|e| (e.key_len + e.val_len) as usize)
            .sum();
        SegmentBuf {
            arena,
            entries: Arc::new(entries),
            payload,
        }
    }

    /// Build a segment by copying borrowed pairs into a fresh arena.
    /// Convenience for tests and small batches; hot paths should use
    /// [`SegmentBufBuilder`] or [`KvBuf::freeze_into_segments`].
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a [u8], &'a [u8])>) -> Self {
        let mut b = SegmentBufBuilder::new();
        for (k, v) in pairs {
            b.push(k, v);
        }
        b.finish()
    }

    /// Interpret length-prefixed record frames — the spill-run wire format
    /// `[u32 klen][u32 vlen][key][value]`, little-endian — starting at
    /// byte `start` of `data`, **sharing `data` as the arena**. Entries
    /// point directly into the framed bytes (payload offsets skip each
    /// 8-byte header), so no payload is copied.
    pub fn from_framed(data: Arc<Vec<u8>>, start: usize) -> Result<Self> {
        let n = data.len();
        let mut entries = Vec::new();
        let mut payload = 0usize;
        let mut pos = start;
        while pos < n {
            if n - pos < 8 {
                return Err(Error::Corrupt("truncated record header".into()));
            }
            let klen = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            let vlen = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap()) as usize;
            let body = pos + 8;
            if n - body < klen + vlen {
                return Err(Error::Corrupt("truncated record payload".into()));
            }
            entries.push(SegEntry {
                key_off: body as u32,
                key_len: klen as u32,
                val_len: vlen as u32,
            });
            payload += klen + vlen;
            pos = body + klen + vlen;
        }
        Ok(SegmentBuf {
            arena: data,
            entries: Arc::new(entries),
            payload,
        })
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the segment carries no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total key + value bytes (headers and entry tables excluded).
    pub fn payload_bytes(&self) -> usize {
        self.payload
    }

    /// Key bytes of the `i`-th record.
    #[inline]
    pub fn key(&self, i: usize) -> &[u8] {
        let e = self.entries[i];
        &self.arena[e.key_off as usize..(e.key_off + e.key_len) as usize]
    }

    /// Value bytes of the `i`-th record.
    #[inline]
    pub fn value(&self, i: usize) -> &[u8] {
        let e = self.entries[i];
        let start = (e.key_off + e.key_len) as usize;
        &self.arena[start..start + e.val_len as usize]
    }

    /// Both slices of the `i`-th record.
    #[inline]
    pub fn get(&self, i: usize) -> (&[u8], &[u8]) {
        (self.key(i), self.value(i))
    }

    /// The `i`-th record materialized as an [`OwnedKv`].
    pub fn owned(&self, i: usize) -> OwnedKv {
        OwnedKv::new(self.key(i), self.value(i))
    }

    /// Iterate `(key, value)` slice pairs in entry order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// A copy of this segment with entries re-ordered by key. The arena is
    /// shared — only the 12-byte entry table is cloned and permuted, which
    /// is how reducers sort unsorted (hash-path) segments without touching
    /// payload bytes.
    pub fn sorted_by_key(&self) -> SegmentBuf {
        let mut entries: Vec<SegEntry> = self.entries.as_ref().clone();
        let arena = &self.arena;
        entries.sort_unstable_by(|a, b| {
            let ka = &arena[a.key_off as usize..(a.key_off + a.key_len) as usize];
            let kb = &arena[b.key_off as usize..(b.key_off + b.key_len) as usize];
            ka.cmp(kb)
        });
        SegmentBuf {
            arena: Arc::clone(&self.arena),
            entries: Arc::new(entries),
            payload: self.payload,
        }
    }

    /// Order-invariant 64-bit content fingerprint over `(partition, key,
    /// value)` triples — the [`KvBuf::unordered_fingerprint`] computation
    /// with every record attributed to `partition`, so segment-level and
    /// buffer-level fingerprints can be cross-checked.
    pub fn unordered_fingerprint(&self, partition: u32) -> u64 {
        let mut acc = 0u64;
        for (k, v) in self.iter() {
            let mut h = fingerprint(k);
            h = h.rotate_left(17) ^ fingerprint(v);
            h ^= (partition as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            acc = acc.wrapping_add(crate::hashlib::mix64(h));
        }
        acc
    }
}

impl FromIterator<OwnedKv> for SegmentBuf {
    fn from_iter<I: IntoIterator<Item = OwnedKv>>(iter: I) -> Self {
        let mut b = SegmentBufBuilder::new();
        for kv in iter {
            b.push(&kv.key, &kv.value);
        }
        b.finish()
    }
}

/// Incremental builder for a [`SegmentBuf`] — used where a flush has to
/// synthesize new payload bytes (combine output, batched spill reads)
/// rather than freeze an existing [`KvBuf`] arena.
#[derive(Debug, Default)]
pub struct SegmentBufBuilder {
    arena: Vec<u8>,
    entries: Vec<SegEntry>,
}

impl SegmentBufBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a builder with arena capacity pre-reserved.
    pub fn with_capacity(arena_bytes: usize, records: usize) -> Self {
        SegmentBufBuilder {
            arena: Vec::with_capacity(arena_bytes),
            entries: Vec::with_capacity(records),
        }
    }

    /// Append one record.
    pub fn push(&mut self, key: &[u8], value: &[u8]) {
        let key_off = self.arena.len() as u32;
        self.arena.extend_from_slice(key);
        self.arena.extend_from_slice(value);
        self.entries.push(SegEntry {
            key_off,
            key_len: key.len() as u32,
            val_len: value.len() as u32,
        });
    }

    /// Records appended so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Payload bytes appended so far.
    pub fn payload_bytes(&self) -> usize {
        self.arena.len()
    }

    /// Seal into an immutable, shareable segment.
    pub fn finish(self) -> SegmentBuf {
        SegmentBuf::from_parts(Arc::new(self.arena), self.entries)
    }
}

/// The canonical owned `(key, value)` record — the materialized form of a
/// [`SegmentBuf`] entry, used at API boundaries where borrowing from an
/// arena is impractical (e.g. long-lived report output). Convert back and
/// forth with [`SegmentBuf::owned`] and `SegmentBuf::from_iter`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct OwnedKv {
    /// Key bytes.
    pub key: Vec<u8>,
    /// Value bytes.
    pub value: Vec<u8>,
}

impl OwnedKv {
    /// Construct from borrowed slices.
    pub fn new(key: &[u8], value: &[u8]) -> Self {
        OwnedKv {
            key: key.to_vec(),
            value: value.to_vec(),
        }
    }

    /// Borrow both sides as the slice pair the operator APIs consume.
    pub fn as_pair(&self) -> (&[u8], &[u8]) {
        (&self.key, &self.value)
    }

    /// Payload size in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.key.len() + self.value.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KvBuf {
        let mut b = KvBuf::new();
        b.push(1, b"banana", b"v1");
        b.push(0, b"cherry", b"v2");
        b.push(1, b"apple", b"v3");
        b.push(0, b"apple", b"v4");
        b
    }

    #[test]
    fn push_and_access_roundtrip() {
        let b = sample();
        assert_eq!(b.len(), 4);
        assert_eq!(b.key(0), b"banana");
        assert_eq!(b.value(0), b"v1");
        assert_eq!(b.partition(3), 0);
        assert_eq!(b.arena_bytes(), 6 + 2 + 6 + 2 + 5 + 2 + 5 + 2);
    }

    #[test]
    fn sort_by_partition_key_orders_compound() {
        let mut b = sample();
        let fp = b.unordered_fingerprint();
        b.sort_by_partition_key();
        let got: Vec<(u32, &[u8])> = (0..b.len()).map(|i| (b.partition(i), b.key(i))).collect();
        assert_eq!(
            got,
            vec![
                (0, b"apple".as_slice()),
                (0, b"cherry".as_slice()),
                (1, b"apple".as_slice()),
                (1, b"banana".as_slice()),
            ]
        );
        assert_eq!(b.unordered_fingerprint(), fp, "sort must preserve content");
    }

    #[test]
    fn group_by_partition_clusters_without_key_order() {
        let mut b = sample();
        let fp = b.unordered_fingerprint();
        b.group_by_partition(2);
        assert!(b.partition(0) == 0 && b.partition(1) == 0);
        assert!(b.partition(2) == 1 && b.partition(3) == 1);
        // Stability: original relative order within partitions preserved.
        assert_eq!(b.key(0), b"cherry");
        assert_eq!(b.key(1), b"apple");
        assert_eq!(b.key(2), b"banana");
        assert_eq!(b.unordered_fingerprint(), fp);
    }

    #[test]
    fn partition_ranges_cover_all_entries() {
        let mut b = sample();
        b.sort_by_partition_key();
        let ranges = b.partition_ranges(2);
        assert_eq!(ranges, vec![0..2, 2..4]);
        // Partitions with no records get empty ranges.
        let mut c = KvBuf::new();
        c.push(2, b"k", b"v");
        c.group_by_partition(4);
        let r = c.partition_ranges(4);
        assert_eq!(r, vec![0..0, 0..0, 0..1, 1..1]);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut b = sample();
        let cap = b.arena.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.arena.capacity(), cap);
    }

    #[test]
    fn empty_buffer_edge_cases() {
        let mut b = KvBuf::new();
        assert!(b.is_empty());
        b.sort_by_partition_key();
        b.group_by_partition(4);
        assert_eq!(b.partition_ranges(2), vec![0..0, 0..0]);
        assert_eq!(b.unordered_fingerprint(), 0);
    }

    #[test]
    fn freeze_into_segments_shares_one_arena() {
        let mut b = sample();
        let fp: u64 = {
            let mut acc = 0u64;
            for i in 0..b.len() {
                // Segment fingerprints must add up to the buffer's.
                acc = acc.wrapping_add(
                    SegmentBuf::from_pairs([(b.key(i), b.value(i))])
                        .unordered_fingerprint(b.partition(i)),
                );
            }
            acc
        };
        assert_eq!(fp, b.unordered_fingerprint());
        let segs = b.freeze_into_segments(2);
        assert!(b.is_empty(), "freeze drains the buffer");
        assert_eq!(segs.len(), 2);
        // Arrival order preserved within each partition.
        assert_eq!(segs[0].key(0), b"cherry");
        assert_eq!(segs[0].key(1), b"apple");
        assert_eq!(segs[0].value(1), b"v4");
        assert_eq!(segs[1].key(0), b"banana");
        assert_eq!(segs[1].key(1), b"apple");
        let total: u64 = segs
            .iter()
            .enumerate()
            .map(|(p, s)| s.unordered_fingerprint(p as u32))
            .fold(0u64, |a, x| a.wrapping_add(x));
        assert_eq!(total, fp, "freeze must preserve content");
    }

    #[test]
    fn freeze_after_sort_yields_key_sorted_segments() {
        let mut b = sample();
        b.sort_by_partition_key();
        let segs = b.freeze_into_segments(2);
        for seg in &segs {
            let keys: Vec<&[u8]> = (0..seg.len()).map(|i| seg.key(i)).collect();
            let mut sorted = keys.clone();
            sorted.sort();
            assert_eq!(keys, sorted);
        }
        assert_eq!(segs[0].payload_bytes(), 5 + 2 + 6 + 2);
    }

    #[test]
    fn segment_clone_is_shallow_and_sorted_by_key_shares_arena() {
        let seg = SegmentBuf::from_pairs([
            (b"b".as_slice(), b"2".as_slice()),
            (b"a".as_slice(), b"1".as_slice()),
            (b"c".as_slice(), b"3".as_slice()),
        ]);
        let clone = seg.clone();
        assert!(Arc::ptr_eq(&seg.arena, &clone.arena));
        assert!(Arc::ptr_eq(&seg.entries, &clone.entries));
        let sorted = seg.sorted_by_key();
        assert!(Arc::ptr_eq(&seg.arena, &sorted.arena), "arena is shared");
        let keys: Vec<&[u8]> = (0..sorted.len()).map(|i| sorted.key(i)).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"b", b"c"]);
        // The original is untouched.
        assert_eq!(seg.key(0), b"b");
        assert_eq!(
            sorted.unordered_fingerprint(0),
            seg.unordered_fingerprint(0)
        );
    }

    #[test]
    fn from_framed_points_into_run_bytes() {
        // Two frames in the spill wire format.
        let mut data = Vec::new();
        for (k, v) in [(b"ka".as_slice(), b"v1".as_slice()), (b"key2", b"")] {
            data.extend_from_slice(&(k.len() as u32).to_le_bytes());
            data.extend_from_slice(&(v.len() as u32).to_le_bytes());
            data.extend_from_slice(k);
            data.extend_from_slice(v);
        }
        let seg = SegmentBuf::from_framed(Arc::new(data), 0).unwrap();
        assert_eq!(seg.len(), 2);
        assert_eq!(seg.get(0), (b"ka".as_slice(), b"v1".as_slice()));
        assert_eq!(seg.get(1), (b"key2".as_slice(), b"".as_slice()));
        assert_eq!(seg.payload_bytes(), 2 + 2 + 4);

        // Truncation surfaces as Corrupt.
        let bad = vec![3u8, 0, 0];
        assert!(SegmentBuf::from_framed(Arc::new(bad), 0).is_err());
        let mut truncated = vec![4u8, 0, 0, 0, 1, 0, 0, 0];
        truncated.extend_from_slice(b"ke"); // promises 5 payload bytes, has 2
        assert!(SegmentBuf::from_framed(Arc::new(truncated), 0).is_err());
    }

    #[test]
    fn owned_kv_roundtrips_through_segments() {
        let seg = SegmentBuf::from_pairs([(b"k".as_slice(), b"v".as_slice())]);
        let kv = seg.owned(0);
        assert_eq!(kv.as_pair(), (b"k".as_slice(), b"v".as_slice()));
        assert_eq!(kv.payload_bytes(), 2);
        let back: SegmentBuf = vec![kv].into_iter().collect();
        assert_eq!(back.get(0), seg.get(0));
    }

    #[test]
    fn builder_matches_pairs_constructor() {
        let mut b = SegmentBufBuilder::with_capacity(16, 2);
        assert!(b.is_empty());
        b.push(b"x", b"1");
        b.push(b"", b"");
        assert_eq!(b.len(), 2);
        assert_eq!(b.payload_bytes(), 2);
        let seg = b.finish();
        let other = SegmentBuf::from_pairs([(b"x".as_slice(), b"1".as_slice()), (b"", b"")]);
        assert_eq!(seg.unordered_fingerprint(3), other.unordered_fingerprint(3));
        let empty = SegmentBuf::default();
        assert!(empty.is_empty());
        assert_eq!(empty.unordered_fingerprint(0), 0);
    }

    #[test]
    fn zero_length_keys_and_values_are_legal() {
        let mut b = KvBuf::new();
        b.push(0, b"", b"v");
        b.push(0, b"k", b"");
        b.push(0, b"", b"");
        assert_eq!(b.key(0), b"");
        assert_eq!(b.value(1), b"");
        assert_eq!(b.key(2), b"");
        assert_eq!(b.value(2), b"");
        b.sort_by_key();
        assert_eq!(b.len(), 3);
    }
}
