//! Minimal JSON building and parsing.
//!
//! The trace layer emits Chrome trace-event JSON and JSONL job reports,
//! and the test suite needs to parse what it emits to validate structure.
//! The workspace builds with no external dependencies (serde is not
//! available offline), so this module provides the small slice of JSON
//! actually needed: a [`Json`] value tree, a strict recursive-descent
//! parser, string escaping, and number formatting. Object key order is
//! preserved, which keeps emitted documents deterministic and diffable.

use crate::error::{Error, Result};
use std::fmt;

/// A parsed JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(corrupt(format!(
                "trailing characters at byte {} of JSON document",
                p.pos
            )));
        }
        Ok(v)
    }

    /// Member lookup on objects (`None` for other variants or missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    /// Render compact JSON (no added whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => f.write_str(&fmt_f64(*n)),
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escape a string for inclusion between JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number: integral values print without a
/// fractional part, non-finite values (illegal in JSON) print as `null`.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn corrupt(msg: String) -> Error {
    Error::Corrupt(msg)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(corrupt(format!(
                "expected '{}' at byte {} of JSON document",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(corrupt(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(corrupt(format!(
                "unexpected character at byte {} of JSON document",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(corrupt(format!("unterminated array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => {
                    return Err(corrupt(format!("unterminated object at byte {}", self.pos)));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| corrupt("invalid UTF-8 in JSON string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| corrupt("truncated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| corrupt("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| corrupt("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| corrupt("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(corrupt(format!("bad escape at byte {}", self.pos))),
                    }
                }
                _ => return Err(corrupt("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| corrupt(format!("bad number '{text}' at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structure() {
        let doc = r#"{"a": [1, {"b": "x"}, null], "c": true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_bool), Some(true));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(arr[2], Json::Null);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn display_roundtrips() {
        let doc = r#"{"name":"a\"b","xs":[1,2.5,-3],"flag":false,"none":null}"#;
        let v = Json::parse(doc).unwrap();
        let printed = v.to_string();
        assert_eq!(Json::parse(&printed).unwrap(), v);
        assert_eq!(printed, doc);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(-2.5), "-2.5");
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn escape_covers_control_chars() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
