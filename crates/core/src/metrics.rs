//! Phase-attributed timing, counters and time series.
//!
//! The paper's methodology rests on attributing CPU time to *phases* of a
//! MapReduce job (map function vs sort in Table II; map / shuffle / merge /
//! reduce in the timelines) and on per-second resource samples (CPU
//! utilization, iowait, bytes read — Fig. 2–4). This module provides the
//! measurement vocabulary used across the workspace:
//!
//! * [`Phase`] — the canonical phase names.
//! * [`Profile`] — per-phase durations plus named counters, mergeable
//!   across tasks/threads.
//! * [`ScopedTimer`] — RAII accumulation into a profile.
//! * [`Series`] — an `(x, y)` time series with CSV emission, used by both
//!   the simulator samplers and the experiment drivers.
//!
//! On CPU attribution: engine phases are timed with monotonic wall clocks
//! around *compute-only* sections (sorting, hashing, user functions). In
//! those sections the thread is runnable and on-CPU, so wall time is a
//! faithful proxy for CPU seconds, matching the paper's `ps`-based
//! profiling granularity.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Canonical counter names for the memory-governor gauges, shared by the
/// engine profile counters, the JSONL report fields, and the trace
/// instants so dashboards key off one vocabulary.
pub mod gauges {
    /// A lease-limit raise granted by the governor (slack or reclaim).
    pub const MEM_REBALANCE: &str = "mem_rebalance";
    /// A shed request honoured by an operator (`GroupBy::shed`).
    pub const MEM_SHED: &str = "mem_shed";
    /// Bytes actually freed by honoured shed requests.
    pub const MEM_SHED_BYTES: &str = "mem_shed_bytes";
    /// Map-side shuffle pushes stalled by high-water backpressure.
    pub const BACKPRESSURE_STALLS: &str = "backpressure_stalls";
}

/// Canonical phases of a MapReduce job, following the paper's timeline
/// plots (Fig. 2a: map, shuffle, merge, reduce) and Table II's map-phase
/// split (map function vs sorting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Reading/parsing input splits.
    Read,
    /// The user map function.
    MapFn,
    /// Map-side sort of the output buffer on (partition, key).
    MapSort,
    /// Map-side hash partition/group (the hash path's replacement for sort).
    MapHash,
    /// The combine function (map side or reduce side).
    Combine,
    /// Writing map output for fault tolerance.
    MapWrite,
    /// Transferring map output to reducers.
    Shuffle,
    /// Reduce-side multi-pass merge (sort-merge path) or bucket
    /// spill/reload (hash paths).
    Merge,
    /// Reduce-side grouping/state update work outside the user function.
    ReduceGroup,
    /// The user reduce function.
    ReduceFn,
    /// Writing final output.
    FinalWrite,
}

impl Phase {
    /// Short label for table output.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Read => "read",
            Phase::MapFn => "map_fn",
            Phase::MapSort => "map_sort",
            Phase::MapHash => "map_hash",
            Phase::Combine => "combine",
            Phase::MapWrite => "map_write",
            Phase::Shuffle => "shuffle",
            Phase::Merge => "merge",
            Phase::ReduceGroup => "reduce_group",
            Phase::ReduceFn => "reduce_fn",
            Phase::FinalWrite => "final_write",
        }
    }

    /// All phases in canonical order.
    pub fn all() -> &'static [Phase] {
        &[
            Phase::Read,
            Phase::MapFn,
            Phase::MapSort,
            Phase::MapHash,
            Phase::Combine,
            Phase::MapWrite,
            Phase::Shuffle,
            Phase::Merge,
            Phase::ReduceGroup,
            Phase::ReduceFn,
            Phase::FinalWrite,
        ]
    }
}

/// Per-phase durations plus named counters for one task (or, after
/// merging, a whole job).
#[derive(Debug, Default, Clone)]
pub struct Profile {
    phases: BTreeMap<Phase, Duration>,
    counters: BTreeMap<Cow<'static, str>, u64>,
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `d` to `phase`'s accumulated time.
    pub fn add_time(&mut self, phase: Phase, d: Duration) {
        *self.phases.entry(phase).or_default() += d;
    }

    /// Accumulated time for `phase`.
    pub fn time(&self, phase: Phase) -> Duration {
        self.phases.get(&phase).copied().unwrap_or_default()
    }

    /// Sum of all phase times.
    pub fn total_time(&self) -> Duration {
        self.phases.values().copied().sum()
    }

    /// Increment counter `name` by `n`. Engine call sites pass string
    /// literals (no allocation); deserialized profiles carry owned names.
    pub fn add_count(&mut self, name: impl Into<Cow<'static, str>>, n: u64) {
        *self.counters.entry(name.into()).or_default() += n;
    }

    /// Current value of counter `name` (0 if never incremented).
    pub fn count(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Fold another profile into this one.
    pub fn merge(&mut self, other: &Profile) {
        for (p, d) in &other.phases {
            *self.phases.entry(*p).or_default() += *d;
        }
        for (name, n) in &other.counters {
            *self.counters.entry(name.clone()).or_default() += *n;
        }
    }

    /// Iterate phases with non-zero time, canonical order.
    pub fn phases(&self) -> impl Iterator<Item = (Phase, Duration)> + '_ {
        self.phases.iter().map(|(p, d)| (*p, *d))
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(n, v)| (n.as_ref(), *v))
    }

    /// Fraction of `total` taken by `phase` (0.0 when total is zero).
    pub fn fraction(&self, phase: Phase, total: Duration) -> f64 {
        if total.is_zero() {
            0.0
        } else {
            self.time(phase).as_secs_f64() / total.as_secs_f64()
        }
    }

    /// Render as a JSON object: `{"phases":{label:secs,...},
    /// "counters":{name:value,...}}`. Phase times are emitted in seconds
    /// with all entries in canonical (label / name) order, so output is
    /// deterministic. Inverse of [`Profile::from_json`].
    pub fn to_json(&self) -> String {
        use crate::json::{escape, fmt_f64};
        let mut s = String::from("{\"phases\":{");
        for (i, (p, d)) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{}\":{}",
                escape(p.label()),
                fmt_f64(d.as_secs_f64())
            ));
        }
        s.push_str("},\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{v}", escape(name)));
        }
        s.push_str("}}");
        s
    }

    /// Parse a profile from the [`Profile::to_json`] format. Unknown
    /// phase labels are rejected (phase attribution is a closed enum);
    /// counter names are preserved verbatim, known to this binary or
    /// not, so profiles written by a newer, more-instrumented build
    /// survive a round-trip instead of being rejected.
    pub fn from_json(text: &str) -> crate::Result<Profile> {
        use crate::json::Json;
        let doc = Json::parse(text)?;
        let bad = |what: &str| crate::Error::Corrupt(format!("profile JSON: {what}"));
        let mut profile = Profile::new();
        for (label, v) in doc
            .get("phases")
            .and_then(Json::as_obj)
            .ok_or_else(|| bad("missing phases object"))?
        {
            let phase = Phase::all()
                .iter()
                .copied()
                .find(|p| p.label() == label)
                .ok_or_else(|| bad(&format!("unknown phase '{label}'")))?;
            let secs = v.as_f64().ok_or_else(|| bad("phase time not a number"))?;
            profile.add_time(phase, Duration::from_secs_f64(secs));
        }
        for (name, v) in doc
            .get("counters")
            .and_then(Json::as_obj)
            .ok_or_else(|| bad("missing counters object"))?
        {
            let n = v.as_f64().ok_or_else(|| bad("counter not a number"))?;
            profile.add_count(name.clone(), n as u64);
        }
        Ok(profile)
    }

    /// Start a scoped timer that accumulates into `phase` on drop.
    pub fn timed(&mut self, phase: Phase) -> ScopedTimer<'_> {
        ScopedTimer {
            profile: self,
            phase,
            start: Instant::now(),
        }
    }
}

/// RAII timer: adds the elapsed time to its phase when dropped.
#[derive(Debug)]
pub struct ScopedTimer<'a> {
    profile: &'a mut Profile,
    phase: Phase,
    start: Instant,
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        let d = self.start.elapsed();
        self.profile.add_time(self.phase, d);
    }
}

/// A named `(x, y)` series — simulator samples or sweep results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    /// Series name, used as the CSV header for the y column.
    pub name: String,
    /// The data points, in insertion order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create an empty series called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest y value (None when empty).
    pub fn max_y(&self) -> Option<f64> {
        self.points.iter().map(|&(_, y)| y).fold(None, |m, y| {
            Some(match m {
                None => y,
                Some(m) => m.max(y),
            })
        })
    }

    /// Mean of y values (None when empty).
    pub fn mean_y(&self) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.points.iter().map(|&(_, y)| y).sum::<f64>() / self.points.len() as f64)
        }
    }

    /// Mean of y over points whose x lies in `[x0, x1)`.
    pub fn mean_y_in(&self, x0: f64, x1: f64) -> Option<f64> {
        let ys: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(x, _)| x >= x0 && x < x1)
            .map(|&(_, y)| y)
            .collect();
        if ys.is_empty() {
            None
        } else {
            Some(ys.iter().sum::<f64>() / ys.len() as f64)
        }
    }

    /// Render as a JSON object `{"name":...,"points":[[x,y],...]}`.
    /// Inverse of [`Series::from_json`].
    pub fn to_json(&self) -> String {
        use crate::json::{escape, fmt_f64};
        let mut s = format!("{{\"name\":\"{}\",\"points\":[", escape(&self.name));
        for (i, (x, y)) in self.points.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("[{},{}]", fmt_f64(*x), fmt_f64(*y)));
        }
        s.push_str("]}");
        s
    }

    /// Parse a series from the [`Series::to_json`] format.
    pub fn from_json(text: &str) -> crate::Result<Series> {
        use crate::json::Json;
        let doc = Json::parse(text)?;
        let bad = |what: &str| crate::Error::Corrupt(format!("series JSON: {what}"));
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing name"))?;
        let mut series = Series::new(name);
        for point in doc
            .get("points")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing points array"))?
        {
            match point.as_arr() {
                Some([x, y]) => series.push(
                    x.as_f64().ok_or_else(|| bad("x not a number"))?,
                    y.as_f64().ok_or_else(|| bad("y not a number"))?,
                ),
                _ => return Err(bad("point is not an [x,y] pair")),
            }
        }
        Ok(series)
    }

    /// Render as two-column CSV with header `x,<name>`.
    pub fn to_csv(&self) -> String {
        let mut s = format!("x,{}\n", self.name);
        for (x, y) in &self.points {
            s.push_str(&format!("{x},{y}\n"));
        }
        s
    }
}

/// Render several series sharing the same x-grid as one CSV table. Series
/// need not be aligned; missing cells are left empty.
pub fn series_to_csv(series: &[Series]) -> String {
    use std::collections::BTreeSet;
    let mut xs: BTreeSet<u64> = BTreeSet::new();
    for s in series {
        for (x, _) in &s.points {
            xs.insert(x.to_bits());
        }
    }
    let mut out = String::from("x");
    for s in series {
        out.push(',');
        out.push_str(&s.name);
    }
    out.push('\n');
    for xb in xs {
        let x = f64::from_bits(xb);
        out.push_str(&format!("{x}"));
        for s in series {
            out.push(',');
            if let Some(&(_, y)) = s.points.iter().find(|&&(px, _)| px.to_bits() == xb) {
                out.push_str(&format!("{y}"));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_accumulates_and_merges() {
        let mut a = Profile::new();
        a.add_time(Phase::MapFn, Duration::from_millis(100));
        a.add_time(Phase::MapFn, Duration::from_millis(50));
        a.add_count("records", 10);

        let mut b = Profile::new();
        b.add_time(Phase::MapSort, Duration::from_millis(75));
        b.add_count("records", 5);
        b.add_count("spills", 1);

        a.merge(&b);
        assert_eq!(a.time(Phase::MapFn), Duration::from_millis(150));
        assert_eq!(a.time(Phase::MapSort), Duration::from_millis(75));
        assert_eq!(a.total_time(), Duration::from_millis(225));
        assert_eq!(a.count("records"), 15);
        assert_eq!(a.count("spills"), 1);
        assert_eq!(a.count("missing"), 0);
    }

    #[test]
    fn scoped_timer_records_elapsed() {
        let mut p = Profile::new();
        {
            let _t = p.timed(Phase::MapSort);
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(p.time(Phase::MapSort) >= Duration::from_millis(4));
    }

    #[test]
    fn fraction_handles_zero_total() {
        let p = Profile::new();
        assert_eq!(p.fraction(Phase::MapFn, Duration::ZERO), 0.0);
        let mut q = Profile::new();
        q.add_time(Phase::MapFn, Duration::from_secs(1));
        let f = q.fraction(Phase::MapFn, Duration::from_secs(4));
        assert!((f - 0.25).abs() < 1e-9);
    }

    #[test]
    fn series_statistics() {
        let mut s = Series::new("cpu");
        assert!(s.is_empty());
        assert_eq!(s.max_y(), None);
        s.push(0.0, 10.0);
        s.push(1.0, 30.0);
        s.push(2.0, 20.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_y(), Some(30.0));
        assert_eq!(s.mean_y(), Some(20.0));
        assert_eq!(s.mean_y_in(1.0, 3.0), Some(25.0));
        assert_eq!(s.mean_y_in(5.0, 6.0), None);
    }

    #[test]
    fn csv_rendering() {
        let mut s = Series::new("v");
        s.push(0.0, 1.5);
        s.push(1.0, 2.5);
        assert_eq!(s.to_csv(), "x,v\n0,1.5\n1,2.5\n");

        let mut t = Series::new("w");
        t.push(1.0, 9.0);
        let csv = series_to_csv(&[s, t]);
        assert!(csv.starts_with("x,v,w\n"));
        assert!(csv.contains("0,1.5,\n"));
        assert!(csv.contains("1,2.5,9\n"));
    }

    #[test]
    fn profile_json_roundtrip() {
        let mut p = Profile::new();
        p.add_time(Phase::MapFn, Duration::from_millis(1500));
        p.add_time(Phase::Merge, Duration::from_micros(250));
        p.add_count("records", 12345);
        p.add_count("spills", 3);

        let json = p.to_json();
        let back = Profile::from_json(&json).unwrap();
        assert_eq!(back.count("records"), 12345);
        assert_eq!(back.count("spills"), 3);
        // Times round-trip through f64 seconds; re-serialization must be
        // exact even if Duration nanos differ by float rounding.
        assert_eq!(back.to_json(), json);
        assert!((back.time(Phase::MapFn).as_secs_f64() - 1.5).abs() < 1e-12);

        let empty = Profile::new();
        assert_eq!(
            Profile::from_json(&empty.to_json()).unwrap().to_json(),
            empty.to_json()
        );
    }

    #[test]
    fn profile_json_rejects_unknown_phases_keeps_unknown_counters() {
        assert!(Profile::from_json("{}").is_err());
        assert!(Profile::from_json("{\"phases\":{\"warp_drive\":1},\"counters\":{}}").is_err());
        // Unknown counters are preserved, not rejected: profiles written
        // by a newer, more-instrumented binary must survive a round-trip.
        let p = Profile::from_json("{\"phases\":{},\"counters\":{\"from_the_future\":7}}").unwrap();
        assert_eq!(p.count("from_the_future"), 7);
        assert_eq!(
            Profile::from_json(&p.to_json())
                .unwrap()
                .count("from_the_future"),
            7
        );
    }

    #[test]
    fn series_json_roundtrip() {
        let mut s = Series::new("cpu \"busy\"");
        s.push(0.0, 10.5);
        s.push(1.0, -3.25);
        s.push(2.5, 0.0);
        let back = Series::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);

        let empty = Series::new("e");
        assert_eq!(Series::from_json(&empty.to_json()).unwrap(), empty);
        assert!(Series::from_json("{\"name\":\"x\",\"points\":[[1]]}").is_err());
        assert!(Series::from_json("{\"points\":[]}").is_err());
    }

    #[test]
    fn phase_labels_are_unique() {
        let mut labels: Vec<&str> = Phase::all().iter().map(|p| p.label()).collect();
        let n = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), n);
    }
}
