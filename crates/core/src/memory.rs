//! Budgeted memory accounting.
//!
//! MapReduce operators must detect "buffer full" deterministically: Hadoop's
//! map side spills when `io.sort.mb` is exhausted, and the reduce side
//! spills / switches to multi-pass merge when its buffer fills. The paper's
//! hash techniques likewise change behaviour at the memory boundary (hybrid
//! hash spills buckets; frequent-hash evicts cold keys). [`MemoryBudget`]
//! provides that boundary as an explicit, testable object instead of
//! relying on the allocator.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::{Error, Result};

/// A shared, thread-safe byte budget.
///
/// Cloning shares the underlying budget (like `Arc`). Operators `grant`
/// before growing a buffer and `release` when a buffer is drained/spilled.
///
/// ```
/// use onepass_core::memory::MemoryBudget;
///
/// let budget = MemoryBudget::new(1024);
/// assert!(budget.try_grant(1000));
/// assert!(!budget.try_grant(100));   // over the limit: caller should spill
/// budget.release(1000);
/// assert_eq!(budget.used(), 0);
/// assert_eq!(budget.high_water(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    limit: usize,
    used: AtomicUsize,
    high_water: AtomicUsize,
}

impl MemoryBudget {
    /// Create a budget of `limit` bytes.
    pub fn new(limit: usize) -> Self {
        MemoryBudget {
            inner: Arc::new(Inner {
                limit,
                used: AtomicUsize::new(0),
                high_water: AtomicUsize::new(0),
            }),
        }
    }

    /// An effectively unlimited budget (for tests / unconstrained runs).
    pub fn unlimited() -> Self {
        Self::new(usize::MAX / 2)
    }

    /// The configured limit in bytes.
    pub fn limit(&self) -> usize {
        self.inner.limit
    }

    /// Bytes currently granted.
    pub fn used(&self) -> usize {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.inner.limit.saturating_sub(self.used())
    }

    /// Highest `used` value ever observed.
    pub fn high_water(&self) -> usize {
        self.inner.high_water.load(Ordering::Relaxed)
    }

    /// Try to reserve `bytes`; returns `false` (without reserving) if the
    /// budget cannot cover it.
    pub fn try_grant(&self, bytes: usize) -> bool {
        let mut cur = self.inner.used.load(Ordering::Relaxed);
        loop {
            let Some(new) = cur.checked_add(bytes) else {
                return false;
            };
            if new > self.inner.limit {
                return false;
            }
            match self.inner.used.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.high_water.fetch_max(new, Ordering::Relaxed);
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Reserve `bytes` or return [`Error::MemoryExceeded`].
    pub fn grant(&self, bytes: usize) -> Result<()> {
        if self.try_grant(bytes) {
            Ok(())
        } else {
            Err(Error::MemoryExceeded {
                requested: bytes,
                available: self.available(),
            })
        }
    }

    /// Return `bytes` to the budget. Releasing more than was granted is a
    /// bug in the caller; in debug builds it panics, in release it
    /// saturates to zero.
    pub fn release(&self, bytes: usize) {
        let prev = self.inner.used.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(
            prev >= bytes,
            "released {bytes} B but only {prev} B were granted"
        );
        if prev < bytes {
            self.inner.used.store(0, Ordering::Relaxed);
        }
    }

    /// Would a grant of `bytes` succeed right now?
    pub fn would_fit(&self, bytes: usize) -> bool {
        bytes <= self.available()
    }

    /// Reserve `bytes` unconditionally, allowing `used` to overshoot the
    /// limit. For in-place growth of existing state that cannot fail
    /// mid-operation; the overshoot makes subsequent `try_grant` calls
    /// fail, prompting callers to spill. The soft-limit behaviour of real
    /// memory managers.
    pub fn force_grant(&self, bytes: usize) {
        let new = self.inner.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.high_water.fetch_max(new, Ordering::Relaxed);
    }

    /// Is usage currently above the configured limit (after force grants)?
    pub fn over_limit(&self) -> bool {
        self.used() > self.inner.limit
    }
}

/// RAII reservation: releases its bytes on drop. Useful for scoped buffers.
#[derive(Debug)]
pub struct Reservation {
    budget: MemoryBudget,
    bytes: usize,
}

impl Reservation {
    /// Reserve `bytes` from `budget`, failing if unavailable.
    pub fn take(budget: &MemoryBudget, bytes: usize) -> Result<Self> {
        budget.grant(bytes)?;
        Ok(Reservation {
            budget: budget.clone(),
            bytes,
        })
    }

    /// Grow this reservation by `extra` bytes.
    pub fn grow(&mut self, extra: usize) -> Result<()> {
        self.budget.grant(extra)?;
        self.bytes += extra;
        Ok(())
    }

    /// Resize the reservation to exactly `new_bytes` (grow or shrink).
    pub fn resize(&mut self, new_bytes: usize) -> Result<()> {
        if new_bytes > self.bytes {
            self.grow(new_bytes - self.bytes)
        } else {
            self.budget.release(self.bytes - new_bytes);
            self.bytes = new_bytes;
            Ok(())
        }
    }

    /// Bytes currently held by this reservation.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.budget.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_and_release_track_usage() {
        let b = MemoryBudget::new(100);
        assert!(b.try_grant(60));
        assert_eq!(b.used(), 60);
        assert_eq!(b.available(), 40);
        assert!(!b.try_grant(50));
        assert!(b.try_grant(40));
        assert_eq!(b.available(), 0);
        b.release(100);
        assert_eq!(b.used(), 0);
        assert_eq!(b.high_water(), 100);
    }

    #[test]
    fn grant_error_reports_availability() {
        let b = MemoryBudget::new(10);
        b.grant(4).unwrap();
        match b.grant(20) {
            Err(Error::MemoryExceeded {
                requested,
                available,
            }) => {
                assert_eq!(requested, 20);
                assert_eq!(available, 6);
            }
            other => panic!("expected MemoryExceeded, got {other:?}"),
        }
    }

    #[test]
    fn reservation_releases_on_drop() {
        let b = MemoryBudget::new(100);
        {
            let mut r = Reservation::take(&b, 30).unwrap();
            r.grow(20).unwrap();
            assert_eq!(b.used(), 50);
            r.resize(10).unwrap();
            assert_eq!(b.used(), 10);
            assert_eq!(r.bytes(), 10);
        }
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn budget_is_shared_across_clones() {
        let a = MemoryBudget::new(100);
        let b = a.clone();
        assert!(a.try_grant(70));
        assert!(!b.try_grant(40));
        b.release(70);
        assert_eq!(a.used(), 0);
    }

    #[test]
    fn force_grant_overshoots_and_blocks_try_grant() {
        let b = MemoryBudget::new(10);
        b.grant(8).unwrap();
        b.force_grant(5);
        assert_eq!(b.used(), 13);
        assert!(b.over_limit());
        assert!(!b.try_grant(1));
        b.release(13);
        assert!(!b.over_limit());
        assert_eq!(b.high_water(), 13);
    }

    #[test]
    fn concurrent_grants_never_exceed_limit() {
        let b = MemoryBudget::new(1000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        if b.try_grant(7) {
                            b.release(7);
                        }
                    }
                });
            }
        });
        assert_eq!(b.used(), 0);
        assert!(b.high_water() <= 1000);
    }
}
