//! Budgeted memory accounting.
//!
//! MapReduce operators must detect "buffer full" deterministically: Hadoop's
//! map side spills when `io.sort.mb` is exhausted, and the reduce side
//! spills / switches to multi-pass merge when its buffer fills. The paper's
//! hash techniques likewise change behaviour at the memory boundary (hybrid
//! hash spills buckets; frequent-hash evicts cold keys). [`MemoryBudget`]
//! provides that boundary as an explicit, testable object instead of
//! relying on the allocator.
//!
//! Budgets can be **hierarchical**: a child created with
//! [`MemoryBudget::with_parent`] charges every grant against its parent as
//! well, so a job-wide pool observes the sum of its children. The
//! [`crate::governor`] module leases such children to concurrent tasks and
//! rebalances their limits at runtime; a leased budget additionally carries
//! an escalation link so an operator that exhausts its lease can ask for
//! more *before* falling back to spilling
//! ([`MemoryBudget::try_grant_or_request`]).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use crate::error::{Error, Result};

/// Escalation target for leased budgets: implemented by the memory
/// governor. Kept crate-private; external code interacts through
/// [`crate::governor::MemoryGovernor`].
pub(crate) trait Escalator: Send + Sync {
    /// A lease has run out of budget and wants `bytes` more. Returns
    /// `true` if the lease's limit was raised (the caller should retry its
    /// grant), `false` if the caller should spill instead.
    fn request_more(&self, lease_id: usize, bytes: usize) -> bool;
}

/// A shared, thread-safe byte budget.
///
/// Cloning shares the underlying budget (like `Arc`). Operators `grant`
/// before growing a buffer and `release` when a buffer is drained/spilled.
///
/// ```
/// use onepass_core::memory::MemoryBudget;
///
/// let budget = MemoryBudget::new(1024);
/// assert!(budget.try_grant(1000));
/// assert!(!budget.try_grant(100));   // over the limit: caller should spill
/// budget.release(1000);
/// assert_eq!(budget.used(), 0);
/// assert_eq!(budget.high_water(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    inner: Arc<Inner>,
}

struct Inner {
    /// Atomic so a governor can rebalance the limit while operators run.
    limit: AtomicUsize,
    used: AtomicUsize,
    high_water: AtomicUsize,
    /// Pool this budget charges in addition to itself (None = root).
    parent: Option<MemoryBudget>,
    /// Bytes the governor has asked this budget's operator to shed.
    shed_requested: AtomicUsize,
    /// Policy hint published by the operator: bytes its largest shedable
    /// unit (e.g. a hybrid-hash resident bucket) would free at once.
    shed_unit_hint: AtomicUsize,
    /// Policy hint published by the operator: heat of its coldest
    /// resident key (`u64::MAX` = unknown / no cold data).
    heat_hint: AtomicU64,
    /// Escalation link + lease id, set when created by a governor.
    escalator: Option<(Weak<dyn Escalator>, usize)>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("limit", &self.limit.load(Ordering::Relaxed))
            .field("used", &self.used.load(Ordering::Relaxed))
            .field("leased", &self.escalator.is_some())
            .finish()
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        // A lease abandoned mid-flight (task panic, retry teardown) must
        // not leak its charge into the pool forever.
        if let Some(parent) = &self.parent {
            let leaked = self.used.load(Ordering::Relaxed);
            if leaked > 0 {
                parent.release(leaked);
            }
        }
    }
}

impl MemoryBudget {
    /// Create a root budget of `limit` bytes.
    pub fn new(limit: usize) -> Self {
        Self::build(limit, None, None)
    }

    /// Create a child budget of `limit` bytes whose grants are also
    /// charged against `parent`. Releasing (and dropping the last clone
    /// of) the child returns its bytes to the parent.
    pub fn with_parent(parent: &MemoryBudget, limit: usize) -> Self {
        Self::build(limit, Some(parent.clone()), None)
    }

    /// Create a governor lease: a child of `parent` that escalates to
    /// `escalator` when it runs dry.
    pub(crate) fn leased(
        parent: &MemoryBudget,
        limit: usize,
        escalator: Weak<dyn Escalator>,
        lease_id: usize,
    ) -> Self {
        Self::build(limit, Some(parent.clone()), Some((escalator, lease_id)))
    }

    fn build(
        limit: usize,
        parent: Option<MemoryBudget>,
        escalator: Option<(Weak<dyn Escalator>, usize)>,
    ) -> Self {
        MemoryBudget {
            inner: Arc::new(Inner {
                limit: AtomicUsize::new(limit),
                used: AtomicUsize::new(0),
                high_water: AtomicUsize::new(0),
                parent,
                shed_requested: AtomicUsize::new(0),
                shed_unit_hint: AtomicUsize::new(0),
                heat_hint: AtomicU64::new(u64::MAX),
                escalator,
            }),
        }
    }

    /// An effectively unlimited budget (for tests / unconstrained runs).
    pub fn unlimited() -> Self {
        Self::new(usize::MAX / 2)
    }

    /// The current limit in bytes (a governor may change it at runtime).
    pub fn limit(&self) -> usize {
        self.inner.limit.load(Ordering::Relaxed)
    }

    /// Replace the limit. Used by the governor to rebalance leases; a new
    /// limit below `used` simply makes the next `try_grant` fail, pushing
    /// the operator onto its spill path.
    pub fn set_limit(&self, limit: usize) {
        self.inner.limit.store(limit, Ordering::Relaxed);
    }

    /// Bytes currently granted.
    pub fn used(&self) -> usize {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.limit().saturating_sub(self.used())
    }

    /// Highest `used` value ever observed.
    pub fn high_water(&self) -> usize {
        self.inner.high_water.load(Ordering::Relaxed)
    }

    /// True when this budget was leased from a [`crate::governor`]
    /// governor (it has an escalation link).
    pub fn is_leased(&self) -> bool {
        self.inner.escalator.is_some()
    }

    /// Try to reserve `bytes`; returns `false` (without reserving) if this
    /// budget — or any ancestor pool — cannot cover it.
    pub fn try_grant(&self, bytes: usize) -> bool {
        let mut cur = self.inner.used.load(Ordering::Relaxed);
        let new = loop {
            let Some(new) = cur.checked_add(bytes) else {
                return false;
            };
            if new > self.limit() {
                return false;
            }
            match self.inner.used.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break new,
                Err(actual) => cur = actual,
            }
        };
        if let Some(parent) = &self.inner.parent {
            if !parent.try_grant(bytes) {
                self.release_local(bytes);
                return false;
            }
        }
        self.inner.high_water.fetch_max(new, Ordering::Relaxed);
        true
    }

    /// Like [`MemoryBudget::try_grant`], but a leased budget that fails
    /// locally first asks its governor for a bigger lease and retries.
    /// The governor grants from pool slack or idle sibling headroom; under
    /// global pressure it instead posts a shed request on a victim lease
    /// and this returns `false` (the caller spills, as it would have).
    pub fn try_grant_or_request(&self, bytes: usize) -> bool {
        if self.try_grant(bytes) {
            return true;
        }
        if let Some((esc, id)) = &self.inner.escalator {
            if let Some(esc) = esc.upgrade() {
                if esc.request_more(*id, bytes) {
                    return self.try_grant(bytes);
                }
            }
        }
        false
    }

    /// Reserve `bytes` or return [`Error::MemoryExceeded`].
    pub fn grant(&self, bytes: usize) -> Result<()> {
        if self.try_grant(bytes) {
            Ok(())
        } else {
            Err(Error::MemoryExceeded {
                requested: bytes,
                available: self.available(),
            })
        }
    }

    /// Decrement `used` by at most `bytes`, saturating at zero; returns
    /// the bytes actually freed.
    fn release_local(&self, bytes: usize) -> usize {
        let mut cur = self.inner.used.load(Ordering::Relaxed);
        loop {
            let dec = cur.min(bytes);
            if dec == 0 {
                return 0;
            }
            match self.inner.used.compare_exchange_weak(
                cur,
                cur - dec,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return dec,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Return `bytes` to the budget (and to ancestor pools). Saturates at
    /// zero: an operator that double-releases after a governor-requested
    /// shed (both the shed path and its normal teardown accounting may
    /// cover the same buffer) must not underflow the pool, so only the
    /// bytes actually held are freed and propagated upward.
    pub fn release(&self, bytes: usize) {
        let freed = self.release_local(bytes);
        if freed > 0 {
            if let Some(parent) = &self.inner.parent {
                parent.release(freed);
            }
        }
    }

    /// Would a grant of `bytes` succeed right now?
    pub fn would_fit(&self, bytes: usize) -> bool {
        bytes <= self.available()
    }

    /// Reserve `bytes` unconditionally, allowing `used` to overshoot the
    /// limit. For in-place growth of existing state that cannot fail
    /// mid-operation; the overshoot makes subsequent `try_grant` calls
    /// fail, prompting callers to spill. The soft-limit behaviour of real
    /// memory managers.
    pub fn force_grant(&self, bytes: usize) {
        let new = self.inner.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.high_water.fetch_max(new, Ordering::Relaxed);
        if let Some(parent) = &self.inner.parent {
            parent.force_grant(bytes);
        }
    }

    /// Is usage currently above the configured limit (after force grants)?
    pub fn over_limit(&self) -> bool {
        self.used() > self.limit()
    }

    /// Ask this budget's operator to shed at least `bytes` at its next
    /// opportunity. Requests coalesce to the maximum outstanding ask.
    pub fn request_shed(&self, bytes: usize) {
        self.inner
            .shed_requested
            .fetch_max(bytes, Ordering::Relaxed);
    }

    /// Outstanding shed request in bytes (0 = none).
    pub fn shed_requested(&self) -> usize {
        self.inner.shed_requested.load(Ordering::Relaxed)
    }

    /// Consume the outstanding shed request, returning its size.
    pub fn take_shed_request(&self) -> usize {
        self.inner.shed_requested.swap(0, Ordering::Relaxed)
    }

    /// Publish how many bytes this budget's operator could free in one
    /// shed unit (e.g. its resident hybrid-hash bucket). Read by the
    /// `LargestBucket` spill policy.
    pub fn publish_shed_unit(&self, bytes: usize) {
        self.inner.shed_unit_hint.store(bytes, Ordering::Relaxed);
    }

    /// Last published shed-unit size (0 = nothing published).
    pub fn shed_unit_hint(&self) -> usize {
        self.inner.shed_unit_hint.load(Ordering::Relaxed)
    }

    /// Publish the heat (frequent-items count) of the operator's coldest
    /// resident key. Read by the `ColdestKeys` spill policy; budgets that
    /// never publish report `u64::MAX` (treated as hot / unknown).
    pub fn publish_heat(&self, heat: u64) {
        self.inner.heat_hint.store(heat, Ordering::Relaxed);
    }

    /// Last published coldest-key heat (`u64::MAX` = unknown).
    pub fn heat_hint(&self) -> u64 {
        self.inner.heat_hint.load(Ordering::Relaxed)
    }

    /// A non-owning handle for governor bookkeeping.
    pub(crate) fn downgrade(&self) -> WeakBudget {
        WeakBudget(Arc::downgrade(&self.inner))
    }
}

/// Weak handle to a budget: lets the governor track leases without keeping
/// dead attempts alive.
pub(crate) struct WeakBudget(Weak<Inner>);

impl WeakBudget {
    /// Upgrade to a usable budget if any clone is still alive.
    pub(crate) fn upgrade(&self) -> Option<MemoryBudget> {
        self.0.upgrade().map(|inner| MemoryBudget { inner })
    }
}

/// RAII reservation: releases its bytes on drop. Useful for scoped buffers.
#[derive(Debug)]
pub struct Reservation {
    budget: MemoryBudget,
    bytes: usize,
}

impl Reservation {
    /// Reserve `bytes` from `budget`, failing if unavailable.
    pub fn take(budget: &MemoryBudget, bytes: usize) -> Result<Self> {
        budget.grant(bytes)?;
        Ok(Reservation {
            budget: budget.clone(),
            bytes,
        })
    }

    /// Grow this reservation by `extra` bytes.
    pub fn grow(&mut self, extra: usize) -> Result<()> {
        self.budget.grant(extra)?;
        self.bytes += extra;
        Ok(())
    }

    /// Resize the reservation to exactly `new_bytes` (grow or shrink).
    pub fn resize(&mut self, new_bytes: usize) -> Result<()> {
        if new_bytes > self.bytes {
            self.grow(new_bytes - self.bytes)
        } else {
            self.budget.release(self.bytes - new_bytes);
            self.bytes = new_bytes;
            Ok(())
        }
    }

    /// Bytes currently held by this reservation.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.budget.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_and_release_track_usage() {
        let b = MemoryBudget::new(100);
        assert!(b.try_grant(60));
        assert_eq!(b.used(), 60);
        assert_eq!(b.available(), 40);
        assert!(!b.try_grant(50));
        assert!(b.try_grant(40));
        assert_eq!(b.available(), 0);
        b.release(100);
        assert_eq!(b.used(), 0);
        assert_eq!(b.high_water(), 100);
    }

    #[test]
    fn grant_error_reports_availability() {
        let b = MemoryBudget::new(10);
        b.grant(4).unwrap();
        match b.grant(20) {
            Err(Error::MemoryExceeded {
                requested,
                available,
            }) => {
                assert_eq!(requested, 20);
                assert_eq!(available, 6);
            }
            other => panic!("expected MemoryExceeded, got {other:?}"),
        }
    }

    #[test]
    fn reservation_releases_on_drop() {
        let b = MemoryBudget::new(100);
        {
            let mut r = Reservation::take(&b, 30).unwrap();
            r.grow(20).unwrap();
            assert_eq!(b.used(), 50);
            r.resize(10).unwrap();
            assert_eq!(b.used(), 10);
            assert_eq!(r.bytes(), 10);
        }
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn budget_is_shared_across_clones() {
        let a = MemoryBudget::new(100);
        let b = a.clone();
        assert!(a.try_grant(70));
        assert!(!b.try_grant(40));
        b.release(70);
        assert_eq!(a.used(), 0);
    }

    #[test]
    fn force_grant_overshoots_and_blocks_try_grant() {
        let b = MemoryBudget::new(10);
        b.grant(8).unwrap();
        b.force_grant(5);
        assert_eq!(b.used(), 13);
        assert!(b.over_limit());
        assert!(!b.try_grant(1));
        b.release(13);
        assert!(!b.over_limit());
        assert_eq!(b.high_water(), 13);
    }

    #[test]
    fn release_saturates_on_double_release() {
        // Regression: an operator that sheds a buffer on governor request
        // and then also releases it during teardown must not underflow.
        let b = MemoryBudget::new(100);
        b.grant(40).unwrap();
        b.release(40);
        b.release(40); // double release: saturates, no panic / wraparound
        assert_eq!(b.used(), 0);
        assert!(b.try_grant(100), "budget must stay usable after saturation");
        b.release(100);

        // Partial over-release: only the held bytes come back.
        let pool = MemoryBudget::new(100);
        let child = MemoryBudget::with_parent(&pool, 100);
        child.grant(30).unwrap();
        child.release(50);
        assert_eq!(child.used(), 0);
        assert_eq!(pool.used(), 0, "pool must see exactly 30 freed, not 50");
    }

    #[test]
    fn child_grants_charge_parent() {
        let pool = MemoryBudget::new(100);
        let a = MemoryBudget::with_parent(&pool, 80);
        let b = MemoryBudget::with_parent(&pool, 80);
        assert!(a.try_grant(60));
        assert_eq!(pool.used(), 60);
        // b is within its own limit, but the pool can't cover it.
        assert!(!b.try_grant(60));
        assert_eq!(b.used(), 0, "failed grant must roll back the child");
        assert!(b.try_grant(40));
        assert_eq!(pool.used(), 100);
        a.release(60);
        assert_eq!(pool.used(), 40);
        b.release(40);
        assert_eq!(pool.used(), 0);
        assert!(pool.high_water() <= 100);
    }

    #[test]
    fn raising_child_limit_allows_more() {
        let pool = MemoryBudget::new(100);
        let child = MemoryBudget::with_parent(&pool, 10);
        assert!(!child.try_grant(20));
        child.set_limit(50);
        assert!(child.try_grant(20));
        assert_eq!(child.limit(), 50);
        assert_eq!(pool.used(), 20);
        child.release(20);
    }

    #[test]
    fn dropping_child_refunds_parent() {
        let pool = MemoryBudget::new(100);
        {
            let child = MemoryBudget::with_parent(&pool, 100);
            child.grant(70).unwrap();
            assert_eq!(pool.used(), 70);
            // child dropped without releasing — simulates an abandoned
            // attempt after a panic.
        }
        assert_eq!(pool.used(), 0, "dead lease must refund the pool");
    }

    #[test]
    fn shed_requests_coalesce_to_max() {
        let b = MemoryBudget::new(100);
        assert_eq!(b.take_shed_request(), 0);
        b.request_shed(10);
        b.request_shed(30);
        b.request_shed(20);
        assert_eq!(b.shed_requested(), 30);
        assert_eq!(b.take_shed_request(), 30);
        assert_eq!(b.take_shed_request(), 0);
    }

    #[test]
    fn concurrent_grants_never_exceed_limit() {
        let b = MemoryBudget::new(1000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        if b.try_grant(7) {
                            b.release(7);
                        }
                    }
                });
            }
        });
        assert_eq!(b.used(), 0);
        assert!(b.high_water() <= 1000);
    }
}
