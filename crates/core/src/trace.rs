//! Structured trace events: task spans, phase sub-spans, instants and
//! counters, exportable as Chrome trace-event JSON.
//!
//! The paper's argument is built on *seeing* where a MapReduce job spends
//! its time — per-phase CPU attribution (Table II) and task timelines
//! (Fig. 2a/3). A [`Tracer`] is the process-wide collection point: cheap
//! to clone, disabled by default, and when disabled the only cost at a
//! probe site is one relaxed atomic load (checked once per task when a
//! [`LocalTracer`] is created, after which every probe is a plain branch
//! on a cached bool). Each worker thread records into its own
//! [`LocalTracer`] buffer with zero synchronization; buffers flush into
//! the shared tracer when dropped, and [`Tracer::drain`] merges them into
//! a single time-ordered stream at job end.
//!
//! Events carry a [`Track`] — a `(group, id)` pair such as
//! `("map", 3)` — which becomes the process/thread lane structure in
//! [`chrome_trace_json`], so a real engine run and a simulated run (which
//! records with explicit `*_at` timestamps in sim time) render
//! identically in Perfetto / `chrome://tracing`.

use crate::error::{Error, Result};
use crate::json::{escape, fmt_f64};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opens (Chrome `ph:"B"`).
    Begin,
    /// The innermost open span on the same track closes (Chrome `ph:"E"`).
    End,
    /// A point event (Chrome `ph:"i"`).
    Instant,
    /// A sampled counter value (Chrome `ph:"C"`).
    Counter,
}

/// The lane an event belongs to: a task group (`"map"`, `"reduce"`,
/// `"driver"`, …) plus an id within the group (task number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Track {
    /// Lane group; becomes the Chrome trace *process* name.
    pub group: &'static str,
    /// Lane id within the group; becomes the Chrome trace *thread* id.
    pub id: u64,
}

impl Track {
    /// Build a track.
    pub fn new(group: &'static str, id: u64) -> Self {
        Track { group, id }
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Begin/end/instant/counter.
    pub kind: EventKind,
    /// Event name (span name, instant name, or counter name).
    pub name: &'static str,
    /// Category — by convention a [`crate::metrics::Phase`] label or an
    /// operator family like `"spill"`.
    pub cat: &'static str,
    /// The lane this event belongs to.
    pub track: Track,
    /// Time since the tracer's epoch (or explicit sim time).
    pub ts: Duration,
    /// Numeric payload (byte counts, record counts, …).
    pub args: Vec<(&'static str, f64)>,
}

#[derive(Debug)]
struct Inner {
    enabled: AtomicBool,
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

/// Shared handle to a trace collection; clone freely across threads.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    /// A disabled tracer (probe sites cost one branch).
    fn default() -> Self {
        Tracer::new(false)
    }
}

impl Tracer {
    /// Build a tracer; its epoch (t=0 for relative timestamps) is now.
    pub fn new(enabled: bool) -> Self {
        Tracer {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(enabled),
                epoch: Instant::now(),
                events: Mutex::new(Vec::new()),
            }),
        }
    }

    /// An enabled tracer.
    pub fn enabled() -> Self {
        Tracer::new(true)
    }

    /// A disabled tracer — recording is a no-op.
    pub fn disabled() -> Self {
        Tracer::new(false)
    }

    /// Whether events are being recorded (single relaxed atomic load).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Time elapsed since the tracer's epoch.
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.inner.epoch.elapsed()
    }

    /// Open a per-thread recording buffer for `track`. The enabled flag
    /// is sampled here, once, so per-event probes are branch-on-bool.
    pub fn local(&self, track: Track) -> LocalTracer {
        LocalTracer {
            tracer: self.clone(),
            track,
            enabled: self.is_enabled(),
            buf: Vec::new(),
        }
    }

    /// Merge all flushed buffers into one stream, stably ordered by
    /// timestamp (events at equal times keep their per-thread order).
    /// Leaves the tracer empty.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut events = std::mem::take(&mut *self.inner.events.lock().unwrap());
        events.sort_by_key(|e| e.ts);
        events
    }

    fn absorb(&self, buf: &mut Vec<TraceEvent>) {
        if buf.is_empty() {
            return;
        }
        self.inner.events.lock().unwrap().append(buf);
    }
}

/// A per-thread (or per-task) event buffer. Recording never takes a
/// lock; the buffer flushes into the shared [`Tracer`] on drop or
/// [`LocalTracer::flush`].
#[derive(Debug)]
pub struct LocalTracer {
    tracer: Tracer,
    track: Track,
    enabled: bool,
    buf: Vec<TraceEvent>,
}

impl LocalTracer {
    /// A local tracer that records nothing — for callers holding an
    /// instrumented object outside any traced job.
    pub fn disabled() -> Self {
        Tracer::disabled().local(Track::new("off", 0))
    }

    /// Whether this buffer is recording.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The track events from this buffer land on.
    pub fn track(&self) -> Track {
        self.track
    }

    /// Time since the owning tracer's epoch.
    #[inline]
    pub fn now(&self) -> Duration {
        self.tracer.elapsed()
    }

    #[inline]
    fn push(&mut self, kind: EventKind, name: &'static str, cat: &'static str, ts: Duration) {
        self.buf.push(TraceEvent {
            kind,
            name,
            cat,
            track: self.track,
            ts,
            args: Vec::new(),
        });
    }

    /// Open a span now.
    #[inline]
    pub fn begin(&mut self, name: &'static str, cat: &'static str) {
        if self.enabled {
            self.begin_at(name, cat, self.now());
        }
    }

    /// Open a span at an explicit timestamp (sim time).
    #[inline]
    pub fn begin_at(&mut self, name: &'static str, cat: &'static str, ts: Duration) {
        if self.enabled {
            self.push(EventKind::Begin, name, cat, ts);
        }
    }

    /// Close the innermost open span on this track now.
    #[inline]
    pub fn end(&mut self, name: &'static str, cat: &'static str) {
        if self.enabled {
            self.end_at(name, cat, self.now());
        }
    }

    /// Close the innermost open span at an explicit timestamp (sim time).
    #[inline]
    pub fn end_at(&mut self, name: &'static str, cat: &'static str, ts: Duration) {
        if self.enabled {
            self.push(EventKind::End, name, cat, ts);
        }
    }

    /// Record a point event now, with numeric args (byte counts etc).
    #[inline]
    pub fn instant(&mut self, name: &'static str, cat: &'static str, args: &[(&'static str, f64)]) {
        if self.enabled {
            self.instant_at(name, cat, self.now(), args);
        }
    }

    /// Record a point event at an explicit timestamp (sim time).
    #[inline]
    pub fn instant_at(
        &mut self,
        name: &'static str,
        cat: &'static str,
        ts: Duration,
        args: &[(&'static str, f64)],
    ) {
        if self.enabled {
            self.push(EventKind::Instant, name, cat, ts);
            self.buf.last_mut().expect("just pushed").args = args.to_vec();
        }
    }

    /// Record a counter sample now.
    #[inline]
    pub fn counter(&mut self, name: &'static str, value: f64) {
        if self.enabled {
            self.counter_at(name, self.now(), value);
        }
    }

    /// Record a counter sample at an explicit timestamp (sim time).
    #[inline]
    pub fn counter_at(&mut self, name: &'static str, ts: Duration, value: f64) {
        if self.enabled {
            self.push(EventKind::Counter, name, "counter", ts);
            self.buf.last_mut().expect("just pushed").args = vec![(name, value)];
        }
    }

    /// Run `f` inside a `name` span.
    #[inline]
    pub fn in_span<R>(
        &mut self,
        name: &'static str,
        cat: &'static str,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        self.begin(name, cat);
        let out = f(self);
        self.end(name, cat);
        out
    }

    /// A second buffer on the same tracer and track, for handing to a
    /// helper object (e.g. a group-by operator owned by a task) without
    /// giving up this one. Both flush into the same shared stream.
    pub fn fork(&self) -> Self {
        LocalTracer {
            tracer: self.tracer.clone(),
            track: self.track,
            enabled: self.enabled,
            buf: Vec::new(),
        }
    }

    /// Push buffered events into the shared tracer now (also happens on
    /// drop).
    pub fn flush(&mut self) {
        self.tracer.absorb(&mut self.buf);
    }
}

impl Drop for LocalTracer {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A begin/end pair recovered from an event stream.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedSpan {
    /// Span name (from the begin event).
    pub name: &'static str,
    /// Span category (from the begin event).
    pub cat: &'static str,
    /// The track the span ran on.
    pub track: Track,
    /// Begin timestamp.
    pub start: Duration,
    /// End timestamp.
    pub end: Duration,
}

impl CompletedSpan {
    /// Span duration.
    pub fn duration(&self) -> Duration {
        self.end.saturating_sub(self.start)
    }
}

/// Pair begin/end events into completed spans. Pairing is per-track and
/// stack-based (Chrome `B`/`E` semantics): an end event closes the most
/// recent open begin on the same track. Errors on an end without an open
/// begin or on begins left open at stream end.
pub fn complete_spans(events: &[TraceEvent]) -> Result<Vec<CompletedSpan>> {
    use std::collections::HashMap;
    let mut open: HashMap<Track, Vec<&TraceEvent>> = HashMap::new();
    let mut spans = Vec::new();
    for e in events {
        match e.kind {
            EventKind::Begin => open.entry(e.track).or_default().push(e),
            EventKind::End => {
                let b = open.get_mut(&e.track).and_then(Vec::pop).ok_or_else(|| {
                    Error::InvalidState(format!(
                        "end event '{}' on track {}/{} without an open begin",
                        e.name, e.track.group, e.track.id
                    ))
                })?;
                spans.push(CompletedSpan {
                    name: b.name,
                    cat: b.cat,
                    track: b.track,
                    start: b.ts,
                    end: e.ts,
                });
            }
            EventKind::Instant | EventKind::Counter => {}
        }
    }
    if let Some((track, stack)) = open.iter().find(|(_, s)| !s.is_empty()) {
        return Err(Error::InvalidState(format!(
            "{} span(s) left open on track {}/{} (first: '{}')",
            stack.len(),
            track.group,
            track.id,
            stack[0].name
        )));
    }
    spans.sort_by_key(|s| (s.start, s.end));
    Ok(spans)
}

fn micros(ts: Duration) -> String {
    // Chrome trace timestamps are microseconds; keep sub-µs precision.
    fmt_f64(ts.as_nanos() as f64 / 1e3)
}

fn args_json(args: &[(&'static str, f64)]) -> String {
    let mut s = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\":{}", escape(k), fmt_f64(*v)));
    }
    s.push('}');
    s
}

/// Render an event stream as Chrome trace-event JSON (the object form,
/// loadable in Perfetto and `chrome://tracing`). Track groups become
/// processes and track ids become threads, with metadata records naming
/// each lane; process sort order follows first appearance in `events`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut pids: Vec<&'static str> = Vec::new();
    let mut tracks: Vec<Track> = Vec::new();
    for e in events {
        if !pids.contains(&e.track.group) {
            pids.push(e.track.group);
        }
        if !tracks.contains(&e.track) {
            tracks.push(e.track);
        }
    }
    let pid_of = |group: &'static str| pids.iter().position(|&g| g == group).unwrap() + 1;

    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut emit = |line: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };

    for (i, group) in pids.iter().enumerate() {
        emit(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                i + 1,
                escape(group)
            ),
            &mut first,
        );
        emit(
            format!(
                "{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"sort_index\":{}}}}}",
                i + 1,
                i
            ),
            &mut first,
        );
    }
    for t in &tracks {
        emit(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{} {}\"}}}}",
                pid_of(t.group),
                t.id,
                escape(t.group),
                t.id
            ),
            &mut first,
        );
    }

    for e in events {
        let (ph, extra) = match e.kind {
            EventKind::Begin => ("B", String::new()),
            EventKind::End => ("E", String::new()),
            EventKind::Instant => ("i", ",\"s\":\"t\"".to_string()),
            EventKind::Counter => ("C", String::new()),
        };
        let args = if e.args.is_empty() && e.kind != EventKind::Counter {
            String::new()
        } else {
            format!(",\"args\":{}", args_json(&e.args))
        };
        emit(
            format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}{}{}}}",
                escape(e.name),
                escape(e.cat),
                ph,
                micros(e.ts),
                pid_of(e.track.group),
                e.track.id,
                extra,
                args
            ),
            &mut first,
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        let mut local = tracer.local(Track::new("map", 0));
        local.begin("task", "map");
        local.instant("spill", "io", &[("bytes", 100.0)]);
        local.counter("mem", 5.0);
        local.end("task", "map");
        drop(local);
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn nested_spans_pair_innermost_first() {
        let tracer = Tracer::enabled();
        let mut local = tracer.local(Track::new("map", 1));
        local.begin_at("outer", "task", Duration::from_micros(10));
        local.begin_at("inner", "phase", Duration::from_micros(20));
        local.end_at("inner", "phase", Duration::from_micros(30));
        local.end_at("outer", "task", Duration::from_micros(50));
        drop(local);
        let spans = complete_spans(&tracer.drain()).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].duration(), Duration::from_micros(40));
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].duration(), Duration::from_micros(10));
    }

    #[test]
    fn interleaved_tracks_pair_independently() {
        let tracer = Tracer::enabled();
        let mut a = tracer.local(Track::new("map", 0));
        let mut b = tracer.local(Track::new("reduce", 0));
        a.begin_at("map_task", "task", Duration::from_micros(0));
        b.begin_at("reduce_task", "task", Duration::from_micros(5));
        a.end_at("map_task", "task", Duration::from_micros(10));
        b.end_at("reduce_task", "task", Duration::from_micros(20));
        drop(a);
        drop(b);
        let spans = complete_spans(&tracer.drain()).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].track, Track::new("map", 0));
        assert_eq!(spans[1].track, Track::new("reduce", 0));
    }

    #[test]
    fn unbalanced_streams_are_rejected() {
        let tracer = Tracer::enabled();
        let mut local = tracer.local(Track::new("map", 0));
        local.begin_at("task", "t", Duration::ZERO);
        local.flush();
        assert!(complete_spans(&tracer.drain()).is_err());

        let mut local = tracer.local(Track::new("map", 0));
        local.end_at("task", "t", Duration::ZERO);
        local.flush();
        assert!(complete_spans(&tracer.drain()).is_err());
    }

    #[test]
    fn end_on_wrong_track_cannot_close_another_tracks_begin() {
        // A begin on map/0 followed by an end on map/1 must NOT pair:
        // pairing is strictly per-track, so this stream has both an
        // end-without-begin (map/1) and a dangling begin (map/0).
        let tracer = Tracer::enabled();
        let mut a = tracer.local(Track::new("map", 0));
        let mut b = tracer.local(Track::new("map", 1));
        a.begin_at("task", "t", Duration::from_micros(1));
        b.end_at("task", "t", Duration::from_micros(2));
        drop(a);
        drop(b);
        let err = complete_spans(&tracer.drain()).unwrap_err().to_string();
        assert!(err.contains("without an open begin"), "got: {err}");
    }

    #[test]
    fn deeply_unbalanced_stream_reports_open_count() {
        let tracer = Tracer::enabled();
        let mut local = tracer.local(Track::new("reduce", 3));
        for i in 0..5 {
            local.begin_at("nested", "t", Duration::from_micros(i));
        }
        // Close only two of the five.
        local.end_at("nested", "t", Duration::from_micros(10));
        local.end_at("nested", "t", Duration::from_micros(11));
        drop(local);
        let err = complete_spans(&tracer.drain()).unwrap_err().to_string();
        assert!(err.contains("3 span(s) left open"), "got: {err}");
        assert!(err.contains("reduce/3"), "got: {err}");
    }

    #[test]
    fn zero_duration_and_inverted_spans_never_underflow() {
        // Build the stream by hand: `drain` time-orders events, so a
        // clock-skewed end-before-begin pair can only reach
        // `complete_spans` from an externally assembled stream (e.g. a
        // loaded trace file).
        let ev = |kind: EventKind, name: &'static str, us: u64| TraceEvent {
            kind,
            name,
            cat: "t",
            track: Track::new("map", 0),
            ts: Duration::from_micros(us),
            args: Vec::new(),
        };
        let events = vec![
            // Zero-duration: begin and end share a timestamp.
            ev(EventKind::Begin, "instantaneous", 5),
            ev(EventKind::End, "instantaneous", 5),
            // Inverted: a clock-skewed end earlier than its begin.
            ev(EventKind::Begin, "skewed", 9),
            ev(EventKind::End, "skewed", 4),
        ];
        let spans = complete_spans(&events).unwrap();
        assert_eq!(spans.len(), 2);
        let zero = spans.iter().find(|s| s.name == "instantaneous").unwrap();
        assert_eq!(zero.duration(), Duration::ZERO);
        let skewed = spans.iter().find(|s| s.name == "skewed").unwrap();
        assert_eq!(skewed.duration(), Duration::ZERO, "saturates, not panics");
    }

    #[test]
    fn interleaved_same_name_spans_pair_per_track_stacks() {
        // Two tracks run identically-named nested spans, interleaved in
        // one stream; every span must close against its own track's
        // innermost open begin.
        let tracer = Tracer::enabled();
        let mut a = tracer.local(Track::new("map", 0));
        let mut b = tracer.local(Track::new("map", 1));
        a.begin_at("task", "t", Duration::from_micros(0));
        b.begin_at("task", "t", Duration::from_micros(1));
        a.begin_at("task", "t", Duration::from_micros(2));
        b.end_at("task", "t", Duration::from_micros(3));
        a.end_at("task", "t", Duration::from_micros(4));
        a.end_at("task", "t", Duration::from_micros(6));
        drop(a);
        drop(b);
        let spans = complete_spans(&tracer.drain()).unwrap();
        assert_eq!(spans.len(), 3);
        // Sorted by (start, end): outer-a spans [0,6], b spans [1,3],
        // inner-a spans [2,4].
        assert_eq!(spans[0].track, Track::new("map", 0));
        assert_eq!(spans[0].end, Duration::from_micros(6));
        assert_eq!(spans[1].track, Track::new("map", 1));
        assert_eq!(spans[1].end, Duration::from_micros(3));
        assert_eq!(spans[2].track, Track::new("map", 0));
        assert_eq!(spans[2].start, Duration::from_micros(2));
        assert_eq!(spans[2].end, Duration::from_micros(4));
    }

    #[test]
    fn instants_and_counters_do_not_disturb_pairing() {
        let tracer = Tracer::enabled();
        let mut local = tracer.local(Track::new("map", 0));
        local.begin_at("task", "t", Duration::from_micros(0));
        local.instant_at("spill", "io", Duration::from_micros(1), &[]);
        local.counter_at("mem", Duration::from_micros(2), 42.0);
        local.end_at("task", "t", Duration::from_micros(3));
        drop(local);
        let spans = complete_spans(&tracer.drain()).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "task");
    }

    #[test]
    fn drain_merges_thread_buffers_in_time_order() {
        let tracer = Tracer::enabled();
        std::thread::scope(|s| {
            for id in 0..4u64 {
                let mut local = tracer.local(Track::new("map", id));
                s.spawn(move || {
                    for k in 0..10 {
                        local.instant_at(
                            "tick",
                            "t",
                            Duration::from_micros(id + 4 * k),
                            &[("k", k as f64)],
                        );
                    }
                });
            }
        });
        let events = tracer.drain();
        assert_eq!(events.len(), 40);
        for pair in events.windows(2) {
            assert!(pair[0].ts <= pair[1].ts, "drain must be time-ordered");
        }
        // A second drain is empty: buffers were consumed.
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn equal_timestamps_keep_buffer_order() {
        let tracer = Tracer::enabled();
        let mut local = tracer.local(Track::new("map", 0));
        let ts = Duration::from_micros(7);
        local.begin_at("zero_len", "t", ts);
        local.end_at("zero_len", "t", ts);
        drop(local);
        let events = tracer.drain();
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!(events[1].kind, EventKind::End);
    }

    #[test]
    fn chrome_json_is_valid_and_structured() {
        let tracer = Tracer::enabled();
        let mut local = tracer.local(Track::new("map", 2));
        local.begin_at("map_task", "task", Duration::from_micros(1));
        local.instant_at(
            "spill",
            "io",
            Duration::from_micros(2),
            &[("bytes", 4096.0)],
        );
        local.counter_at("mem", Duration::from_micros(3), 17.0);
        local.end_at("map_task", "task", Duration::from_micros(9));
        drop(local);

        let text = chrome_trace_json(&tracer.drain());
        let doc = Json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").and_then(Json::as_str).unwrap())
            .collect();
        // 2 metadata (process) + 1 metadata (thread) + B + i + C + E.
        assert_eq!(phases, ["M", "M", "M", "B", "i", "C", "E"]);
        let begin = &events[3];
        assert_eq!(begin.get("name").and_then(Json::as_str), Some("map_task"));
        assert_eq!(begin.get("ts").and_then(Json::as_f64), Some(1.0));
        let inst = &events[4];
        assert_eq!(
            inst.get("args")
                .and_then(|a| a.get("bytes"))
                .and_then(Json::as_f64),
            Some(4096.0)
        );
        let proc_meta = &events[0];
        assert_eq!(
            proc_meta
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("map")
        );
    }

    #[test]
    fn real_time_spans_measure_elapsed() {
        let tracer = Tracer::enabled();
        let mut local = tracer.local(Track::new("w", 0));
        local.begin("work", "t");
        std::thread::sleep(Duration::from_millis(2));
        local.end("work", "t");
        drop(local);
        let spans = complete_spans(&tracer.drain()).unwrap();
        assert!(spans[0].duration() >= Duration::from_millis(1));
    }
}
