//! Minimal aligned-text and CSV table emission for experiment drivers.
//!
//! The bench binaries must "print the same rows the paper reports"; this
//! keeps that presentable without pulling a serialization crate.

/// A simple table: a header row plus data rows of equal arity.
#[derive(Debug, Default, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of `&str` cells.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned monospace table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{c:<w$}", w = *w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (RFC-4180-style quoting for cells containing commas
    /// or quotes).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_alignment() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row_str(&["sessionization", "76"]);
        t.row_str(&["pf", "40"]);
        let s = t.to_text();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("name"));
        assert!(lines[3].starts_with("sessionization  76"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("", &["a", "b"]);
        t.row_str(&["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("", &["a", "b"]);
        t.row_str(&["only-one"]);
    }

    #[test]
    fn empty_table_renders() {
        let t = Table::new("t", &["c"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.to_text().contains('c'));
        assert_eq!(t.to_csv(), "c\n");
    }
}
