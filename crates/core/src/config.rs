//! Shared configuration vocabulary.
//!
//! Centralizes the knobs that appear throughout the paper: HDFS block size
//! (64 MB default), merge factor `F` (`io.sort.factor`), map output buffer
//! size (`io.sort.mb`), and reducer memory.

/// Bytes in one kibibyte.
pub const KIB: u64 = 1024;
/// Bytes in one mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// Bytes in one gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// Default HDFS block size used by the paper's cluster (§II-A).
pub const DEFAULT_BLOCK_SIZE: u64 = 64 * MIB;

/// Default multi-pass merge factor `F` (Hadoop's `io.sort.factor` default
/// is 10; §II-A describes merging whenever on-disk file count reaches F).
pub const DEFAULT_MERGE_FACTOR: usize = 10;

/// Format a byte count with a binary-unit suffix (e.g. `1.5 GiB`).
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if bytes >= GIB {
        format!("{:.2} GiB", b / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.2} MiB", b / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.2} KiB", b / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

/// Format a duration given in seconds as `Xm Ys` / `Y.Zs`.
pub fn fmt_secs(secs: f64) -> String {
    if secs >= 60.0 {
        let m = (secs / 60.0).floor() as u64;
        let s = secs - m as f64 * 60.0;
        format!("{m}m {s:.0}s")
    } else {
        format!("{secs:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2 * KIB), "2.00 KiB");
        assert_eq!(fmt_bytes(64 * MIB), "64.00 MiB");
        assert_eq!(fmt_bytes(256 * GIB), "256.00 GiB");
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_secs(12.34), "12.3s");
        assert_eq!(fmt_secs(76.0 * 60.0), "76m 0s");
        assert_eq!(fmt_secs(61.0), "1m 1s");
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(DEFAULT_BLOCK_SIZE, 67_108_864);
        assert_eq!(GIB / MIB, 1024);
    }
}
