//! Property tests for the core substrates: KvBuf ordering invariants,
//! spill-run roundtrips over arbitrary byte records, and budget safety.

use onepass_core::bytes_kv::KvBuf;
use onepass_core::io::{read_all, SharedMemStore, SpillStore};
use onepass_core::memory::MemoryBudget;
use proptest::prelude::*;

type Rec = (u8, Vec<u8>, Vec<u8>); // (partition, key, value)

fn recs() -> impl Strategy<Value = Vec<Rec>> {
    prop::collection::vec(
        (
            0u8..8,
            prop::collection::vec(any::<u8>(), 0..20),
            prop::collection::vec(any::<u8>(), 0..30),
        ),
        0..200,
    )
}

fn fill(records: &[Rec]) -> KvBuf {
    let mut buf = KvBuf::new();
    for (p, k, v) in records {
        buf.push(*p as u32, k, v);
    }
    buf
}

proptest! {
    #[test]
    fn sort_by_partition_key_is_ordered_and_content_preserving(records in recs()) {
        let mut buf = fill(&records);
        let fp = buf.unordered_fingerprint();
        buf.sort_by_partition_key();
        prop_assert_eq!(buf.unordered_fingerprint(), fp);
        for i in 1..buf.len() {
            let a = (buf.partition(i - 1), buf.key(i - 1));
            let b = (buf.partition(i), buf.key(i));
            prop_assert!(a <= b, "entries out of order at {i}");
        }
        // Ranges exactly tile the buffer and respect partitions.
        let ranges = buf.partition_ranges(8);
        let mut covered = 0;
        for (p, range) in ranges.iter().enumerate() {
            for i in range.clone() {
                prop_assert_eq!(buf.partition(i) as usize, p);
                covered += 1;
            }
        }
        prop_assert_eq!(covered, buf.len());
    }

    #[test]
    fn group_by_partition_is_stable_and_content_preserving(records in recs()) {
        let mut buf = fill(&records);
        let fp = buf.unordered_fingerprint();
        buf.group_by_partition(8);
        prop_assert_eq!(buf.unordered_fingerprint(), fp);
        // Clustered by partition.
        for i in 1..buf.len() {
            prop_assert!(buf.partition(i - 1) <= buf.partition(i));
        }
        // Stable: within a partition, original relative order holds.
        let expected: Vec<(&Vec<u8>, &Vec<u8>)> = {
            let mut per: Vec<Vec<(&Vec<u8>, &Vec<u8>)>> = vec![Vec::new(); 8];
            for (p, k, v) in &records {
                per[*p as usize].push((k, v));
            }
            per.into_iter().flatten().collect()
        };
        for (i, (k, v)) in expected.iter().enumerate() {
            prop_assert_eq!(buf.key(i), k.as_slice());
            prop_assert_eq!(buf.value(i), v.as_slice());
        }
    }

    #[test]
    fn run_roundtrip_preserves_arbitrary_bytes(records in recs()) {
        let store = SharedMemStore::new();
        let mut w = store.begin_run().unwrap();
        for (_, k, v) in &records {
            w.write_record(k, v).unwrap();
        }
        let meta = w.finish().unwrap();
        prop_assert_eq!(meta.records, records.len() as u64);
        let mut r = store.open_run(meta.id).unwrap();
        let got = read_all(r.as_mut()).unwrap();
        let expect: Vec<(Vec<u8>, Vec<u8>)> =
            records.iter().map(|(_, k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, expect);
        // Byte accounting symmetric.
        let st = store.stats();
        prop_assert_eq!(st.bytes_written, st.bytes_read);
    }

    #[test]
    fn budget_grant_release_sequences_never_go_negative(
        ops in prop::collection::vec((any::<bool>(), 1usize..100), 0..100)
    ) {
        let budget = MemoryBudget::new(1000);
        let mut held: Vec<usize> = Vec::new();
        for (grant, amount) in ops {
            if grant {
                if budget.try_grant(amount) {
                    held.push(amount);
                }
                prop_assert!(budget.used() <= 1000);
            } else if let Some(a) = held.pop() {
                budget.release(a);
            }
        }
        let total: usize = held.iter().sum();
        prop_assert_eq!(budget.used(), total);
        prop_assert!(budget.high_water() <= 1000);
    }
}
