//! Property-based tests of the classic frequent-items guarantees.

use std::collections::HashMap;

use onepass_sketch::{FrequentItems, LossyCounting, MisraGries, SpaceSaving};
use proptest::prelude::*;

fn truth(stream: &[Vec<u8>]) -> HashMap<Vec<u8>, u64> {
    let mut t: HashMap<Vec<u8>, u64> = HashMap::new();
    for k in stream {
        *t.entry(k.clone()).or_default() += 1;
    }
    t
}

/// Streams over a small key alphabet so collisions and heavy keys occur.
fn stream_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(
        // Skewed alphabet: key ids drawn from 0..40 but squared-down so
        // low ids dominate.
        (0u32..40).prop_map(|i| format!("key{}", i * i / 8).into_bytes()),
        1..600,
    )
}

proptest! {
    #[test]
    fn space_saving_bounds(stream in stream_strategy(), k in 2usize..24) {
        let mut ss = SpaceSaving::new(k);
        for key in &stream {
            ss.offer(key);
        }
        let t = truth(&stream);
        let n = stream.len() as u64;
        prop_assert_eq!(ss.processed(), n);

        for h in ss.items() {
            let tc = t.get(&h.key).copied().unwrap_or(0);
            // Upper bound and error-window bound.
            prop_assert!(h.count >= tc, "SS must over-count: {} < {}", h.count, tc);
            prop_assert!(h.count - h.error <= tc, "error window must contain truth");
            // Global over-count bound: error <= N/k.
            prop_assert!(h.error <= n / k as u64 + 1);
        }
        // Completeness: every key with truth > N/k is tracked.
        for (key, &tc) in &t {
            if tc > n / k as u64 {
                prop_assert!(ss.contains(key), "heavy key untracked (tc={})", tc);
            }
        }
    }

    #[test]
    fn misra_gries_bounds(stream in stream_strategy(), k in 2usize..24) {
        let mut mg = MisraGries::new(k);
        for key in &stream {
            mg.offer(key);
        }
        let t = truth(&stream);
        let n = stream.len() as u64;
        let bound = n / (k as u64 + 1);

        for h in mg.items() {
            let tc = t.get(&h.key).copied().unwrap_or(0);
            prop_assert!(h.count <= tc, "MG must under-count");
            prop_assert!(tc - h.count <= bound, "under-count exceeds N/(k+1)");
        }
        for (key, &tc) in &t {
            if tc > bound {
                prop_assert!(mg.contains(key), "heavy key untracked (tc={tc}, bound={bound})");
            }
        }
    }

    #[test]
    fn lossy_counting_bounds(stream in stream_strategy(), eps_milli in 10u32..400) {
        let eps = eps_milli as f64 / 1000.0;
        let mut lc = LossyCounting::new(eps);
        for key in &stream {
            lc.offer(key);
        }
        let t = truth(&stream);
        let n = stream.len() as u64;
        let eps_n = (eps * n as f64).ceil() as u64;

        for h in lc.items() {
            let tc = t.get(&h.key).copied().unwrap_or(0);
            prop_assert!(h.count <= tc, "LC must under-count");
            prop_assert!(tc - h.count <= eps_n, "under-count exceeds eps*N");
        }
        for (key, &tc) in &t {
            if tc > eps_n {
                prop_assert!(lc.contains(key), "key with tc={tc} > {eps_n} untracked");
            }
        }
    }

    #[test]
    fn bulk_offers_equal_unit_offers(counts in prop::collection::vec(1u64..50, 1..20)) {
        // Feeding key_i exactly counts[i] times must match offer_n in bulk,
        // for the identity-relevant outputs (estimates of surviving keys).
        let mut unit = SpaceSaving::new(8);
        let mut bulk = SpaceSaving::new(8);
        for (i, &c) in counts.iter().enumerate() {
            let key = format!("k{i}").into_bytes();
            for _ in 0..c {
                unit.offer(&key);
            }
            bulk.offer_n(&key, c);
        }
        prop_assert_eq!(unit.processed(), bulk.processed());
        let u = unit.items();
        let b = bulk.items();
        prop_assert_eq!(u, b);
    }
}
