//! Lossy Counting (Manku & Motwani 2002).
//!
//! The stream is conceptually divided into windows of width `w = ⌈1/ε⌉`.
//! Each tracked key stores its observed count plus `Δ` = (window at first
//! insertion − 1), an upper bound on occurrences missed before tracking
//! began. At every window boundary, keys with `count + Δ ≤ current
//! window` are pruned.
//!
//! Guarantees, for a stream of length `N`:
//! * estimates under-count by at most `εN`: `true − εN ≤ est ≤ true`;
//! * every key with `true ≥ εN` is tracked;
//! * at most `(1/ε)·log(εN)` counters are live.

use std::collections::HashMap;

use crate::{sort_items, FrequentItems, HeavyHitter};

#[derive(Debug, Clone, Copy)]
struct LossyEntry {
    count: u64,
    delta: u64,
}

/// The Lossy Counting summary. See module docs for guarantees.
#[derive(Debug)]
pub struct LossyCounting {
    epsilon: f64,
    window: u64,
    counters: HashMap<Vec<u8>, LossyEntry>,
    processed: u64,
    current_window: u64,
    /// High-water mark of simultaneously live counters.
    peak_counters: usize,
}

impl LossyCounting {
    /// Create a summary with error bound `epsilon` (`0 < ε < 1`).
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        LossyCounting {
            epsilon,
            window: (1.0 / epsilon).ceil() as u64,
            counters: HashMap::new(),
            processed: 0,
            current_window: 1,
            peak_counters: 0,
        }
    }

    /// The configured error bound ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Window width `w = ⌈1/ε⌉`.
    pub fn window_width(&self) -> u64 {
        self.window
    }

    /// Most counters ever simultaneously live.
    pub fn peak_counters(&self) -> usize {
        self.peak_counters
    }

    fn prune(&mut self, finished_window: u64) {
        self.counters
            .retain(|_, e| e.count + e.delta > finished_window);
    }
}

impl FrequentItems for LossyCounting {
    fn offer_n(&mut self, key: &[u8], n: u64) {
        if n == 0 {
            return;
        }
        // Bulk window arithmetic: all n occurrences carry the Δ of the
        // window containing the first of them; we then prune once per
        // window boundary the batch crosses, using the 1-based index of
        // the window that just *finished* as the threshold.
        let boundaries_before = self.processed / self.window;
        let delta = boundaries_before; // current window index − 1
        match self.counters.get_mut(key) {
            Some(e) => e.count += n,
            None => {
                self.counters
                    .insert(key.to_vec(), LossyEntry { count: n, delta });
            }
        }
        self.peak_counters = self.peak_counters.max(self.counters.len());
        self.processed += n;
        let boundaries_after = self.processed / self.window;
        for b in boundaries_before..boundaries_after {
            self.prune(b + 1);
        }
        self.current_window = boundaries_after + 1;
    }

    fn estimate(&self, key: &[u8]) -> Option<HeavyHitter> {
        self.counters.get(key).map(|e| HeavyHitter {
            key: key.to_vec(),
            count: e.count,
            error: 0, // lower-bound estimate; under-count bounded by εN
        })
    }

    fn items(&self) -> Vec<HeavyHitter> {
        sort_items(
            self.counters
                .iter()
                .map(|(k, e)| HeavyHitter {
                    key: k.clone(),
                    count: e.count,
                    error: 0,
                })
                .collect(),
        )
    }

    fn processed(&self) -> u64 {
        self.processed
    }

    /// Lossy counting has no hard counter cap; report the theoretical
    /// bound for the observed stream length (≥ 1).
    fn capacity(&self) -> usize {
        let n = self.processed.max(self.window) as f64;
        ((1.0 / self.epsilon) * (self.epsilon * n).max(std::f64::consts::E).ln()).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_within_first_window() {
        let mut lc = LossyCounting::new(0.1); // w = 10
        lc.offer_n(b"a", 3);
        lc.offer_n(b"b", 2);
        assert_eq!(lc.estimate(b"a").unwrap().count, 3);
        assert_eq!(lc.estimate(b"b").unwrap().count, 2);
    }

    #[test]
    fn prunes_singletons_at_window_boundaries() {
        let mut lc = LossyCounting::new(0.25); // w = 4
        lc.offer(b"a");
        lc.offer(b"b");
        lc.offer(b"c");
        lc.offer(b"d"); // boundary: all have count 1, delta 0 -> pruned
        assert_eq!(lc.items().len(), 0);
        assert_eq!(lc.processed(), 4);
    }

    #[test]
    fn heavy_keys_survive_pruning() {
        let mut lc = LossyCounting::new(0.02);
        let mut truth: HashMap<Vec<u8>, u64> = HashMap::new();
        for i in 0..5000u32 {
            let key = if i % 3 == 0 {
                b"hot".to_vec()
            } else {
                format!("cold{}", i).into_bytes()
            };
            lc.offer(&key);
            *truth.entry(key).or_default() += 1;
        }
        let n = lc.processed();
        let eps_n = (0.02 * n as f64).ceil() as u64;
        let hot = lc.estimate(b"hot").expect("hot must survive");
        let t = truth[b"hot".as_slice()];
        assert!(hot.count <= t);
        assert!(t - hot.count <= eps_n, "under-count beyond epsilon*N");
        // All estimates are lower bounds within eps_n.
        for h in lc.items() {
            let t = truth[&h.key];
            assert!(h.count <= t && t - h.count <= eps_n);
        }
    }

    #[test]
    fn counter_footprint_stays_small() {
        let mut lc = LossyCounting::new(0.01);
        for i in 0..100_000u32 {
            lc.offer(&(i % 10_000).to_le_bytes());
        }
        // Uniform data: nothing is frequent; footprint must stay near the
        // theoretical bound rather than the 10k distinct keys.
        assert!(
            lc.peak_counters() < 2500,
            "peak {} counters is too many",
            lc.peak_counters()
        );
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1)")]
    fn invalid_epsilon_rejected() {
        let _ = LossyCounting::new(1.5);
    }

    #[test]
    fn capacity_reports_theoretical_bound() {
        let mut lc = LossyCounting::new(0.1);
        assert!(lc.capacity() >= 10);
        for i in 0..1000u32 {
            lc.offer(&i.to_le_bytes());
        }
        assert!(lc.capacity() >= 10);
    }
}
