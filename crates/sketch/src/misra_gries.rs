//! Misra-Gries frequent-items summary (1982).
//!
//! Keeps at most `k` counters. A new key arriving while the summary is full
//! triggers a *decrement-all* step: every counter drops by 1 (the arriving
//! item's occurrence is also discarded) and zeroed counters are freed.
//!
//! Guarantees, for a stream of length `N`:
//! * every estimate is a lower bound: `est ≤ true`;
//! * the under-count is bounded: `true − est ≤ N / (k+1)`;
//! * hence every key with `true > N/(k+1)` remains tracked.
//!
//! The decrement-all step is O(k), but classic amortization applies: each
//! decrement pass destroys `k+1` stream occurrences (the k decrements plus
//! the arriving one), so total decrement work over the stream is O(N).

use std::collections::HashMap;

use crate::{sort_items, FrequentItems, HeavyHitter};

/// The Misra-Gries summary. See module docs for guarantees.
#[derive(Debug)]
pub struct MisraGries {
    capacity: usize,
    counters: HashMap<Vec<u8>, u64>,
    processed: u64,
    /// Total amount decremented from every surviving counter so far; this
    /// is the uniform upper bound on each estimate's under-count.
    decrements: u64,
}

impl MisraGries {
    /// Create a summary with `capacity` counters (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "MisraGries needs at least one counter");
        MisraGries {
            capacity,
            counters: HashMap::with_capacity(capacity + 1),
            processed: 0,
            decrements: 0,
        }
    }

    /// Total decrement passes applied so far (each reduces every counter
    /// by one); this bounds each estimate's under-count.
    pub fn total_decrements(&self) -> u64 {
        self.decrements
    }

    fn decrement_all(&mut self, by: u64) {
        self.decrements += by;
        self.counters.retain(|_, c| {
            *c = c.saturating_sub(by);
            *c > 0
        });
    }
}

impl FrequentItems for MisraGries {
    fn offer_n(&mut self, key: &[u8], mut n: u64) {
        if n == 0 {
            return;
        }
        self.processed += n;
        if let Some(c) = self.counters.get_mut(key) {
            *c += n;
            return;
        }
        while n > 0 {
            if self.counters.len() < self.capacity {
                self.counters.insert(key.to_vec(), n);
                return;
            }
            // Summary full: decrement everything by the smallest live
            // count or by n, whichever is less — a batched version of the
            // classic one-at-a-time decrement with identical outcome.
            let min = self.counters.values().copied().min().unwrap_or(0).max(1);
            let step = min.min(n);
            self.decrement_all(step);
            n -= step;
            if n > 0 && self.counters.len() < self.capacity {
                self.counters.insert(key.to_vec(), n);
                return;
            }
        }
    }

    fn estimate(&self, key: &[u8]) -> Option<HeavyHitter> {
        self.counters.get(key).map(|&c| HeavyHitter {
            key: key.to_vec(),
            count: c,
            error: 0, // lower-bound estimate: no over-count by construction
        })
    }

    fn items(&self) -> Vec<HeavyHitter> {
        sort_items(
            self.counters
                .iter()
                .map(|(k, &c)| HeavyHitter {
                    key: k.clone(),
                    count: c,
                    error: 0,
                })
                .collect(),
        )
    }

    fn processed(&self) -> u64 {
        self.processed
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut mg = MisraGries::new(4);
        mg.offer_n(b"a", 3);
        mg.offer_n(b"b", 2);
        assert_eq!(mg.estimate(b"a").unwrap().count, 3);
        assert_eq!(mg.estimate(b"b").unwrap().count, 2);
        assert_eq!(mg.total_decrements(), 0);
    }

    #[test]
    fn decrement_all_on_overflow() {
        let mut mg = MisraGries::new(2);
        mg.offer(b"a"); // a:1
        mg.offer(b"b"); // b:1
        mg.offer(b"c"); // full -> decrement all by 1; a,b drop out; c discarded
        assert_eq!(mg.items().len(), 0);
        assert_eq!(mg.total_decrements(), 1);
        assert_eq!(mg.processed(), 3);
    }

    #[test]
    fn estimates_are_lower_bounds_with_mg_error() {
        let mut mg = MisraGries::new(9);
        let mut truth: HashMap<Vec<u8>, u64> = HashMap::new();
        // Zipf-ish adversarial mix.
        for i in 0..3000u32 {
            let key = format!("k{}", i % (1 + i % 50)).into_bytes();
            mg.offer(&key);
            *truth.entry(key).or_default() += 1;
        }
        let n = mg.processed();
        let bound = n / (9 + 1);
        for h in mg.items() {
            let t = truth[&h.key];
            assert!(h.count <= t, "MG must under-count");
            assert!(t - h.count <= bound, "under-count exceeds N/(k+1)");
        }
        // Every sufficiently heavy key is present.
        for (k, &t) in &truth {
            if t > bound {
                assert!(mg.contains(k), "heavy key missing: {t} > {bound}");
            }
        }
    }

    #[test]
    fn bulk_offer_matches_unit_offers_for_tracked_keys() {
        let mut a = MisraGries::new(3);
        let mut b = MisraGries::new(3);
        for _ in 0..10 {
            a.offer(b"x");
        }
        b.offer_n(b"x", 10);
        assert_eq!(a.estimate(b"x"), b.estimate(b"x"));
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut mg = MisraGries::new(7);
        for i in 0..10_000u32 {
            mg.offer(&(i % 113).to_le_bytes());
        }
        assert!(mg.items().len() <= 7);
    }
}
