//! Space-Saving (Metwally, Agrawal, El Abbadi 2005).
//!
//! Keeps exactly `k` counters. A new key arriving while the summary is full
//! evicts the key with the *minimum* count and inherits that count (+1),
//! recording the inherited amount as the estimate's `error`.
//!
//! Guarantees, for a stream of length `N`:
//! * every estimate is an upper bound: `true ≤ est`;
//! * the over-count is bounded: `est − error ≤ true`;
//! * `min_count ≤ N / k`, so every key with `true > N/k` is tracked.
//!
//! Implementation note: the canonical "stream summary" structure is a
//! doubly linked list of count buckets. We use the equivalent but simpler
//! hash-map-plus-lazy-min-heap formulation: each increment pushes a fresh
//! `(count, seq, key)` heap entry, and eviction pops entries until one
//! matches the map's current count for its key. Amortized O(log k) per
//! update; stale entries are bounded by the number of updates between
//! evictions and are drained as they surface.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::{sort_items, FrequentItems, HeavyHitter};

#[derive(Debug, Clone, Copy)]
struct Counter {
    count: u64,
    error: u64,
}

/// The Space-Saving summary. See module docs for guarantees.
///
/// ```
/// use onepass_sketch::{FrequentItems, SpaceSaving};
///
/// let mut sketch = SpaceSaving::new(4);
/// for _ in 0..100 { sketch.offer(b"hot"); }
/// for i in 0..50u32 { sketch.offer(&i.to_le_bytes()); }
///
/// let top = sketch.items();
/// assert_eq!(top[0].key, b"hot");          // heavy key always tracked
/// assert!(top[0].count >= 100);            // estimates are upper bounds
/// assert!(top[0].count - top[0].error <= 100);
/// ```
#[derive(Debug)]
pub struct SpaceSaving {
    capacity: usize,
    counters: HashMap<Vec<u8>, Counter>,
    /// Min-heap of (count, seq, key); entries may be stale.
    heap: BinaryHeap<Reverse<(u64, u64, Vec<u8>)>>,
    seq: u64,
    processed: u64,
}

impl SpaceSaving {
    /// Create a summary with `capacity` counters (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "SpaceSaving needs at least one counter");
        SpaceSaving {
            capacity,
            counters: HashMap::with_capacity(capacity + 1),
            heap: BinaryHeap::with_capacity(capacity * 2),
            seq: 0,
            processed: 0,
        }
    }

    /// Current minimum tracked count (0 when not yet full). This is the
    /// maximum possible count of any *untracked* key.
    pub fn min_count(&self) -> u64 {
        if self.counters.len() < self.capacity {
            return 0;
        }
        // O(k) scan; only called at summary-inspection points, not on the
        // per-record update path.
        self.counters.values().map(|c| c.count).min().unwrap_or(0)
    }

    fn push_heap(&mut self, key: &[u8], count: u64) {
        self.seq += 1;
        self.heap.push(Reverse((count, self.seq, key.to_vec())));
    }

    /// Pop heap entries until the top reflects a live (key, count) pair,
    /// then remove and return that key and its counter.
    fn evict_min(&mut self) -> (Vec<u8>, Counter) {
        loop {
            let Reverse((count, _, key)) = self
                .heap
                .pop()
                .expect("heap cannot be empty while counters are full");
            match self.counters.get(&key) {
                Some(c) if c.count == count => {
                    let c = *c;
                    self.counters.remove(&key);
                    return (key, c);
                }
                _ => continue, // stale entry
            }
        }
    }
}

impl FrequentItems for SpaceSaving {
    fn offer_n(&mut self, key: &[u8], n: u64) {
        if n == 0 {
            return;
        }
        self.processed += n;
        if let Some(c) = self.counters.get_mut(key) {
            c.count += n;
            let count = c.count;
            self.push_heap(key, count);
        } else if self.counters.len() < self.capacity {
            self.counters
                .insert(key.to_vec(), Counter { count: n, error: 0 });
            self.push_heap(key, n);
        } else {
            let (_, min) = self.evict_min();
            let count = min.count + n;
            self.counters.insert(
                key.to_vec(),
                Counter {
                    count,
                    error: min.count,
                },
            );
            self.push_heap(key, count);
        }
    }

    fn estimate(&self, key: &[u8]) -> Option<HeavyHitter> {
        self.counters.get(key).map(|c| HeavyHitter {
            key: key.to_vec(),
            count: c.count,
            error: c.error,
        })
    }

    fn items(&self) -> Vec<HeavyHitter> {
        sort_items(
            self.counters
                .iter()
                .map(|(k, c)| HeavyHitter {
                    key: k.clone(),
                    count: c.count,
                    error: c.error,
                })
                .collect(),
        )
    }

    fn processed(&self) -> u64 {
        self.processed
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_exact_counts_below_capacity() {
        let mut ss = SpaceSaving::new(10);
        for _ in 0..5 {
            ss.offer(b"a");
        }
        for _ in 0..3 {
            ss.offer(b"b");
        }
        let a = ss.estimate(b"a").unwrap();
        assert_eq!((a.count, a.error), (5, 0));
        let b = ss.estimate(b"b").unwrap();
        assert_eq!((b.count, b.error), (3, 0));
        assert_eq!(ss.processed(), 8);
    }

    #[test]
    fn eviction_inherits_min_count_as_error() {
        let mut ss = SpaceSaving::new(2);
        ss.offer(b"a"); // a:1
        ss.offer(b"a"); // a:2
        ss.offer(b"b"); // b:1
        ss.offer(b"c"); // evicts b (count 1) -> c: count 2, error 1
        let c = ss.estimate(b"c").unwrap();
        assert_eq!((c.count, c.error), (2, 1));
        assert!(!ss.contains(b"b"));
        assert!(ss.contains(b"a"));
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut ss = SpaceSaving::new(5);
        for i in 0..1000u32 {
            ss.offer(&i.to_le_bytes());
        }
        assert_eq!(ss.items().len(), 5);
    }

    #[test]
    fn heavy_key_survives_adversarial_noise() {
        // hot appears 400 times among 1000 distinct noise keys appearing
        // once each: N = 1400, k = 16 -> N/k = 87.5 < 400, so hot must be
        // tracked and its lower bound must dominate every noise key.
        let mut ss = SpaceSaving::new(16);
        for i in 0..1000u32 {
            if i % 5 < 2 {
                ss.offer(b"hot");
                ss.offer(b"hot");
            }
            ss.offer(&i.to_le_bytes());
        }
        let hot = ss.estimate(b"hot").expect("hot key must be tracked");
        let true_hot = 800;
        assert!(hot.count >= true_hot, "upper bound violated");
        assert!(hot.count - hot.error <= true_hot, "error bound violated");
    }

    #[test]
    fn offer_n_bulk_equals_repeated_offers() {
        let mut a = SpaceSaving::new(4);
        let mut b = SpaceSaving::new(4);
        for _ in 0..7 {
            a.offer(b"x");
        }
        b.offer_n(b"x", 7);
        assert_eq!(a.estimate(b"x").unwrap(), b.estimate(b"x").unwrap());
        b.offer_n(b"x", 0); // no-op
        assert_eq!(b.processed(), 7);
    }

    #[test]
    fn min_count_bound_holds() {
        let mut ss = SpaceSaving::new(8);
        for i in 0..5000u32 {
            ss.offer(&(i % 37).to_le_bytes());
        }
        assert!(ss.min_count() <= ss.processed() / 8 + 1);
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn zero_capacity_rejected() {
        let _ = SpaceSaving::new(0);
    }
}
