//! HyperLogLog distinct counting.
//!
//! The paper's proposed platform "extends the hash framework with
//! incremental computation, where the computation can be either **exact
//! or approximate**" (§IV). COUNT(DISTINCT …) is the canonical aggregate
//! that *needs* the approximate option: its exact state is linear in the
//! number of distinct values (a set), while the HyperLogLog state is a
//! fixed few hundred bytes and merges losslessly — ideal for per-key
//! states in the incremental hash.
//!
//! Standard HLL with `2^p` 6-bit registers (stored as bytes), the
//! bias-corrected estimator of Flajolet et al., and linear counting for
//! the small range.

use onepass_core::hashlib::{KeyHasher, MultiplyShift};

/// A HyperLogLog distinct-count sketch.
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    p: u8,
    registers: Vec<u8>,
    hasher: MultiplyShift,
}

impl HyperLogLog {
    /// Create a sketch with `2^p` registers (`4 ≤ p ≤ 18`). The standard
    /// relative error is ≈ `1.04 / sqrt(2^p)` — p=12 gives ~1.6%.
    pub fn new(p: u8) -> Self {
        assert!((4..=18).contains(&p), "p must be in 4..=18, got {p}");
        HyperLogLog {
            p,
            registers: vec![0; 1 << p],
            hasher: MultiplyShift::new(0x4c0_91dd),
        }
    }

    /// Registers in the sketch.
    pub fn registers(&self) -> usize {
        self.registers.len()
    }

    /// Observe one item.
    pub fn insert(&mut self, item: &[u8]) {
        let h = self.hasher.hash(item);
        let idx = (h >> (64 - self.p)) as usize;
        // Rank of the first set bit in the remaining stream (1-based),
        // computed over the low 64-p bits.
        let rest = h << self.p;
        let rank = (rest.leading_zeros() as u8 + 1).min(64 - self.p + 1);
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Merge another sketch (register-wise max). Panics if sizes differ.
    pub fn merge(&mut self, other: &HyperLogLog) {
        assert_eq!(self.p, other.p, "cannot merge HLLs of different precision");
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(b);
        }
    }

    /// Estimate the number of distinct items observed.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m {
            // Small-range correction: linear counting over empty registers.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Insert directly into a serialized state (see
    /// [`to_bytes`](Self::to_bytes)) without deserializing — the hot path
    /// for per-key aggregate states. Returns `false` on a malformed state.
    pub fn insert_raw(state: &mut [u8], item: &[u8]) -> bool {
        let Some((&p, _)) = state.split_first() else {
            return false;
        };
        if !(4..=18).contains(&p) || state.len() != 1 + (1usize << p) {
            return false;
        }
        let hasher = MultiplyShift::new(0x4c0_91dd);
        let h = hasher.hash(item);
        let idx = (h >> (64 - p)) as usize;
        let rank = ((h << p).leading_zeros() as u8 + 1).min(64 - p + 1);
        if rank > state[1 + idx] {
            state[1 + idx] = rank;
        }
        true
    }

    /// Merge serialized state `other` into serialized state `state`
    /// (register-wise max). Returns `false` on malformed/mismatched input.
    pub fn merge_raw(state: &mut [u8], other: &[u8]) -> bool {
        if state.len() != other.len() || state.is_empty() || state[0] != other[0] {
            return false;
        }
        for (a, &b) in state[1..].iter_mut().zip(&other[1..]) {
            *a = (*a).max(b);
        }
        true
    }

    /// Serialize to bytes (for use as an aggregate state): `[p][registers…]`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + self.registers.len());
        out.push(self.p);
        out.extend_from_slice(&self.registers);
        out
    }

    /// Deserialize from [`to_bytes`](Self::to_bytes) output.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let (&p, regs) = bytes.split_first()?;
        if !(4..=18).contains(&p) || regs.len() != 1 << p {
            return None;
        }
        Some(HyperLogLog {
            p,
            registers: regs.to_vec(),
            hasher: MultiplyShift::new(0x4c0_91dd),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_within_standard_error() {
        for &n in &[100u32, 5_000, 100_000] {
            let mut hll = HyperLogLog::new(12);
            for i in 0..n {
                hll.insert(&i.to_le_bytes());
            }
            let est = hll.estimate();
            let err = (est - n as f64).abs() / n as f64;
            // 1.04/sqrt(4096) ≈ 1.6%; allow 4 sigma.
            assert!(err < 0.065, "n={n}: estimate {est:.0}, error {err:.3}");
        }
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut hll = HyperLogLog::new(10);
        for _ in 0..50 {
            for i in 0..500u32 {
                hll.insert(&i.to_le_bytes());
            }
        }
        let est = hll.estimate();
        assert!((est - 500.0).abs() / 500.0 < 0.1, "estimate {est:.0}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(12);
        let mut b = HyperLogLog::new(12);
        let mut both = HyperLogLog::new(12);
        for i in 0..30_000u32 {
            let bytes = i.to_le_bytes();
            if i % 2 == 0 {
                a.insert(&bytes);
            } else {
                b.insert(&bytes);
            }
            both.insert(&bytes);
        }
        a.merge(&b);
        assert_eq!(
            a.registers, both.registers,
            "merge must equal union exactly"
        );
    }

    #[test]
    fn serialization_roundtrip() {
        let mut hll = HyperLogLog::new(8);
        for i in 0..1000u32 {
            hll.insert(&i.to_le_bytes());
        }
        let bytes = hll.to_bytes();
        let back = HyperLogLog::from_bytes(&bytes).unwrap();
        assert_eq!(back.registers, hll.registers);
        assert_eq!(back.estimate(), hll.estimate());
        // Corrupt inputs rejected.
        assert!(HyperLogLog::from_bytes(&[]).is_none());
        assert!(HyperLogLog::from_bytes(&[12, 0, 0]).is_none());
        assert!(HyperLogLog::from_bytes(&[99]).is_none());
    }

    #[test]
    fn raw_state_operations_match_object_operations() {
        let mut obj = HyperLogLog::new(10);
        let mut raw = HyperLogLog::new(10).to_bytes();
        for i in 0..5000u32 {
            obj.insert(&i.to_le_bytes());
            assert!(HyperLogLog::insert_raw(&mut raw, &i.to_le_bytes()));
        }
        assert_eq!(
            HyperLogLog::from_bytes(&raw).unwrap().registers,
            obj.registers
        );

        // merge_raw == merge
        let mut other = HyperLogLog::new(10);
        for i in 5000..9000u32 {
            other.insert(&i.to_le_bytes());
        }
        let mut merged_raw = raw.clone();
        assert!(HyperLogLog::merge_raw(&mut merged_raw, &other.to_bytes()));
        let mut merged_obj = obj.clone();
        merged_obj.merge(&other);
        assert_eq!(
            HyperLogLog::from_bytes(&merged_raw).unwrap().registers,
            merged_obj.registers
        );

        // Malformed inputs rejected.
        assert!(!HyperLogLog::insert_raw(&mut [], b"x"));
        assert!(!HyperLogLog::merge_raw(&mut raw, &[1, 2, 3]));
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let hll = HyperLogLog::new(6);
        assert_eq!(hll.estimate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "p must be in 4..=18")]
    fn invalid_precision_rejected() {
        let _ = HyperLogLog::new(3);
    }

    #[test]
    #[should_panic(expected = "different precision")]
    fn mismatched_merge_rejected() {
        let mut a = HyperLogLog::new(8);
        let b = HyperLogLog::new(9);
        a.merge(&b);
    }
}
