//! # onepass-sketch
//!
//! Online frequent-items (heavy-hitter) algorithms over byte-string keys.
//!
//! Section V of the paper optimizes its incremental hash by "borrowing an
//! existing online frequent algorithm to identify hot keys, and keep hot
//! keys in memory". This crate provides three interchangeable such
//! algorithms behind the [`FrequentItems`] trait:
//!
//! * [`SpaceSaving`] (Metwally et al.) — the usual choice and the default
//!   in `onepass-groupby`'s frequent hash: with `k` counters, every key
//!   with true frequency above `N/k` is guaranteed to be tracked, and each
//!   estimate carries an explicit over-count bound.
//! * [`MisraGries`] — deterministic under-counting summary with the
//!   classic `N/(k+1)` error bound.
//! * [`LossyCounting`] (Manku & Motwani) — ε-deficient counts with
//!   windowed pruning.
//!
//! All three are deterministic, single-pass, and O(k) space. The crate
//! also ships [`HyperLogLog`] for approximate distinct counting — the
//! fixed-size mergeable state behind `COUNT(DISTINCT …)` as an
//! incremental-hash aggregate (§IV's "exact or approximate" computation).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hll;
pub mod lossy;
pub mod misra_gries;
pub mod space_saving;

pub use hll::HyperLogLog;
pub use lossy::LossyCounting;
pub use misra_gries::MisraGries;
pub use space_saving::SpaceSaving;

/// One tracked heavy hitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeavyHitter {
    /// The key.
    pub key: Vec<u8>,
    /// Estimated count. Depending on the algorithm this is an upper bound
    /// (Space-Saving) or a lower bound (Misra-Gries, Lossy Counting).
    pub count: u64,
    /// Maximum over-estimation contained in `count` (0 for exact).
    pub error: u64,
}

/// A single-pass frequent-items summary over byte-string keys.
pub trait FrequentItems: Send {
    /// Observe one occurrence of `key`.
    fn offer(&mut self, key: &[u8]) {
        self.offer_n(key, 1);
    }

    /// Observe `n` occurrences of `key`.
    fn offer_n(&mut self, key: &[u8], n: u64);

    /// Estimated count for `key`, if currently tracked.
    fn estimate(&self, key: &[u8]) -> Option<HeavyHitter>;

    /// Is `key` currently tracked?
    fn contains(&self, key: &[u8]) -> bool {
        self.estimate(key).is_some()
    }

    /// All tracked items, sorted by descending estimated count
    /// (ties broken by ascending key for determinism).
    fn items(&self) -> Vec<HeavyHitter>;

    /// Total occurrences observed so far (the stream length `N`).
    fn processed(&self) -> u64;

    /// Maximum number of keys tracked simultaneously.
    fn capacity(&self) -> usize;

    /// Fold another summary into this one by replaying its tracked items
    /// (the standard mergeable-summary construction; bounds degrade
    /// additively). Lets map-side and reduce-side summaries combine —
    /// the answer to §IV-3's "how to support the combine function for
    /// complex analytical tasks such as top-k".
    fn merge_from(&mut self, other: &dyn FrequentItems) {
        for item in other.items() {
            self.offer_n(&item.key, item.count);
        }
    }

    /// Tracked items whose estimate meets `threshold`. With
    /// `conservative`, `error` is first subtracted from the estimate, so
    /// only items *guaranteed* to meet the threshold are returned
    /// (meaningful for over-estimating summaries like Space-Saving).
    fn above_threshold(&self, threshold: u64, conservative: bool) -> Vec<HeavyHitter> {
        self.items()
            .into_iter()
            .filter(|h| {
                let c = if conservative {
                    h.count.saturating_sub(h.error)
                } else {
                    h.count
                };
                c >= threshold
            })
            .collect()
    }
}

pub(crate) fn sort_items(mut items: Vec<HeavyHitter>) -> Vec<HeavyHitter> {
    items.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.key.cmp(&b.key)));
    items
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn exercise(mut sk: Box<dyn FrequentItems>) {
        for _ in 0..60 {
            sk.offer(b"hot");
        }
        for i in 0..30u32 {
            sk.offer(&i.to_le_bytes());
        }
        assert_eq!(sk.processed(), 90);
        assert!(sk.contains(b"hot"));
        let hot = sk.estimate(b"hot").unwrap();
        assert!(hot.count >= 60 - 30, "hot estimate {} too low", hot.count);
        let items = sk.items();
        assert_eq!(items[0].key, b"hot".to_vec());
        for w in items.windows(2) {
            assert!(w[0].count >= w[1].count, "items must be sorted descending");
        }
        let above = sk.above_threshold(50, false);
        assert!(above.iter().any(|h| h.key == b"hot"));
    }

    #[test]
    fn all_algorithms_satisfy_trait_contract() {
        exercise(Box::new(SpaceSaving::new(8)));
        exercise(Box::new(MisraGries::new(8)));
        exercise(Box::new(LossyCounting::new(0.05)));
    }

    #[test]
    fn merge_from_approximates_union_across_algorithms() {
        // Two shards each see one heavy key; the merged summary must
        // rank both at the top, for every algorithm (and even across
        // algorithm kinds — the trait replay makes them compatible).
        let build = |hot: &[u8]| {
            let mut a = MisraGries::new(8);
            for _ in 0..200 {
                a.offer(hot);
            }
            for i in 0..40u32 {
                a.offer(&i.to_le_bytes());
            }
            a
        };
        let left = build(b"left-hot");
        let right = build(b"right-hot");
        let mut merged = SpaceSaving::new(16);
        merged.merge_from(&left);
        merged.merge_from(&right);
        let top: Vec<Vec<u8>> = merged.items().into_iter().take(2).map(|h| h.key).collect();
        assert!(top.contains(&b"left-hot".to_vec()));
        assert!(top.contains(&b"right-hot".to_vec()));
    }
}
