//! # onepass-groupby
//!
//! Group-by operator implementations — the algorithmic heart of the paper.
//!
//! MapReduce's parallelism model is "group data by key, then apply the
//! reduce function to each group" (§II). How that group-by is implemented
//! is precisely what the paper investigates:
//!
//! * [`sortmerge`] — the Hadoop baseline: buffer, sort on the key, spill
//!   sorted runs, **multi-pass merge** with factor `F`, then stream the
//!   single sorted run through the reduce function. Blocking; heavy CPU
//!   (sort) and I/O (merge) — §III's findings.
//! * [`hybrid_hash`] — Shapiro's Hybrid Hash: bucket 0 resident, other
//!   buckets spilled and recursively processed. No sort CPU, I/O
//!   comparable to sort-merge, still blocking (§V reduce technique 1).
//! * [`inc_hash`] — incremental hash: one in-memory state per key, updated
//!   in place; pipelined, supports early emission (§V technique 2).
//! * [`freq_hash`] — incremental hash + an online frequent-items summary:
//!   hot keys keep resident state, cold records spill; delivers early
//!   answers for hot keys with orders-of-magnitude less spill I/O
//!   (§V technique 3).
//!
//! All operators implement [`GroupBy`], consume byte-string records, are
//! bounded by a [`MemoryBudget`](onepass_core::memory::MemoryBudget), spill
//! through a [`SpillStore`](onepass_core::io::SpillStore), and report
//! [`OpStats`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod freq_hash;
pub mod hybrid_hash;
pub mod inc_hash;
pub mod join;
pub mod merge;
pub mod sink;
pub mod sortmerge;

pub use aggregate::{
    Aggregator, AvgAgg, CountAgg, DistinctAgg, FirstAgg, ListAgg, MaxAgg, StateInput, SumAgg,
};
pub use join::{JoinAgg, TAG_BUILD, TAG_PROBE};
pub use freq_hash::FreqHashGrouper;
pub use hybrid_hash::HybridHashGrouper;
pub use inc_hash::{CountThreshold, EarlyEmit, IncHashGrouper, PeriodicCount};
pub use merge::MultiPassMerger;
pub use sink::{EmitKind, OpStats, Sink, VecSink};
pub use sortmerge::SortMergeGrouper;

use onepass_core::{Result, SegmentBuf};

/// A streaming group-by operator: push records, then finish to flush
/// remaining groups. Operators may emit *early* (incremental) output
/// during `push` — that is the defining capability the paper asks for.
///
/// ```
/// use std::sync::Arc;
/// use onepass_core::io::SharedMemStore;
/// use onepass_core::memory::MemoryBudget;
/// use onepass_groupby::{CountAgg, GroupBy, IncHashGrouper, VecSink};
///
/// let mut op = IncHashGrouper::new(
///     Arc::new(SharedMemStore::new()),
///     MemoryBudget::new(1 << 20),
///     Arc::new(CountAgg),
/// );
/// let mut sink = VecSink::default();
/// let batch = onepass_core::SegmentBuf::from_pairs(
///     [b"a", b"b", b"a"].map(|k| (k.as_slice(), b"".as_slice())),
/// );
/// op.push_batch(&batch, &mut sink).unwrap();
/// let stats = op.finish(&mut sink).unwrap();
/// assert_eq!(stats.groups_out, 2);
/// assert_eq!(stats.io.bytes_written, 0); // fits in memory: zero I/O
/// ```
///
/// Operators are `Send` so engines can move them across worker threads
/// (each operator is still single-threaded internally).
pub trait GroupBy: Send {
    /// Consume a whole arena-backed batch — the primary entry point.
    ///
    /// Operators probe per segment, not per record: implementations hash
    /// each key once and reuse the fingerprint for partition routing and
    /// table probes, which is where the one-pass CPU advantage over
    /// sort-merge comes from (§V). Key/value slices borrow straight from
    /// the segment's arena; no per-record copies are required.
    fn push_batch(&mut self, batch: &SegmentBuf, sink: &mut dyn Sink) -> Result<()>;

    /// Shed at least `target_bytes` of resident state through the
    /// operator's own spill path, returning the bytes actually freed.
    ///
    /// Called at batch boundaries when a
    /// [`MemoryGovernor`](onepass_core::governor::MemoryGovernor) picks
    /// this operator as a spill victim under global pressure. Shedding is
    /// a correctness-neutral reordering: shed state flows through the same
    /// tagged overflow/run machinery the operator's normal spill uses, so
    /// final output is byte-identical. The default does nothing (an
    /// operator with nothing shedable returns 0).
    fn shed(&mut self, target_bytes: usize) -> Result<usize> {
        let _ = target_bytes;
        Ok(0)
    }

    /// Flush all remaining groups into `sink` and return statistics.
    /// The operator must not be pushed to afterwards.
    fn finish(&mut self, sink: &mut dyn Sink) -> Result<OpStats>;

    /// Human-readable operator name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use std::collections::BTreeMap;

    /// Borrow owned pairs as the slice-pair iterator the helpers (and the
    /// operator APIs) consume.
    pub fn pairs(records: &[(Vec<u8>, Vec<u8>)]) -> impl Iterator<Item = (&[u8], &[u8])> {
        records.iter().map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// Drive `op` over `records` (as one arena-backed batch, the primary
    /// API) and return final `(key -> emitted value)` plus stats and the
    /// raw sink. Panics on duplicate final emissions.
    pub fn run_op<'a>(
        op: &mut dyn GroupBy,
        records: impl IntoIterator<Item = (&'a [u8], &'a [u8])>,
    ) -> (BTreeMap<Vec<u8>, Vec<u8>>, OpStats, VecSink) {
        let mut sink = VecSink::default();
        let batch = SegmentBuf::from_pairs(records);
        if !batch.is_empty() {
            op.push_batch(&batch, &mut sink).unwrap();
        }
        let stats = op.finish(&mut sink).unwrap();
        let mut out = BTreeMap::new();
        for (k, v, kind) in &sink.emitted {
            if *kind == EmitKind::Final {
                let prev = out.insert(k.clone(), v.clone());
                assert!(prev.is_none(), "duplicate final emission for key {k:?}");
            }
        }
        (out, stats, sink)
    }

    /// Reference group-count: how often each key appears.
    pub fn count_truth<'a>(
        records: impl IntoIterator<Item = (&'a [u8], &'a [u8])>,
    ) -> BTreeMap<Vec<u8>, u64> {
        let mut t: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (k, _) in records {
            *t.entry(k.to_vec()).or_default() += 1;
        }
        t
    }

    /// Decode a u64 value emitted by `CountAgg`/`SumAgg`.
    pub fn dec_u64(v: &[u8]) -> u64 {
        u64::from_le_bytes(v.try_into().expect("8-byte aggregate"))
    }
}
