//! Incremental hash with frequent-key residency — §V reduce technique 3.
//!
//! "For the case that the memory cannot hold the states of all the keys,
//! we further optimize the incremental hash by borrowing an existing
//! online frequent algorithm to identify hot keys, and keep hot keys in
//! memory. As the size of a state is usually sublinear in the number of
//! values aggregated, maintaining hot keys instead of random keys in
//! memory results in less I/Os. Moreover, hot keys are typically of
//! greater importance to the users. This technique can return
//! (approximate) results for these keys as early as when all the input
//! data has arrived."
//!
//! Mechanics:
//! * every record updates an online frequent-items summary
//!   ([`SpaceSaving`] by default);
//! * resident states absorb their records in place (incremental hash);
//! * when a *new* key arrives under a full budget, a **hotness gate**
//!   decides: if the summary ranks it above the coldest resident keys, a
//!   batch of the coldest residents is evicted (partial states spilled)
//!   to make room; otherwise the record itself spills. Cold spill is
//!   hash-partitioned into buckets up front;
//! * `finish` first emits the resident hot keys' states as **early
//!   (approximate) answers** — available the moment input ends, without
//!   touching disk — then flushes those states into their cold buckets
//!   and resolves each bucket exactly with a
//!   [`HybridHashGrouper`] child,
//!   so every key gets exactly one exact final answer.
//!
//! On skewed data the cold spill carries only the distribution's tail, so
//! spill I/O drops by orders of magnitude versus sort-merge — the §V
//! claim `exp_section5` reproduces.

use std::sync::Arc;

use onepass_core::error::{Error, Result};
use onepass_core::hashlib::{ByteMap, FamilyHasher, KeyHasher, SeededFamily};
use onepass_core::io::{IoStats, RunMeta, RunWriter, SpillStore};
use onepass_core::memory::MemoryBudget;
use onepass_core::metrics::{Phase, Profile};
use onepass_core::trace::LocalTracer;
use onepass_core::SegmentBuf;
use onepass_sketch::{FrequentItems, LossyCounting, MisraGries, SpaceSaving};

use crate::aggregate::Aggregator;
use crate::hybrid_hash::{HybridHashGrouper, TAG_RAW, TAG_STATE};
use crate::sink::{EmitKind, OpStats, Sink};
use crate::GroupBy;

/// Per-key bookkeeping overhead charged to the budget.
const STATE_OVERHEAD: usize = 48;

/// Fraction of resident keys evicted per eviction batch.
const EVICT_FRACTION: f64 = 0.10;

/// Which online frequent-items algorithm identifies hot keys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Detector {
    /// Misra-Gries: O(1) amortized updates, lower-bound counts — the
    /// default (the hotness gate wants guaranteed counts, and the
    /// update cost sits on the per-record hot path).
    MisraGries,
    /// Space-Saving: upper-bound counts with per-item error; guaranteed
    /// coverage of every key above N/k, at a higher per-update cost.
    SpaceSaving,
    /// Lossy Counting with the given ε.
    Lossy(f64),
}

/// Configuration for [`FreqHashGrouper`].
#[derive(Debug, Clone)]
pub struct FreqHashConfig {
    /// Counters in the frequent-items summary (more ⇒ finer hot/cold
    /// discrimination, more sketch memory). Default 1024.
    pub sketch_capacity: usize,
    /// Hot-key detection algorithm. Default Misra-Gries.
    pub detector: Detector,
    /// Emit resident (hot-key) states as early answers at the start of
    /// `finish`, before any disk pass. Default true.
    pub early_hot_answers: bool,
    /// Number of hash buckets for the cold spill. Default 16.
    pub cold_fanout: usize,
    /// Fanout of the hybrid-hash children that resolve cold buckets.
    /// Default 8.
    pub resolve_fanout: usize,
}

impl Default for FreqHashConfig {
    fn default() -> Self {
        FreqHashConfig {
            sketch_capacity: 1024,
            detector: Detector::MisraGries,
            early_hot_answers: true,
            cold_fanout: 16,
            resolve_fanout: 8,
        }
    }
}

/// The frequent-key incremental hash group-by operator.
pub struct FreqHashGrouper {
    store: Arc<dyn SpillStore>,
    budget: MemoryBudget,
    agg: Arc<dyn Aggregator>,
    sketch: Box<dyn FrequentItems>,
    config: FreqHashConfig,
    family: SeededFamily,
    /// Cached cold-bucket hasher (member 1_000_003 of `family`) — built
    /// once so per-record cold routing never re-derives the member.
    cold_hasher: FamilyHasher,
    states: ByteMap<Vec<u8>>,
    reserved: usize,
    peak_reserved: usize,
    /// Cold-bucket writers, created lazily on first spill.
    cold: Option<Vec<Box<dyn RunWriter>>>,
    /// Sketch-count floor below which new keys spill without attempting
    /// eviction; refreshed at each eviction batch.
    cold_threshold: u64,
    records_in: u64,
    groups_out: u64,
    early_emits: u64,
    evictions: u64,
    spills: u64,
    profile: Profile,
    io_base: IoStats,
    trace: LocalTracer,
}

impl std::fmt::Debug for FreqHashGrouper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FreqHashGrouper")
            .field("resident_keys", &self.states.len())
            .field("evictions", &self.evictions)
            .finish()
    }
}

impl FreqHashGrouper {
    /// Create with default configuration.
    pub fn new(store: Arc<dyn SpillStore>, budget: MemoryBudget, agg: Arc<dyn Aggregator>) -> Self {
        Self::with_config(store, budget, agg, FreqHashConfig::default())
    }

    /// Create with explicit configuration.
    pub fn with_config(
        store: Arc<dyn SpillStore>,
        budget: MemoryBudget,
        agg: Arc<dyn Aggregator>,
        config: FreqHashConfig,
    ) -> Self {
        Self::with_family(store, budget, agg, config, SeededFamily::default())
    }

    /// Create with explicit configuration and hash family (see
    /// `EngineConfigBuilder::hash_family`). The family routes cold-spill
    /// buckets here and probe buckets in the hybrid-hash children that
    /// resolve them.
    pub fn with_family(
        store: Arc<dyn SpillStore>,
        budget: MemoryBudget,
        agg: Arc<dyn Aggregator>,
        config: FreqHashConfig,
        family: SeededFamily,
    ) -> Self {
        let io_base = store.stats();
        let k = config.sketch_capacity.max(1);
        let sketch: Box<dyn FrequentItems> = match config.detector {
            Detector::MisraGries => Box::new(MisraGries::new(k)),
            Detector::SpaceSaving => Box::new(SpaceSaving::new(k)),
            Detector::Lossy(eps) => Box::new(LossyCounting::new(eps)),
        };
        // Member index chosen not to collide with the hybrid children's
        // level-0 function (they start at member 0).
        let cold_hasher = family.member(1_000_003);
        FreqHashGrouper {
            store,
            budget,
            agg,
            sketch,
            family,
            cold_hasher,
            config,
            states: ByteMap::default(),
            reserved: 0,
            peak_reserved: 0,
            cold: None,
            cold_threshold: 0,
            records_in: 0,
            groups_out: 0,
            early_emits: 0,
            evictions: 0,
            spills: 0,
            profile: Profile::new(),
            io_base,
            trace: LocalTracer::disabled(),
        }
    }

    /// Attach a trace buffer; admit/evict/spill events land on its track.
    pub fn set_tracer(&mut self, trace: LocalTracer) {
        self.trace = trace;
    }

    /// Number of keys currently resident.
    pub fn resident_keys(&self) -> usize {
        self.states.len()
    }

    /// Eviction batches performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Read access to the resident state of `key` (tests/diagnostics).
    pub fn resident_state(&self, key: &[u8]) -> Option<&[u8]> {
        self.states.get(key).map(|s| s.as_slice())
    }

    fn state_cost(key: &[u8], state: &[u8]) -> usize {
        key.len() + state.len() + STATE_OVERHEAD
    }

    /// Hotness of a key: the sketch's *guaranteed* count lower bound
    /// (`count − error`), 0 when untracked. Using an upper bound here
    /// would make every newly-inserted Space-Saving entry (which inherits
    /// the evicted minimum as its count) look hot and trigger eviction
    /// storms; the lower bound only credits observed occurrences.
    fn heat(&self, key: &[u8]) -> u64 {
        self.sketch
            .estimate(key)
            .map(|h| h.count.saturating_sub(h.error))
            .unwrap_or(0)
    }

    /// Update resident state in place; true if the key was resident.
    fn update_resident(&mut self, key: &[u8], payload: &[u8], is_state: bool) -> bool {
        let Some(state) = self.states.get_mut(key) else {
            return false;
        };
        let before = state.len();
        if is_state {
            self.agg.merge(key, state, payload);
        } else {
            self.agg.update(key, state, payload);
        }
        let after = state.len();
        if after > before {
            self.budget.force_grant(after - before);
            self.reserved += after - before;
        } else if before > after {
            self.budget.release(before - after);
            self.reserved -= before - after;
        }
        self.peak_reserved = self.peak_reserved.max(self.reserved);
        true
    }

    /// Insert a new resident state if the budget allows.
    fn try_insert(&mut self, key: &[u8], payload: &[u8], is_state: bool) -> bool {
        let state = if is_state {
            payload.to_vec()
        } else {
            self.agg.init(key, payload)
        };
        let cost = Self::state_cost(key, &state);
        // Escalate to the governor (if leased) before the hotness gate
        // decides between eviction and cold spill.
        if !self.budget.try_grant_or_request(cost) {
            return false;
        }
        self.reserved += cost;
        self.peak_reserved = self.peak_reserved.max(self.reserved);
        self.states.insert(key.to_vec(), state);
        true
    }

    /// Evict the coldest `EVICT_FRACTION` of resident keys, spilling their
    /// partial states, and refresh the cold threshold.
    fn evict_batch(&mut self) -> Result<usize> {
        if self.states.is_empty() {
            return Ok(0);
        }
        let group_start = std::time::Instant::now();
        let mut ranked: Vec<(u64, Vec<u8>)> = self
            .states
            .keys()
            .map(|k| (self.heat(k), k.clone()))
            .collect();
        ranked.sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let n_evict =
            ((ranked.len() as f64 * EVICT_FRACTION).ceil() as usize).clamp(1, ranked.len());
        // New keys colder than the hottest key just evicted shouldn't
        // re-trigger an eviction scan.
        self.cold_threshold = ranked[n_evict - 1].0;
        for (_, key) in ranked.into_iter().take(n_evict) {
            let state = self.states.remove(&key).expect("ranked key resident");
            self.write_cold(&key, &state, true)?;
            let cost = Self::state_cost(&key, &state);
            self.budget.release(cost);
            self.reserved -= cost;
        }
        self.evictions += 1;
        self.profile
            .add_time(Phase::ReduceGroup, group_start.elapsed());
        // Advertise how cold this operator's evictable tail is, so the
        // governor's ColdestKeys policy can rank victims.
        self.budget.publish_heat(self.cold_threshold);
        self.trace.instant(
            "evict",
            "freq",
            &[
                ("keys", n_evict as f64),
                ("cold_threshold", self.cold_threshold as f64),
            ],
        );
        Ok(n_evict)
    }

    fn cold_bucket(&self, key: &[u8]) -> usize {
        self.cold_hasher.bucket(key, self.config.cold_fanout)
    }

    fn write_cold(&mut self, key: &[u8], payload: &[u8], is_state: bool) -> Result<()> {
        if self.cold.is_none() {
            let mut writers = Vec::with_capacity(self.config.cold_fanout);
            for _ in 0..self.config.cold_fanout {
                writers.push(self.store.begin_run()?);
            }
            self.cold = Some(writers);
            self.spills += 1;
        }
        let b = self.cold_bucket(key);
        let mut tagged = Vec::with_capacity(1 + payload.len());
        tagged.push(if is_state { TAG_STATE } else { TAG_RAW });
        tagged.extend_from_slice(payload);
        self.cold.as_mut().expect("just created")[b].write_record(key, &tagged)
    }

    /// Emit a snapshot of every resident (hot) state as an early answer.
    fn emit_resident_early(&mut self, sink: &mut dyn Sink) {
        let reduce_start = std::time::Instant::now();
        for (key, state) in &self.states {
            let out = self.agg.finish(key, state.clone());
            sink.emit(key, &out, EmitKind::Early);
            self.early_emits += 1;
        }
        self.profile
            .add_time(Phase::ReduceFn, reduce_start.elapsed());
    }

    /// Emit every resident group as exact final output and free memory.
    fn emit_resident_final(&mut self, sink: &mut dyn Sink) {
        let reduce_start = std::time::Instant::now();
        let states = std::mem::take(&mut self.states);
        for (key, state) in states {
            let out = self.agg.finish(&key, state);
            sink.emit(&key, &out, EmitKind::Final);
            self.groups_out += 1;
        }
        self.budget.release(self.reserved);
        self.reserved = 0;
        self.profile
            .add_time(Phase::ReduceFn, reduce_start.elapsed());
    }

    /// Flush all resident partial states into their cold buckets so each
    /// key's complete data lives in exactly one bucket.
    fn flush_resident_to_cold(&mut self) -> Result<()> {
        let keys: Vec<Vec<u8>> = self.states.keys().cloned().collect();
        for key in keys {
            let state = self.states.remove(&key).expect("listed");
            self.write_cold(&key, &state, true)?;
            let cost = Self::state_cost(&key, &state);
            self.budget.release(cost);
            self.reserved -= cost;
        }
        Ok(())
    }
}

impl FreqHashGrouper {
    fn push_one(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        // The sketch exists to rank evictions. Until the table nears its
        // budget (or has already spilled), per-record sketch maintenance
        // is pure overhead on the no-pressure fast path — so it stays
        // cold while used < limit/2. Estimates are lower bounds either
        // way; activating late only makes early evictions rank on less
        // history, never produces wrong answers.
        if self.cold.is_some() || self.budget.used() >= self.budget.limit() / 2 {
            self.sketch.offer(key);
        }
        if self.update_resident(key, value, false) {
            return Ok(());
        }
        if self.try_insert(key, value, false) {
            return Ok(());
        }
        // Budget full and key not resident: hotness gate.
        let heat = self.heat(key);
        if heat > self.cold_threshold {
            self.evict_batch()?;
            if self.try_insert(key, value, false) {
                self.trace
                    .instant("admit", "freq", &[("heat", heat as f64)]);
                return Ok(());
            }
            // Even after eviction it does not fit (giant state): spill.
        }
        self.write_cold(key, value, false)
    }
}

impl GroupBy for FreqHashGrouper {
    fn push_batch(&mut self, batch: &SegmentBuf, _sink: &mut dyn Sink) -> Result<()> {
        self.records_in += batch.len() as u64;
        for (key, value) in batch.iter() {
            self.push_one(key, value)?;
        }
        Ok(())
    }

    fn shed(&mut self, target_bytes: usize) -> Result<usize> {
        // Shed = repeated coldest-first eviction batches: the shed states
        // land in the cold buckets the exact pass already resolves, so
        // re-admitted keys stay correct (finish flushes residents to cold
        // whenever any cold spill exists).
        let start = self.reserved;
        while start - self.reserved < target_bytes {
            if self.evict_batch()? == 0 {
                break;
            }
        }
        Ok(start - self.reserved)
    }

    fn finish(&mut self, sink: &mut dyn Sink) -> Result<OpStats> {
        if self.cold.is_none() {
            // Everything fit in memory: resident states are exact already.
            self.emit_resident_final(sink);
            let io_now = self.store.stats();
            return Ok(self.stats_snapshot(io_now, 0));
        }

        // 1. Hot-key early answers, straight from memory.
        if self.config.early_hot_answers {
            self.emit_resident_early(sink);
        }

        // 2. Move the hot partial states into their buckets, so the exact
        //    pass sees each key's complete data in one place.
        self.flush_resident_to_cold()?;
        let writers = self.cold.take().expect("cold spill exists");
        let metas: Vec<RunMeta> = writers
            .into_iter()
            .map(|w| w.finish())
            .collect::<Result<_>>()?;

        // 3. Resolve each bucket exactly with a hybrid-hash child.
        let mut passes = 0u64;
        for meta in metas {
            if meta.records == 0 {
                self.store.delete_run(meta.id)?;
                continue;
            }
            passes += 1;
            self.trace.instant(
                "cold_bucket_resolve",
                "spill",
                &[
                    ("bytes", meta.bytes as f64),
                    ("records", meta.records as f64),
                ],
            );
            let mut child = HybridHashGrouper::with_family(
                Arc::clone(&self.store),
                self.budget.clone(),
                self.config.resolve_fanout,
                Arc::clone(&self.agg),
                self.family.clone(),
            )?;
            {
                let mut reader = self.store.open_run(meta.id)?;
                while let Some(rec) = reader.next_record()? {
                    let (tag, payload) = rec
                        .value
                        .split_first()
                        .ok_or_else(|| Error::Corrupt("untagged cold record".into()))?;
                    let key = rec.key.to_vec();
                    let payload = payload.to_vec();
                    let tag = *tag;
                    child.push_tagged(&key, &payload, tag)?;
                }
            }
            self.store.delete_run(meta.id)?;
            let child_stats = child.finish(sink)?;
            self.groups_out += child_stats.groups_out;
            passes += child_stats.passes;
            self.profile.merge(&child_stats.profile);
        }

        let io_now = self.store.stats();
        Ok(self.stats_snapshot(io_now, passes))
    }

    fn name(&self) -> &'static str {
        "frequent-hash"
    }
}

impl FreqHashGrouper {
    fn stats_snapshot(&self, io_now: IoStats, passes: u64) -> OpStats {
        OpStats {
            records_in: self.records_in,
            groups_out: self.groups_out,
            early_emits: self.early_emits,
            io: IoStats {
                bytes_written: io_now.bytes_written - self.io_base.bytes_written,
                bytes_read: io_now.bytes_read - self.io_base.bytes_read,
                runs_created: io_now.runs_created - self.io_base.runs_created,
                runs_deleted: io_now.runs_deleted - self.io_base.runs_deleted,
            },
            profile: self.profile.clone(),
            peak_mem: self.peak_reserved,
            spills: self.spills,
            passes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::CountAgg;
    use crate::sink::VecSink;
    use crate::test_support::{count_truth, dec_u64, pairs, run_op};
    use crate::SortMergeGrouper;
    use onepass_core::io::SharedMemStore;

    /// Skewed stream: 50% of records hit key 0; the rest cycle uniformly
    /// over the remaining `distinct - 1` keys.
    fn skewed_records(n: u32, distinct: u32) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut recs = Vec::with_capacity(n as usize);
        let mut j = 0u32;
        for i in 0..n {
            j = (j + 1) % distinct.max(2);
            let key_id = if i % 2 == 0 { 0 } else { j.max(1) };
            recs.push((
                format!("key{:05}", key_id).into_bytes(),
                format!("v{i}").into_bytes(),
            ));
        }
        recs
    }

    #[test]
    fn exact_results_under_memory_pressure() {
        let store = SharedMemStore::new();
        let mut g = FreqHashGrouper::new(
            Arc::new(store.clone()),
            MemoryBudget::new(30 * (8 + 9 + STATE_OVERHEAD)),
            Arc::new(CountAgg),
        );
        let recs = skewed_records(4000, 500);
        let (out, stats, _) = run_op(&mut g, pairs(&recs));
        let truth = count_truth(pairs(&recs));
        assert_eq!(out.len(), truth.len());
        for (k, c) in truth {
            assert_eq!(dec_u64(&out[&k]), c, "count mismatch for {k:?}");
        }
        assert!(stats.spills >= 1);
        assert_eq!(store.live_runs(), 0);
    }

    #[test]
    fn hot_keys_stay_resident() {
        let store = SharedMemStore::new();
        let mut g = FreqHashGrouper::new(
            Arc::new(store),
            MemoryBudget::new(20 * (8 + 9 + STATE_OVERHEAD)),
            Arc::new(CountAgg),
        );
        let mut sink = VecSink::default();
        let recs = skewed_records(5000, 400);
        g.push_batch(&SegmentBuf::from_pairs(pairs(&recs)), &mut sink)
            .unwrap();
        assert!(
            g.resident_state(b"key00000").is_some(),
            "hottest key evicted — hotness gate failed"
        );
        g.finish(&mut sink).unwrap();
    }

    #[test]
    fn early_hot_answers_precede_final() {
        let store = SharedMemStore::new();
        let mut g = FreqHashGrouper::new(
            Arc::new(store),
            MemoryBudget::new(10 * (8 + 9 + STATE_OVERHEAD)),
            Arc::new(CountAgg),
        );
        let recs = skewed_records(2000, 300);
        let (out, stats, sink) = run_op(&mut g, pairs(&recs));
        assert!(stats.early_emits > 0, "hot keys should be answered early");
        // The early answer for the hottest key must be close to its truth
        // (only pre-residency records can be missing from it).
        let truth = count_truth(pairs(&recs));
        let early_hot = sink
            .emitted
            .iter()
            .find(|(k, _, kind)| *kind == EmitKind::Early && k == b"key00000")
            .map(|(_, v, _)| dec_u64(v))
            .expect("hottest key answered early");
        let t = truth[b"key00000".as_slice()];
        assert!(
            early_hot * 10 >= t * 9,
            "early answer {early_hot} too far from truth {t}"
        );
        // And the final answer is exact.
        assert_eq!(dec_u64(&out[b"key00000".as_slice()]), t);
    }

    #[test]
    fn spills_far_less_than_sortmerge_on_skew() {
        // The §V claim, at unit-test scale: same skewed input, same
        // budget; frequent-hash spill I/O must be a small fraction of
        // sort-merge spill I/O. (exp_section5 reproduces the full
        // orders-of-magnitude version at scale with real Zipf data.)
        let budget_bytes = 40 * (9 + 8 + STATE_OVERHEAD);
        let recs = skewed_records(20_000, 800);

        let sm_store = SharedMemStore::new();
        let mut sm = SortMergeGrouper::new(
            Arc::new(sm_store),
            MemoryBudget::new(budget_bytes),
            10,
            Arc::new(CountAgg),
        )
        .unwrap();
        let (sm_out, sm_stats, _) = run_op(&mut sm, pairs(&recs));

        let fh_store = SharedMemStore::new();
        let mut fh = FreqHashGrouper::new(
            Arc::new(fh_store),
            MemoryBudget::new(budget_bytes),
            Arc::new(CountAgg),
        );
        let (fh_out, fh_stats, _) = run_op(&mut fh, pairs(&recs));

        assert_eq!(sm_out, fh_out, "both operators must agree exactly");
        assert!(
            fh_stats.spill_traffic() * 3 < sm_stats.spill_traffic(),
            "freq-hash spill {} should be far below sort-merge {}",
            fh_stats.spill_traffic(),
            sm_stats.spill_traffic()
        );
    }

    #[test]
    fn all_in_memory_zero_io() {
        let store = SharedMemStore::new();
        let mut g = FreqHashGrouper::new(
            Arc::new(store),
            MemoryBudget::unlimited(),
            Arc::new(CountAgg),
        );
        let recs = skewed_records(1000, 100);
        let (out, stats, sink) = run_op(&mut g, pairs(&recs));
        assert_eq!(out.len(), count_truth(pairs(&recs)).len());
        assert_eq!(stats.io.bytes_written, 0);
        assert_eq!(sink.early_count(), 0, "no early pass needed when exact");
    }

    #[test]
    fn budget_released() {
        let budget = MemoryBudget::new(3000);
        let store = SharedMemStore::new();
        let mut g = FreqHashGrouper::new(Arc::new(store), budget.clone(), Arc::new(CountAgg));
        let _ = run_op(&mut g, pairs(&skewed_records(3000, 400)));
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn disabling_early_answers_suppresses_them() {
        let store = SharedMemStore::new();
        let mut g = FreqHashGrouper::with_config(
            Arc::new(store),
            MemoryBudget::new(2000),
            Arc::new(CountAgg),
            FreqHashConfig {
                early_hot_answers: false,
                ..Default::default()
            },
        );
        let (_, stats, sink) = run_op(&mut g, pairs(&skewed_records(3000, 400)));
        assert_eq!(stats.early_emits, 0);
        assert_eq!(sink.early_count(), 0);
    }
}
