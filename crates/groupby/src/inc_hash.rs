//! Incremental hash group-by — §V reduce technique 2.
//!
//! "To support incremental computation and reduce I/Os when a combine
//! function is available, we further implement an incremental hash
//! technique, which maintains a state for each key, and updates it
//! incrementally."
//!
//! Every key owns a resident aggregate state updated in place; the reduce
//! computation is effectively applied "to all groups simultaneously"
//! (§IV-3) as records stream in. Two properties distinguish this from the
//! blocking operators:
//!
//! * **Early output**: an optional [`EarlyEmit`] policy inspects each
//!   updated state and may emit an answer *while input is still arriving*
//!   — e.g. "output a group as soon as the count of its items has reached
//!   the threshold" (§IV-3).
//! * **Zero I/O when states fit in memory** — the fast path the paper's
//!   design targets.
//!
//! When memory cannot hold all states, records for non-resident keys are
//! spilled to an overflow run and `finish` resolves them with nested
//! passes: each pass loads as many new keys as fit, absorbs their records,
//! emits them, and re-spills the rest. (The paper's preferred answer to
//! that regime is the frequent-key variant in [`crate::freq_hash`], which
//! chooses *which* keys stay resident instead of first-come-first-kept.)

use std::sync::Arc;

use onepass_core::error::{Error, Result};
use onepass_core::hashlib::ByteMap;
use onepass_core::io::{IoStats, RunMeta, RunWriter, SpillStore};
use onepass_core::memory::MemoryBudget;
use onepass_core::metrics::{Phase, Profile};
use onepass_core::trace::LocalTracer;
use onepass_core::SegmentBuf;

use crate::aggregate::Aggregator;
use crate::sink::{EmitKind, OpStats, Sink};
use crate::GroupBy;

/// Per-key bookkeeping overhead charged to the budget.
const STATE_OVERHEAD: usize = 48;

/// Decides whether an updated group should be emitted early.
pub trait EarlyEmit: Send + Sync {
    /// Inspect `(key, state)` after an update; return `true` to emit the
    /// current (finished copy of the) state as an early answer.
    fn ready(&self, key: &[u8], state: &[u8]) -> bool;
}

/// Early-emit policy: fire whenever a little-endian u64 state crosses
/// `threshold` (exactly once, at the crossing — the §IV-3 example query
/// "return all groups where the count of items exceeds a threshold").
#[derive(Debug, Clone, Copy)]
pub struct CountThreshold(pub u64);

impl EarlyEmit for CountThreshold {
    fn ready(&self, _key: &[u8], state: &[u8]) -> bool {
        state.len() == 8 && u64::from_le_bytes(state.try_into().unwrap()) == self.0
    }
}

/// Early-emit policy: fire every time a little-endian u64 state reaches
/// a multiple of `period` — a periodic refresh of hot groups while input
/// is still arriving (the serving front-end's per-tenant early answers).
#[derive(Debug, Clone, Copy)]
pub struct PeriodicCount(pub u64);

impl EarlyEmit for PeriodicCount {
    fn ready(&self, _key: &[u8], state: &[u8]) -> bool {
        if self.0 == 0 || state.len() != 8 {
            return false;
        }
        let n = u64::from_le_bytes(state.try_into().unwrap());
        n > 0 && n % self.0 == 0
    }
}

/// The incremental hash group-by operator.
pub struct IncHashGrouper {
    store: Arc<dyn SpillStore>,
    budget: MemoryBudget,
    agg: Arc<dyn Aggregator>,
    early: Option<Arc<dyn EarlyEmit>>,
    states: ByteMap<Vec<u8>>,
    /// Keys with records in the *pending* (unsealed) overflow run. A
    /// resident key in this set must not be emitted directly at an emit
    /// boundary — part of its data lives in the overflow, so its partial
    /// state is flushed there instead and the next pass merges the two.
    /// Without this, a key whose admission *flips* mid-stream (possible
    /// once a shed or a governor limit-raise frees budget) would get two
    /// Final emissions.
    overflow_keys: ByteMap<()>,
    reserved: usize,
    peak_reserved: usize,
    overflow: Option<Box<dyn RunWriter>>,
    overflow_metas: Vec<RunMeta>,
    records_in: u64,
    groups_out: u64,
    early_emits: u64,
    spills: u64,
    profile: Profile,
    io_base: IoStats,
    trace: LocalTracer,
}

impl std::fmt::Debug for IncHashGrouper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncHashGrouper")
            .field("resident_keys", &self.states.len())
            .field("records_in", &self.records_in)
            .finish()
    }
}

impl IncHashGrouper {
    /// Create an incremental hash grouper without early emission.
    pub fn new(store: Arc<dyn SpillStore>, budget: MemoryBudget, agg: Arc<dyn Aggregator>) -> Self {
        Self::with_early(store, budget, agg, None)
    }

    /// Create with an optional early-emit policy.
    pub fn with_early(
        store: Arc<dyn SpillStore>,
        budget: MemoryBudget,
        agg: Arc<dyn Aggregator>,
        early: Option<Arc<dyn EarlyEmit>>,
    ) -> Self {
        let io_base = store.stats();
        IncHashGrouper {
            store,
            budget,
            agg,
            early,
            states: ByteMap::default(),
            overflow_keys: ByteMap::default(),
            reserved: 0,
            peak_reserved: 0,
            overflow: None,
            overflow_metas: Vec::new(),
            records_in: 0,
            groups_out: 0,
            early_emits: 0,
            spills: 0,
            profile: Profile::new(),
            io_base,
            trace: LocalTracer::disabled(),
        }
    }

    /// Attach a trace buffer; overflow spill/pass events land on its
    /// track.
    pub fn set_tracer(&mut self, trace: LocalTracer) {
        self.trace = trace;
    }

    /// Number of keys currently resident.
    pub fn resident_keys(&self) -> usize {
        self.states.len()
    }

    fn state_cost(key: &[u8], state: &[u8]) -> usize {
        key.len() + state.len() + STATE_OVERHEAD
    }

    /// Update the resident state for `key`, or create one if the budget
    /// allows. `is_state` selects merge vs update semantics. Returns
    /// `true` if absorbed; emits early output when the policy fires.
    fn try_absorb(
        &mut self,
        key: &[u8],
        payload: &[u8],
        is_state: bool,
        sink: &mut dyn Sink,
    ) -> Result<bool> {
        let group_start = std::time::Instant::now();
        let absorbed = if let Some(state) = self.states.get_mut(key) {
            let before = state.len();
            if is_state {
                self.agg.merge(key, state, payload);
            } else {
                self.agg.update(key, state, payload);
            }
            let after = state.len();
            if after > before {
                self.budget.force_grant(after - before);
                self.reserved += after - before;
            } else if before > after {
                self.budget.release(before - after);
                self.reserved -= before - after;
            }
            true
        } else {
            let state = if is_state {
                payload.to_vec()
            } else {
                self.agg.init(key, payload)
            };
            let cost = Self::state_cost(key, &state);
            // Escalate to the governor (if leased) before overflowing the
            // record to disk.
            if self.budget.try_grant_or_request(cost) {
                self.reserved += cost;
                self.states.insert(key.to_vec(), state);
                true
            } else {
                false
            }
        };
        self.peak_reserved = self.peak_reserved.max(self.reserved);
        self.profile
            .add_time(Phase::ReduceGroup, group_start.elapsed());

        if absorbed {
            if let Some(policy) = &self.early {
                let state = self.states.get(key).expect("just absorbed");
                if policy.ready(key, state) {
                    let out = self.agg.finish(key, state.clone());
                    sink.emit(key, &out, EmitKind::Early);
                    self.early_emits += 1;
                }
            }
        }
        Ok(absorbed)
    }

    fn spill(&mut self, key: &[u8], payload: &[u8], is_state: bool) -> Result<()> {
        if self.overflow.is_none() {
            self.overflow = Some(self.store.begin_run()?);
            self.spills += 1;
            self.trace
                .instant("overflow_open", "spill", &[("spill", self.spills as f64)]);
        }
        let mut tagged = Vec::with_capacity(1 + payload.len());
        tagged.push(is_state as u8);
        tagged.extend_from_slice(payload);
        self.overflow_keys.insert(key.to_vec(), ());
        self.overflow
            .as_mut()
            .expect("just created")
            .write_record(key, &tagged)
    }

    /// Emit every resident group as final output and clear the table.
    /// Residents that also have records in the pending overflow are
    /// incomplete: their partial state is flushed to the overflow instead,
    /// to be merged (and emitted exactly once) by a later pass.
    fn emit_all_resident(&mut self, sink: &mut dyn Sink) -> Result<()> {
        let reduce_start = std::time::Instant::now();
        let states = std::mem::take(&mut self.states);
        for (key, state) in states {
            if self.overflow_keys.contains_key(&key) {
                self.spill(&key, &state, true)?;
                continue;
            }
            let out = self.agg.finish(&key, state);
            sink.emit(&key, &out, EmitKind::Final);
            self.groups_out += 1;
        }
        self.budget.release(self.reserved);
        self.reserved = 0;
        self.overflow_keys.clear();
        self.profile
            .add_time(Phase::ReduceFn, reduce_start.elapsed());
        Ok(())
    }

    /// Seal the current overflow writer (if any) into the pending list.
    fn seal_overflow(&mut self) -> Result<()> {
        if let Some(w) = self.overflow.take() {
            let meta = w.finish()?;
            if meta.records == 0 {
                self.store.delete_run(meta.id)?;
            } else {
                self.overflow_metas.push(meta);
            }
        }
        Ok(())
    }
}

impl GroupBy for IncHashGrouper {
    fn push_batch(&mut self, batch: &SegmentBuf, sink: &mut dyn Sink) -> Result<()> {
        self.records_in += batch.len() as u64;
        for (key, value) in batch.iter() {
            if !self.try_absorb(key, value, false, sink)? {
                self.spill(key, value, false)?;
            }
        }
        Ok(())
    }

    fn shed(&mut self, target_bytes: usize) -> Result<usize> {
        // Move resident states into the overflow run (tagged as states —
        // the same representation the nested passes already merge) until
        // `target_bytes` are freed. A shed key may be re-admitted later;
        // `overflow_keys` guarantees its eventual single exact emission.
        let mut victims: Vec<Vec<u8>> = Vec::new();
        let mut planned = 0usize;
        for (k, v) in self.states.iter() {
            if planned >= target_bytes {
                break;
            }
            planned += Self::state_cost(k, v);
            victims.push(k.clone());
        }
        let mut freed = 0usize;
        for k in victims {
            if let Some(state) = self.states.remove(&k) {
                let cost = Self::state_cost(&k, &state);
                self.spill(&k, &state, true)?;
                self.budget.release(cost);
                self.reserved = self.reserved.saturating_sub(cost);
                freed += cost;
            }
        }
        Ok(freed)
    }

    fn finish(&mut self, sink: &mut dyn Sink) -> Result<OpStats> {
        // The streaming-resident keys not in `overflow_keys` absorbed
        // every one of their records, so they are complete now; the rest
        // are flushed into the overflow for exact resolution below.
        self.emit_all_resident(sink)?;
        self.seal_overflow()?;

        // Nested passes over the overflow data.
        let mut passes = 0u64;
        while let Some(meta) = {
            if self.overflow_metas.is_empty() {
                None
            } else {
                Some(self.overflow_metas.remove(0))
            }
        } {
            passes += 1;
            self.trace.instant(
                "overflow_pass",
                "spill",
                &[
                    ("pass", passes as f64),
                    ("bytes", meta.bytes as f64),
                    ("records", meta.records as f64),
                ],
            );
            let mut absorbed_this_pass = 0u64;
            {
                let mut reader = self.store.open_run(meta.id)?;
                let mut scratch_sink = NullEarly;
                while let Some(rec) = reader.next_record()? {
                    let (tag, payload) = rec
                        .value
                        .split_first()
                        .ok_or_else(|| Error::Corrupt("untagged overflow record".into()))?;
                    let key = rec.key.to_vec();
                    let payload = payload.to_vec();
                    let is_state = *tag == 1;
                    if self.try_absorb(&key, &payload, is_state, &mut scratch_sink)? {
                        absorbed_this_pass += 1;
                    } else {
                        self.spill(&key, &payload, is_state)?;
                    }
                }
            }
            if absorbed_this_pass == 0 {
                // Not even one new key fit: the budget cannot hold a
                // single state, so passes would loop forever.
                return Err(Error::MemoryExceeded {
                    requested: STATE_OVERHEAD,
                    available: self.budget.available(),
                });
            }
            self.store.delete_run(meta.id)?;
            // After a full pass, every record of the now-resident keys has
            // been absorbed or re-spilled-for-other-keys: emit and free.
            self.emit_all_resident(sink)?;
            self.seal_overflow()?;
        }

        let io_now = self.store.stats();
        Ok(OpStats {
            records_in: self.records_in,
            groups_out: self.groups_out,
            early_emits: self.early_emits,
            io: IoStats {
                bytes_written: io_now.bytes_written - self.io_base.bytes_written,
                bytes_read: io_now.bytes_read - self.io_base.bytes_read,
                runs_created: io_now.runs_created - self.io_base.runs_created,
                runs_deleted: io_now.runs_deleted - self.io_base.runs_deleted,
            },
            profile: self.profile.clone(),
            peak_mem: self.peak_reserved,
            spills: self.spills,
            passes,
        })
    }

    fn name(&self) -> &'static str {
        "incremental-hash"
    }
}

/// Early-emit callbacks are suppressed during overflow replay (those
/// groups already missed their moment; emitting "early" output at finish
/// time would be a lie).
struct NullEarly;

impl Sink for NullEarly {
    fn emit(&mut self, _key: &[u8], _value: &[u8], _kind: EmitKind) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{CountAgg, ListAgg};
    use crate::test_support::{count_truth, dec_u64, pairs, run_op};
    use onepass_core::io::SharedMemStore;

    fn records(n: u32, distinct: u32) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("key{:05}", i % distinct).into_bytes(),
                    format!("v{i}").into_bytes(),
                )
            })
            .collect()
    }

    #[test]
    fn in_memory_counts_with_zero_io() {
        let store = SharedMemStore::new();
        let mut g = IncHashGrouper::new(
            Arc::new(store.clone()),
            MemoryBudget::new(1 << 20),
            Arc::new(CountAgg),
        );
        let recs = records(1000, 50);
        let (out, stats, _) = run_op(&mut g, pairs(&recs));
        assert_eq!(out.len(), 50);
        for (k, c) in count_truth(pairs(&recs)) {
            assert_eq!(dec_u64(&out[&k]), c);
        }
        assert_eq!(stats.io.bytes_written, 0);
        assert_eq!(stats.spills, 0);
        assert_eq!(stats.passes, 0);
    }

    #[test]
    fn overflow_passes_resolve_all_keys() {
        let store = SharedMemStore::new();
        // Budget for only ~10 resident keys.
        let mut g = IncHashGrouper::new(
            Arc::new(store.clone()),
            MemoryBudget::new(10 * (8 + 8 + STATE_OVERHEAD)),
            Arc::new(CountAgg),
        );
        let recs = records(2000, 200);
        let (out, stats, _) = run_op(&mut g, pairs(&recs));
        assert_eq!(out.len(), 200);
        for (k, c) in count_truth(pairs(&recs)) {
            assert_eq!(dec_u64(&out[&k]), c, "count mismatch for {k:?}");
        }
        assert!(stats.passes >= 2, "should need multiple overflow passes");
        assert_eq!(store.live_runs(), 0);
    }

    #[test]
    // Single-record batches on purpose: early emission must interleave
    // with individual records, not land at bulk-batch boundaries.
    fn early_emission_at_threshold() {
        let store = SharedMemStore::new();
        let mut g = IncHashGrouper::with_early(
            Arc::new(store),
            MemoryBudget::unlimited(),
            Arc::new(CountAgg),
            Some(Arc::new(CountThreshold(5))),
        );
        let mut sink = crate::sink::VecSink::default();
        // Key "a" reaches 5 at the 5th record: early output fires exactly
        // once, while pushes are still happening.
        for i in 0..8u32 {
            g.push_batch(
                &SegmentBuf::from_pairs([(b"a".as_slice(), &i.to_le_bytes()[..])]),
                &mut sink,
            )
            .unwrap();
            g.push_batch(
                &SegmentBuf::from_pairs([(b"b".as_slice(), &i.to_le_bytes()[..])]),
                &mut sink,
            )
            .unwrap();
        }
        assert_eq!(
            sink.early_count(),
            2,
            "both keys crossed the threshold once"
        );
        let early_at: Vec<usize> = sink
            .emitted
            .iter()
            .enumerate()
            .filter(|(_, (_, _, k))| *k == EmitKind::Early)
            .map(|(i, _)| i)
            .collect();
        assert!(early_at[0] < 16, "early output must precede finish");
        let stats = g.finish(&mut sink).unwrap();
        assert_eq!(stats.early_emits, 2);
        assert_eq!(stats.groups_out, 2);
        assert_eq!(sink.final_count(), 2);
    }

    #[test]
    // Single-record batches must stay equivalent to bulk batching.
    fn early_value_reflects_threshold_state() {
        let store = SharedMemStore::new();
        let mut g = IncHashGrouper::with_early(
            Arc::new(store),
            MemoryBudget::unlimited(),
            Arc::new(CountAgg),
            Some(Arc::new(CountThreshold(3))),
        );
        let mut sink = crate::sink::VecSink::default();
        for i in 0..10u32 {
            g.push_batch(
                &SegmentBuf::from_pairs([(b"k".as_slice(), &i.to_le_bytes()[..])]),
                &mut sink,
            )
            .unwrap();
        }
        let (_, v, _) = sink
            .emitted
            .iter()
            .find(|(_, _, k)| *k == EmitKind::Early)
            .unwrap();
        assert_eq!(dec_u64(v), 3, "early answer carries the state at crossing");
        g.finish(&mut sink).unwrap();
        let (_, v, _) = sink
            .emitted
            .iter()
            .find(|(_, _, k)| *k == EmitKind::Final)
            .unwrap();
        assert_eq!(dec_u64(v), 10);
    }

    #[test]
    fn list_agg_with_overflow() {
        let store = SharedMemStore::new();
        let mut g = IncHashGrouper::new(
            Arc::new(store.clone()),
            MemoryBudget::new(1200),
            Arc::new(ListAgg),
        );
        let recs = records(300, 60);
        let (out, _, _) = run_op(&mut g, pairs(&recs));
        assert_eq!(out.len(), 60);
        let total: usize = out.values().map(|v| ListAgg::decode(v).len()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn no_sort_phase_ever() {
        let store = SharedMemStore::new();
        let mut g =
            IncHashGrouper::new(Arc::new(store), MemoryBudget::new(800), Arc::new(CountAgg));
        let recs = records(500, 100);
        let (_, stats, _) = run_op(&mut g, pairs(&recs));
        assert_eq!(
            stats.profile.time(Phase::MapSort),
            std::time::Duration::ZERO
        );
    }

    #[test]
    fn budget_too_small_for_one_state_errors_cleanly() {
        // A budget that cannot hold even a single state must surface
        // MemoryExceeded at finish instead of looping forever.
        let store = SharedMemStore::new();
        let mut g = IncHashGrouper::new(
            Arc::new(store),
            MemoryBudget::new(8), // smaller than any state + overhead
            Arc::new(CountAgg),
        );
        let mut sink = crate::sink::VecSink::default();
        let recs: Vec<_> = (0..50u32)
            .map(|i| (i.to_le_bytes().to_vec(), b"v".to_vec()))
            .collect();
        g.push_batch(&SegmentBuf::from_pairs(pairs(&recs)), &mut sink)
            .unwrap();
        let err = g.finish(&mut sink);
        assert!(
            matches!(err, Err(onepass_core::Error::MemoryExceeded { .. })),
            "expected MemoryExceeded, got {err:?}"
        );
    }

    #[test]
    fn budget_released_after_finish() {
        let budget = MemoryBudget::new(700);
        let store = SharedMemStore::new();
        let mut g = IncHashGrouper::new(Arc::new(store), budget.clone(), Arc::new(CountAgg));
        let _ = run_op(&mut g, pairs(&records(400, 80)));
        assert_eq!(budget.used(), 0);
    }
}
