//! Sort-merge group-by — the Hadoop baseline (§II-A / §III).
//!
//! Records are buffered until the memory budget is exhausted, then the
//! buffer is **sorted on the key** (the CPU cost Table II quantifies),
//! partially aggregated (Hadoop applies the combine function "in a reducer
//! when its data buffer fills up"), and written to disk as a sorted run.
//! On-disk runs go through [`MultiPassMerger`]'s progressive multi-pass
//! merge (the blocking, I/O-heavy phase of Fig. 2), and the final merge
//! streams fully grouped data through the aggregate.
//!
//! Faithful behavioural details reproduced here:
//! * once *any* spill has happened, the final buffer is also written to
//!   disk before merging — "even if there is ample memory […] the
//!   multi-pass merge still causes I/O" (§III-B.4);
//! * if the budget is never exhausted, grouping completes fully in memory
//!   with zero I/O (the properly-tuned small-job fast path);
//! * the operator is fully **blocking**: no output before `finish`.

use std::sync::Arc;

use onepass_core::bytes_kv::{KvBuf, SegmentBuf};
use onepass_core::error::Result;
use onepass_core::io::{IoStats, SpillStore};
use onepass_core::memory::MemoryBudget;
use onepass_core::metrics::{Phase, Profile};

use crate::aggregate::Aggregator;
use crate::merge::MultiPassMerger;
use crate::sink::{EmitKind, OpStats, Sink};
use crate::GroupBy;

/// Approximate per-record bookkeeping overhead charged to the budget
/// (entry table slot + map/allocator slack).
const RECORD_OVERHEAD: usize = 24;

/// The sort-merge (Hadoop-style) group-by operator.
pub struct SortMergeGrouper {
    store: Arc<dyn SpillStore>,
    budget: MemoryBudget,
    agg: Arc<dyn Aggregator>,
    merger: MultiPassMerger,
    buf: KvBuf,
    reserved: usize,
    peak_reserved: usize,
    records_in: u64,
    groups_out: u64,
    spills: u64,
    profile: Profile,
    io_base: IoStats,
    finished: bool,
}

impl std::fmt::Debug for SortMergeGrouper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SortMergeGrouper")
            .field("records_in", &self.records_in)
            .field("spills", &self.spills)
            .finish()
    }
}

impl SortMergeGrouper {
    /// Create a sort-merge grouper.
    ///
    /// * `store` — spill destination for sorted runs.
    /// * `budget` — in-memory buffer bound (may be shared with peers).
    /// * `merge_factor` — Hadoop's `io.sort.factor` F.
    /// * `agg` — the reduce (and, when [`Aggregator::combinable`],
    ///   buffer-fill combine) function.
    pub fn new(
        store: Arc<dyn SpillStore>,
        budget: MemoryBudget,
        merge_factor: usize,
        agg: Arc<dyn Aggregator>,
    ) -> Result<Self> {
        let io_base = store.stats();
        let merger = MultiPassMerger::new(Arc::clone(&store), merge_factor)?;
        Ok(SortMergeGrouper {
            store,
            budget,
            agg,
            merger,
            buf: KvBuf::new(),
            reserved: 0,
            peak_reserved: 0,
            records_in: 0,
            groups_out: 0,
            spills: 0,
            profile: Profile::new(),
            io_base,
            finished: false,
        })
    }

    fn record_cost(key: &[u8], value: &[u8]) -> usize {
        key.len() + value.len() + RECORD_OVERHEAD
    }

    /// Sort the buffer, collapse equal keys through the aggregate, and
    /// write the result as one sorted on-disk run.
    fn spill_buffer(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        {
            let _t = self.profile.timed(Phase::MapSort);
            self.buf.sort_by_key();
        }
        let combine_start = std::time::Instant::now();
        let mut writer = self.store.begin_run()?;
        let mut i = 0;
        while i < self.buf.len() {
            let key_range_start = i;
            let mut state = self.agg.init(self.buf.key(i), self.buf.value(i));
            i += 1;
            while i < self.buf.len() && self.buf.key(i) == self.buf.key(key_range_start) {
                self.agg
                    .update(self.buf.key(key_range_start), &mut state, self.buf.value(i));
                i += 1;
            }
            writer.write_record(self.buf.key(key_range_start), &state)?;
        }
        self.profile
            .add_time(Phase::Combine, combine_start.elapsed());
        let meta = writer.finish()?;
        self.merger.add_run(meta)?;
        self.buf.clear();
        self.budget.release(self.reserved);
        self.reserved = 0;
        self.spills += 1;
        Ok(())
    }

    /// Fully-in-memory completion: sort, group, emit — no I/O.
    fn finish_in_memory(&mut self, sink: &mut dyn Sink) -> Result<()> {
        {
            let _t = self.profile.timed(Phase::MapSort);
            self.buf.sort_by_key();
        }
        let reduce_start = std::time::Instant::now();
        let mut i = 0;
        while i < self.buf.len() {
            let start = i;
            let mut state = self.agg.init(self.buf.key(i), self.buf.value(i));
            i += 1;
            while i < self.buf.len() && self.buf.key(i) == self.buf.key(start) {
                self.agg
                    .update(self.buf.key(start), &mut state, self.buf.value(i));
                i += 1;
            }
            let out = self.agg.finish(self.buf.key(start), state);
            sink.emit(self.buf.key(start), &out, EmitKind::Final);
            self.groups_out += 1;
        }
        self.profile
            .add_time(Phase::ReduceFn, reduce_start.elapsed());
        self.buf.clear();
        self.budget.release(self.reserved);
        self.reserved = 0;
        Ok(())
    }
}

impl SortMergeGrouper {
    fn push_one(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        debug_assert!(!self.finished, "push after finish");
        let cost = Self::record_cost(key, value);
        // Ask the governor (if leased) for more headroom before falling
        // back to a local sort+spill of the buffer.
        if !self.budget.try_grant_or_request(cost) {
            self.spill_buffer()?;
            if !self.budget.try_grant(cost) {
                // A leased budget can still fail here after spilling: the
                // shared pool may be saturated by sibling leases. Overshoot
                // softly (bounded: the buffer is empty) instead of failing
                // the task; the governor's shed requests drain the pool.
                if self.budget.is_leased() {
                    self.budget.force_grant(cost);
                } else {
                    self.budget.grant(cost)?;
                }
            }
        }
        self.reserved += cost;
        self.peak_reserved = self.peak_reserved.max(self.reserved);
        self.buf.push(0, key, value);
        self.records_in += 1;
        Ok(())
    }
}

impl GroupBy for SortMergeGrouper {
    fn push_batch(&mut self, batch: &SegmentBuf, _sink: &mut dyn Sink) -> Result<()> {
        for (key, value) in batch.iter() {
            self.push_one(key, value)?;
        }
        Ok(())
    }

    fn shed(&mut self, target_bytes: usize) -> Result<usize> {
        let _ = target_bytes;
        // The whole buffer is one sorted-run spill away from free; partial
        // sheds would sort twice for no I/O saving.
        let freed = self.reserved;
        self.spill_buffer()?;
        Ok(freed)
    }

    fn finish(&mut self, sink: &mut dyn Sink) -> Result<OpStats> {
        self.finished = true;
        if self.merger.runs().is_empty() && self.merger.merge_passes() == 0 {
            // Never spilled: complete in memory.
            self.finish_in_memory(sink)?;
        } else {
            // Hadoop behaviour: the tail of the data is written to disk
            // too, so the final merge sees only on-disk runs (§III-B.4).
            self.spill_buffer()?;
            let merger = std::mem::replace(
                &mut self.merger,
                MultiPassMerger::new(Arc::clone(&self.store), 2)?,
            );
            let mut grouped = merger.into_grouped()?;
            let reduce_start = std::time::Instant::now();
            while let Some((key, states)) = grouped.next_group()? {
                let mut iter = states.into_iter();
                let mut state = iter.next().expect("groups are non-empty");
                for other in iter {
                    self.agg.merge(&key, &mut state, &other);
                }
                let out = self.agg.finish(&key, state);
                sink.emit(&key, &out, EmitKind::Final);
                self.groups_out += 1;
            }
            self.profile
                .add_time(Phase::ReduceFn, reduce_start.elapsed());
            self.profile.merge(grouped.profile());
            let passes = grouped.merge_passes();
            grouped.cleanup()?;
            self.profile.add_count("merge_passes", passes);
        }

        let io_now = self.store.stats();
        Ok(OpStats {
            records_in: self.records_in,
            groups_out: self.groups_out,
            early_emits: 0, // sort-merge is blocking: no early output, ever
            io: IoStats {
                bytes_written: io_now.bytes_written - self.io_base.bytes_written,
                bytes_read: io_now.bytes_read - self.io_base.bytes_read,
                runs_created: io_now.runs_created - self.io_base.runs_created,
                runs_deleted: io_now.runs_deleted - self.io_base.runs_deleted,
            },
            profile: self.profile.clone(),
            peak_mem: self.peak_reserved,
            spills: self.spills,
            passes: self.profile.count("merge_passes"),
        })
    }

    fn name(&self) -> &'static str {
        "sort-merge"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{CountAgg, ListAgg};
    use crate::test_support::{count_truth, dec_u64, pairs, run_op};
    use onepass_core::io::SharedMemStore;

    fn records(n: u32, distinct: u32) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("key{:04}", i % distinct).into_bytes(),
                    format!("val{i}").into_bytes(),
                )
            })
            .collect()
    }

    fn grouper(budget_bytes: usize) -> (SortMergeGrouper, SharedMemStore) {
        let store = SharedMemStore::new();
        let g = SortMergeGrouper::new(
            Arc::new(store.clone()),
            MemoryBudget::new(budget_bytes),
            4,
            Arc::new(CountAgg),
        )
        .unwrap();
        (g, store)
    }

    #[test]
    fn in_memory_path_no_io() {
        let (mut g, store) = grouper(1 << 20);
        let recs = records(100, 10);
        let (out, stats, sink) = run_op(&mut g, pairs(&recs));
        assert_eq!(out.len(), 10);
        for (k, c) in count_truth(pairs(&recs)) {
            assert_eq!(dec_u64(&out[&k]), c);
        }
        assert_eq!(
            stats.io.bytes_written, 0,
            "fully in-memory run must not spill"
        );
        assert_eq!(store.live_runs(), 0);
        assert_eq!(sink.early_count(), 0, "sort-merge never emits early");
    }

    #[test]
    fn spilling_path_matches_truth() {
        let (mut g, _store) = grouper(600); // tiny: forces many spills
        let recs = records(500, 37);
        let (out, stats, _) = run_op(&mut g, pairs(&recs));
        assert_eq!(out.len(), 37);
        for (k, c) in count_truth(pairs(&recs)) {
            assert_eq!(dec_u64(&out[&k]), c, "count mismatch for {k:?}");
        }
        assert!(stats.spills > 1);
        assert!(stats.io.bytes_written > 0);
        assert_eq!(stats.records_in, 500);
        assert_eq!(stats.groups_out, 37);
    }

    #[test]
    fn multipass_merge_kicks_in_with_small_factor() {
        let store = SharedMemStore::new();
        let mut g = SortMergeGrouper::new(
            Arc::new(store.clone()),
            MemoryBudget::new(400),
            2, // F = 2: merges cascade aggressively
            Arc::new(CountAgg),
        )
        .unwrap();
        let recs = records(400, 50);
        let (out, stats, _) = run_op(&mut g, pairs(&recs));
        assert_eq!(out.len(), 50);
        assert!(stats.passes >= 1, "expected intermediate merge passes");
        // Multi-pass amplification: bytes written exceed one spill's worth.
        assert!(stats.io.bytes_read > 0);
    }

    #[test]
    fn tail_is_spilled_once_any_spill_happened() {
        // Budget fits ~4 records; push 6 so exactly one spill occurs, then
        // finish must write the remaining buffered tail too (§III-B.4).
        let (mut g, _store) = grouper(4 * (6 + 4 + RECORD_OVERHEAD) + 8);
        let recs = records(6, 6);
        let (out, stats, _) = run_op(&mut g, pairs(&recs));
        assert_eq!(out.len(), 6);
        assert!(stats.spills >= 2, "tail must be spilled as its own run");
    }

    #[test]
    fn combine_shrinks_spilled_runs() {
        // With CountAgg, a run holds one record per distinct key.
        let store = SharedMemStore::new();
        let mut g = SortMergeGrouper::new(
            Arc::new(store.clone()),
            MemoryBudget::new(2000),
            100,
            Arc::new(CountAgg),
        )
        .unwrap();
        // 2 distinct keys, many records: each spill collapses to 2 records.
        let recs = records(300, 2);
        let (_, stats, _) = run_op(&mut g, pairs(&recs));
        assert!(
            stats.io.bytes_written < 3000,
            "combine should collapse runs"
        );
    }

    #[test]
    fn list_agg_collects_all_values() {
        let store = SharedMemStore::new();
        let mut g = SortMergeGrouper::new(
            Arc::new(store.clone()),
            MemoryBudget::new(500),
            3,
            Arc::new(ListAgg),
        )
        .unwrap();
        let recs = records(60, 5);
        let (out, _, _) = run_op(&mut g, pairs(&recs));
        assert_eq!(out.len(), 5);
        let total: usize = out.values().map(|v| ListAgg::decode(v).len()).sum();
        assert_eq!(total, 60, "every value must appear in some group list");
    }

    #[test]
    fn sort_cpu_is_attributed() {
        let (mut g, _) = grouper(1 << 20);
        let recs = records(20_000, 1000);
        let (_, stats, _) = run_op(&mut g, pairs(&recs));
        assert!(
            stats.profile.time(Phase::MapSort) > std::time::Duration::ZERO,
            "sorting must register CPU time"
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let (mut g, _) = grouper(1024);
        let (out, stats, _) = run_op(&mut g, pairs(&[]));
        assert!(out.is_empty());
        assert_eq!(stats.records_in, 0);
        assert_eq!(stats.groups_out, 0);
    }

    #[test]
    fn budget_is_released_after_finish() {
        let budget = MemoryBudget::new(1 << 20);
        let store = SharedMemStore::new();
        let mut g =
            SortMergeGrouper::new(Arc::new(store), budget.clone(), 4, Arc::new(CountAgg)).unwrap();
        let recs = records(100, 10);
        let _ = run_op(&mut g, pairs(&recs));
        assert_eq!(budget.used(), 0, "all reserved memory must be returned");
    }
}
