//! The aggregate-function contract shared by combine and reduce.
//!
//! The paper's incremental techniques hinge on reduce functions that can be
//! expressed as *mergeable per-key states* ("the incremental hash
//! technique maintains a state for each key, and updates it incrementally",
//! §V). [`Aggregator`] captures that: `init`/`update` fold raw values into
//! a byte-encoded state, `merge` combines two partial states (needed when a
//! spilled partial state meets a resident one, and for combiner→reducer
//! composition), and `finish` renders the final output value.
//!
//! States are byte arrays, matching the engine-wide byte-oriented data
//! plane: states can be spilled, shuffled and merged without knowing their
//! semantics.

/// A commutative, associative aggregate over the values of one key.
pub trait Aggregator: Send + Sync {
    /// Initial state for a key, from its first value.
    fn init(&self, key: &[u8], value: &[u8]) -> Vec<u8>;

    /// Fold one more raw value into an existing state.
    fn update(&self, key: &[u8], state: &mut Vec<u8>, value: &[u8]);

    /// Merge another *state* (not raw value) into `state`.
    fn merge(&self, key: &[u8], state: &mut Vec<u8>, other_state: &[u8]);

    /// Render the final output value from a state. Default: the state
    /// bytes themselves.
    fn finish(&self, _key: &[u8], state: Vec<u8>) -> Vec<u8> {
        state
    }

    /// Whether the aggregate can serve as a *combiner* (partial
    /// aggregation on the map side). True for all classic distributive /
    /// algebraic aggregates; false for holistic ones.
    fn combinable(&self) -> bool {
        true
    }
}

/// Delegation through shared pointers, so `Arc<dyn Aggregator>` is itself
/// an aggregate (needed to wrap dynamic aggregates in adapters like
/// [`StateInput`]).
impl<T: Aggregator + ?Sized> Aggregator for std::sync::Arc<T> {
    fn init(&self, key: &[u8], value: &[u8]) -> Vec<u8> {
        (**self).init(key, value)
    }

    fn update(&self, key: &[u8], state: &mut Vec<u8>, value: &[u8]) {
        (**self).update(key, state, value)
    }

    fn merge(&self, key: &[u8], state: &mut Vec<u8>, other_state: &[u8]) {
        (**self).merge(key, state, other_state)
    }

    fn finish(&self, key: &[u8], state: Vec<u8>) -> Vec<u8> {
        (**self).finish(key, state)
    }

    fn combinable(&self) -> bool {
        (**self).combinable()
    }
}

fn dec_u64(state: &[u8]) -> u64 {
    u64::from_le_bytes(state.try_into().expect("8-byte aggregate state"))
}

fn enc_u64(x: u64) -> Vec<u8> {
    x.to_le_bytes().to_vec()
}

/// COUNT(*): state is a little-endian u64 occurrence count; raw values are
/// ignored (or, if 8 bytes long, *not* interpreted — count semantics are
/// strictly "one per record"). Use [`SumAgg`] to add pre-counted partials.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountAgg;

impl Aggregator for CountAgg {
    fn init(&self, _key: &[u8], _value: &[u8]) -> Vec<u8> {
        enc_u64(1)
    }

    fn update(&self, _key: &[u8], state: &mut Vec<u8>, _value: &[u8]) {
        let n = dec_u64(state) + 1;
        state.copy_from_slice(&n.to_le_bytes());
    }

    fn merge(&self, _key: &[u8], state: &mut Vec<u8>, other: &[u8]) {
        let n = dec_u64(state) + dec_u64(other);
        state.copy_from_slice(&n.to_le_bytes());
    }
}

/// SUM over little-endian u64 values. Because a partial sum is itself a
/// valid input value, SUM composes with itself as map-side combiner — the
/// canonical word-count / page-frequency aggregate.
#[derive(Debug, Default, Clone, Copy)]
pub struct SumAgg;

impl Aggregator for SumAgg {
    fn init(&self, _key: &[u8], value: &[u8]) -> Vec<u8> {
        enc_u64(dec_u64(value))
    }

    fn update(&self, _key: &[u8], state: &mut Vec<u8>, value: &[u8]) {
        let n = dec_u64(state) + dec_u64(value);
        state.copy_from_slice(&n.to_le_bytes());
    }

    fn merge(&self, key: &[u8], state: &mut Vec<u8>, other: &[u8]) {
        self.update(key, state, other);
    }
}

/// MAX over little-endian u64 values.
#[derive(Debug, Default, Clone, Copy)]
pub struct MaxAgg;

impl Aggregator for MaxAgg {
    fn init(&self, _key: &[u8], value: &[u8]) -> Vec<u8> {
        enc_u64(dec_u64(value))
    }

    fn update(&self, _key: &[u8], state: &mut Vec<u8>, value: &[u8]) {
        let n = dec_u64(state).max(dec_u64(value));
        state.copy_from_slice(&n.to_le_bytes());
    }

    fn merge(&self, key: &[u8], state: &mut Vec<u8>, other: &[u8]) {
        self.update(key, state, other);
    }
}

/// Keep the first value seen for a key (arbitrary bytes). Deterministic
/// only when every key carries a single distinct value — the shape used
/// to turn parsed records into a keyed dataset (e.g. a cached dimension
/// table or an iterative workload's initial state), where keys are
/// unique by construction and "first" is therefore "the" value.
#[derive(Debug, Default, Clone, Copy)]
pub struct FirstAgg;

impl Aggregator for FirstAgg {
    fn init(&self, _key: &[u8], value: &[u8]) -> Vec<u8> {
        value.to_vec()
    }

    fn update(&self, _key: &[u8], _state: &mut Vec<u8>, _value: &[u8]) {}

    fn merge(&self, _key: &[u8], _state: &mut Vec<u8>, _other: &[u8]) {}
}

/// Collect all values of a key as length-prefixed concatenation
/// (`[u32 len][bytes]`…). This models *holistic* reduce functions —
/// sessionization and inverted-list construction — whose state is linear
/// in the number of values and which have no effective combiner.
#[derive(Debug, Default, Clone, Copy)]
pub struct ListAgg;

impl ListAgg {
    /// Decode a list state back into its elements.
    pub fn decode(state: &[u8]) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let mut pos = 0;
        while pos < state.len() {
            let len = u32::from_le_bytes(state[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            out.push(state[pos..pos + len].to_vec());
            pos += len;
        }
        out
    }

    fn append(state: &mut Vec<u8>, value: &[u8]) {
        state.extend_from_slice(&(value.len() as u32).to_le_bytes());
        state.extend_from_slice(value);
    }
}

impl Aggregator for ListAgg {
    fn init(&self, _key: &[u8], value: &[u8]) -> Vec<u8> {
        let mut s = Vec::with_capacity(4 + value.len());
        Self::append(&mut s, value);
        s
    }

    fn update(&self, _key: &[u8], state: &mut Vec<u8>, value: &[u8]) {
        Self::append(state, value);
    }

    fn merge(&self, _key: &[u8], state: &mut Vec<u8>, other: &[u8]) {
        // Partial lists concatenate; element order across partials is not
        // semantically meaningful (MapReduce gives no value-order
        // guarantee within a group).
        state.extend_from_slice(other);
    }

    fn combinable(&self) -> bool {
        // A list combiner performs no data reduction ("intermediate data
        // is large due to the reorganization of all click logs", §III-A) —
        // report it as non-combinable so engines skip a useless pass.
        false
    }
}

/// AVG over little-endian u64 values: the canonical *algebraic* aggregate
/// — not itself distributive, but expressible as a mergeable (sum, count)
/// state, which is exactly the paper's "state usually sublinear in the
/// number of values aggregated" (§V). `finish` renders the mean as a
/// little-endian f64.
#[derive(Debug, Default, Clone, Copy)]
pub struct AvgAgg;

impl AvgAgg {
    fn decode(state: &[u8]) -> (u64, u64) {
        (
            u64::from_le_bytes(state[0..8].try_into().expect("16-byte avg state")),
            u64::from_le_bytes(state[8..16].try_into().expect("16-byte avg state")),
        )
    }

    fn encode(sum: u64, count: u64) -> Vec<u8> {
        let mut s = Vec::with_capacity(16);
        s.extend_from_slice(&sum.to_le_bytes());
        s.extend_from_slice(&count.to_le_bytes());
        s
    }

    /// Decode a finished output value back into the mean.
    pub fn decode_mean(out: &[u8]) -> f64 {
        f64::from_le_bytes(out.try_into().expect("8-byte mean"))
    }
}

impl Aggregator for AvgAgg {
    fn init(&self, _key: &[u8], value: &[u8]) -> Vec<u8> {
        Self::encode(dec_u64(value), 1)
    }

    fn update(&self, _key: &[u8], state: &mut Vec<u8>, value: &[u8]) {
        let (sum, count) = Self::decode(state);
        *state = Self::encode(sum + dec_u64(value), count + 1);
    }

    fn merge(&self, _key: &[u8], state: &mut Vec<u8>, other: &[u8]) {
        let (s1, c1) = Self::decode(state);
        let (s2, c2) = Self::decode(other);
        *state = Self::encode(s1 + s2, c1 + c2);
    }

    fn finish(&self, _key: &[u8], state: Vec<u8>) -> Vec<u8> {
        let (sum, count) = Self::decode(&state);
        let mean = if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        };
        mean.to_le_bytes().to_vec()
    }
}

/// COUNT(DISTINCT value) — approximate, via a HyperLogLog state. The
/// paper's incremental framework explicitly allows approximate
/// computation (§IV proposal (ii)); distinct counting is the aggregate
/// that requires it: the exact state is a set (linear in distinct
/// values), while this state is a fixed `1 + 2^p` bytes, mergeable, and
/// within ~`1.04/sqrt(2^p)` relative error. `finish` renders the
/// estimate as a little-endian u64.
#[derive(Debug, Clone, Copy)]
pub struct DistinctAgg {
    /// HyperLogLog precision (`4..=18`); state is `1 + 2^p` bytes.
    pub precision: u8,
}

impl Default for DistinctAgg {
    fn default() -> Self {
        DistinctAgg { precision: 12 }
    }
}

impl DistinctAgg {
    /// Decode a finished output value back into the distinct estimate.
    pub fn decode_estimate(out: &[u8]) -> u64 {
        u64::from_le_bytes(out.try_into().expect("8-byte estimate"))
    }
}

impl Aggregator for DistinctAgg {
    fn init(&self, _key: &[u8], value: &[u8]) -> Vec<u8> {
        let mut state = onepass_sketch::HyperLogLog::new(self.precision).to_bytes();
        onepass_sketch::HyperLogLog::insert_raw(&mut state, value);
        state
    }

    fn update(&self, _key: &[u8], state: &mut Vec<u8>, value: &[u8]) {
        let ok = onepass_sketch::HyperLogLog::insert_raw(state, value);
        debug_assert!(ok, "malformed HLL state");
    }

    fn merge(&self, _key: &[u8], state: &mut Vec<u8>, other: &[u8]) {
        let ok = onepass_sketch::HyperLogLog::merge_raw(state, other);
        debug_assert!(ok, "mismatched HLL states");
    }

    fn finish(&self, _key: &[u8], state: Vec<u8>) -> Vec<u8> {
        let est = onepass_sketch::HyperLogLog::from_bytes(&state)
            .map(|h| h.estimate().round() as u64)
            .unwrap_or(0);
        est.to_le_bytes().to_vec()
    }
}

/// Adapter for inputs that are already partial aggregate *states* (map-side
/// combine ran): `init`/`update` route to the inner aggregate's `merge`.
/// Lets any [`GroupBy`](crate::GroupBy) operator consume combined shuffle
/// segments without a separate code path.
#[derive(Debug, Clone)]
pub struct StateInput<A>(pub A);

impl<A: Aggregator> Aggregator for StateInput<A> {
    fn init(&self, _key: &[u8], value: &[u8]) -> Vec<u8> {
        value.to_vec()
    }

    fn update(&self, key: &[u8], state: &mut Vec<u8>, value: &[u8]) {
        self.0.merge(key, state, value);
    }

    fn merge(&self, key: &[u8], state: &mut Vec<u8>, other_state: &[u8]) {
        self.0.merge(key, state, other_state);
    }

    fn finish(&self, key: &[u8], state: Vec<u8>) -> Vec<u8> {
        self.0.finish(key, state)
    }

    fn combinable(&self) -> bool {
        self.0.combinable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_input_merges_partials() {
        let a = StateInput(SumAgg);
        // Two partial sums 5 and 7 arrive as "values".
        let mut s = a.init(b"k", &5u64.to_le_bytes());
        a.update(b"k", &mut s, &7u64.to_le_bytes());
        assert_eq!(dec_u64(&a.finish(b"k", s)), 12);

        let b = StateInput(CountAgg);
        // Partial counts 3 and 4 must add, not count-as-one.
        let mut s = b.init(b"k", &3u64.to_le_bytes());
        b.update(b"k", &mut s, &4u64.to_le_bytes());
        assert_eq!(dec_u64(&s), 7);
    }

    #[test]
    fn count_agg_counts_records() {
        let a = CountAgg;
        let mut s = a.init(b"k", b"whatever");
        a.update(b"k", &mut s, b"x");
        a.update(b"k", &mut s, b"y");
        assert_eq!(dec_u64(&s), 3);
        let other = a.init(b"k", b"z");
        a.merge(b"k", &mut s, &other);
        assert_eq!(dec_u64(&a.finish(b"k", s)), 4);
    }

    #[test]
    fn sum_agg_is_self_combining() {
        let a = SumAgg;
        let mut s = a.init(b"k", &5u64.to_le_bytes());
        a.update(b"k", &mut s, &7u64.to_le_bytes());
        // A partial sum used as a value gives the same result as merge.
        let mut s2 = s.clone();
        a.update(b"k", &mut s2, &100u64.to_le_bytes());
        let mut s3 = s.clone();
        a.merge(b"k", &mut s3, &100u64.to_le_bytes());
        assert_eq!(s2, s3);
        assert_eq!(dec_u64(&s2), 112);
    }

    #[test]
    fn max_agg() {
        let a = MaxAgg;
        let mut s = a.init(b"k", &5u64.to_le_bytes());
        a.update(b"k", &mut s, &3u64.to_le_bytes());
        assert_eq!(dec_u64(&s), 5);
        a.merge(b"k", &mut s, &9u64.to_le_bytes());
        assert_eq!(dec_u64(&s), 9);
    }

    #[test]
    fn distinct_agg_estimates_cardinality() {
        let a = DistinctAgg::default();
        let mut s = a.init(b"url", &0u32.to_le_bytes());
        for i in 1..2000u32 {
            a.update(b"url", &mut s, &i.to_le_bytes());
        }
        // Merge a partial covering 1000..3000 (overlap 1000..2000).
        let mut other = a.init(b"url", &1000u32.to_le_bytes());
        for i in 1001..3000u32 {
            a.update(b"url", &mut other, &i.to_le_bytes());
        }
        a.merge(b"url", &mut s, &other);
        let est = DistinctAgg::decode_estimate(&a.finish(b"url", s));
        let err = (est as f64 - 3000.0).abs() / 3000.0;
        assert!(err < 0.07, "estimate {est} vs 3000 (err {err:.3})");
        assert!(a.combinable());
    }

    #[test]
    fn avg_agg_is_algebraic() {
        let a = AvgAgg;
        let mut s = a.init(b"k", &10u64.to_le_bytes());
        a.update(b"k", &mut s, &20u64.to_le_bytes());
        // Merge a partial covering {30, 40}.
        let mut other = a.init(b"k", &30u64.to_le_bytes());
        a.update(b"k", &mut other, &40u64.to_le_bytes());
        a.merge(b"k", &mut s, &other);
        let mean = AvgAgg::decode_mean(&a.finish(b"k", s));
        assert!((mean - 25.0).abs() < 1e-12);
        assert!(a.combinable());
    }

    #[test]
    fn list_agg_roundtrip_and_merge() {
        let a = ListAgg;
        let mut s = a.init(b"k", b"one");
        a.update(b"k", &mut s, b"");
        a.update(b"k", &mut s, b"three");
        assert_eq!(
            ListAgg::decode(&s),
            vec![b"one".to_vec(), b"".to_vec(), b"three".to_vec()]
        );
        let other = a.init(b"k", b"four");
        a.merge(b"k", &mut s, &other);
        assert_eq!(ListAgg::decode(&s).len(), 4);
        assert!(!a.combinable());
        assert!(CountAgg.combinable());
    }
}
