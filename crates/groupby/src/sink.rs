//! Output sinks and operator statistics.

use onepass_core::io::IoStats;
use onepass_core::metrics::Profile;

/// Whether an emission is an early (incremental/approximate) answer or the
/// final answer for its key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitKind {
    /// Produced while input was still arriving — the one-pass analytics
    /// capability (online aggregation / stream answers).
    Early,
    /// Produced at `finish`; exact and complete for its key.
    Final,
}

/// Receives group-by output.
pub trait Sink {
    /// Receive one `(key, value)` emission.
    fn emit(&mut self, key: &[u8], value: &[u8], kind: EmitKind);
}

/// Collects emissions into a vector — tests and small jobs.
#[derive(Debug, Default)]
pub struct VecSink {
    /// All emissions in arrival order.
    pub emitted: Vec<(Vec<u8>, Vec<u8>, EmitKind)>,
}

impl VecSink {
    /// Number of early emissions.
    pub fn early_count(&self) -> usize {
        self.emitted
            .iter()
            .filter(|(_, _, k)| *k == EmitKind::Early)
            .count()
    }

    /// Number of final emissions.
    pub fn final_count(&self) -> usize {
        self.emitted
            .iter()
            .filter(|(_, _, k)| *k == EmitKind::Final)
            .count()
    }
}

impl Sink for VecSink {
    fn emit(&mut self, key: &[u8], value: &[u8], kind: EmitKind) {
        self.emitted.push((key.to_vec(), value.to_vec(), kind));
    }
}

/// A sink that forwards to a closure.
pub struct FnSink<F: FnMut(&[u8], &[u8], EmitKind)>(pub F);

impl<F: FnMut(&[u8], &[u8], EmitKind)> Sink for FnSink<F> {
    fn emit(&mut self, key: &[u8], value: &[u8], kind: EmitKind) {
        (self.0)(key, value, kind);
    }
}

/// A sink that counts emissions without storing them.
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Early emissions seen.
    pub early: u64,
    /// Final emissions seen.
    pub final_: u64,
    /// Total value bytes seen.
    pub bytes: u64,
}

impl Sink for CountingSink {
    fn emit(&mut self, key: &[u8], value: &[u8], kind: EmitKind) {
        match kind {
            EmitKind::Early => self.early += 1,
            EmitKind::Final => self.final_ += 1,
        }
        self.bytes += (key.len() + value.len()) as u64;
    }
}

/// Statistics reported by a finished group-by operator.
#[derive(Debug, Default, Clone)]
pub struct OpStats {
    /// Records consumed via `push`.
    pub records_in: u64,
    /// Distinct groups emitted as final answers.
    pub groups_out: u64,
    /// Early emissions produced before `finish`.
    pub early_emits: u64,
    /// Spill I/O attributable to this operator (delta over its store).
    pub io: IoStats,
    /// Per-phase CPU timings.
    pub profile: Profile,
    /// Peak memory-budget usage observed (bytes).
    pub peak_mem: usize,
    /// Number of spill events (runs written).
    pub spills: u64,
    /// Merge/recursion passes performed at finish.
    pub passes: u64,
}

impl OpStats {
    /// Bytes of intermediate data written + read back (the paper's
    /// headline reduce-side I/O metric).
    pub fn spill_traffic(&self) -> u64 {
        self.io.bytes_written + self.io.bytes_read
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_partitions_kinds() {
        let mut s = VecSink::default();
        s.emit(b"a", b"1", EmitKind::Early);
        s.emit(b"a", b"2", EmitKind::Final);
        s.emit(b"b", b"3", EmitKind::Final);
        assert_eq!(s.early_count(), 1);
        assert_eq!(s.final_count(), 2);
    }

    #[test]
    fn counting_sink_accumulates() {
        let mut s = CountingSink::default();
        s.emit(b"key", b"value", EmitKind::Final);
        s.emit(b"k", b"", EmitKind::Early);
        assert_eq!(s.final_, 1);
        assert_eq!(s.early, 1);
        assert_eq!(s.bytes, 3 + 5 + 1);
    }

    #[test]
    fn fn_sink_forwards() {
        let mut seen = Vec::new();
        {
            let mut s = FnSink(|k: &[u8], _v: &[u8], _kind| seen.push(k.to_vec()));
            s.emit(b"x", b"1", EmitKind::Final);
        }
        assert_eq!(seen, vec![b"x".to_vec()]);
    }

    #[test]
    fn spill_traffic_sums_both_directions() {
        let st = OpStats {
            io: IoStats {
                bytes_written: 10,
                bytes_read: 7,
                ..Default::default()
            },
            ..Default::default()
        };
        assert_eq!(st.spill_traffic(), 17);
    }
}
