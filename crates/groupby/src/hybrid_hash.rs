//! Hybrid Hash group-by (Shapiro 1986) — §V map option 2 / reduce
//! technique 1.
//!
//! "Our system uses Hybrid Hash to group key-value pairs by key. This
//! method works with or without a combine function, but is still blocking
//! and results in an I/O cost comparable to the sort-merge based
//! implementation in Hadoop."
//!
//! The variant implemented here is the dynamic (Grace-degrading) form that
//! a streaming operator needs, since input size is unknown up front:
//!
//! 1. Start fully resident: per-key aggregate states in a hash table.
//! 2. On budget exhaustion, *partition*: keys hashing to bucket 0 (under
//!    the current level's hash function) stay resident; the states of all
//!    other buckets are spilled, and subsequent records route by hash —
//!    bucket 0 updates in memory, buckets 1..B append to spill runs.
//! 3. `finish` emits resident groups, then recursively processes each
//!    spilled bucket with the *next* hash function of the family (pairwise
//!    independence across levels is what guarantees the recursion splits).
//!
//! Spilled records are tagged raw-value vs partial-state so recursion can
//! replay them through [`Aggregator::update`] / [`Aggregator::merge`]
//! respectively. In the common case the data fits and "Hybrid Hash is
//! simply in-memory hashing" (§V) with zero I/O and no sort CPU.

use std::sync::Arc;

use onepass_core::error::{Error, Result};
use onepass_core::hashlib::{fingerprint, ByteMap, FamilyHasher, KeyHasher, SeededFamily};
use onepass_core::io::{IoStats, RunMeta, RunWriter, SpillStore};
use onepass_core::memory::MemoryBudget;
use onepass_core::metrics::{Phase, Profile};
use onepass_core::trace::LocalTracer;
use onepass_core::SegmentBuf;

use crate::aggregate::Aggregator;
use crate::sink::{EmitKind, OpStats, Sink};
use crate::GroupBy;

/// Per-key bookkeeping overhead charged to the budget (hash table slot).
const STATE_OVERHEAD: usize = 48;

/// Tag byte for spilled payloads: a raw, un-aggregated value.
pub(crate) const TAG_RAW: u8 = 0;
/// Tag byte for spilled payloads: a partial aggregate state.
pub(crate) const TAG_STATE: u8 = 1;

/// Recursion-depth safety valve. With pairwise-independent per-level hash
/// functions, depth grows logarithmically; hitting this indicates a broken
/// hash family rather than data skew (a single giant key stays resident).
const MAX_DEPTH: u32 = 64;

/// The Hybrid Hash group-by operator.
pub struct HybridHashGrouper {
    store: Arc<dyn SpillStore>,
    budget: MemoryBudget,
    agg: Arc<dyn Aggregator>,
    family: SeededFamily,
    /// Cached member hasher for this recursion level. Constructed once in
    /// [`Self::at_level`]; per-record probes reuse it via the fingerprint
    /// fast path instead of re-deriving the member (which for tabulation
    /// hashing would rebuild 16 KiB of tables per call).
    hasher: FamilyHasher,
    fanout: usize,
    level: u32,
    resident: ByteMap<Vec<u8>>,
    /// Bytes granted from the budget for `resident`.
    reserved: usize,
    peak_reserved: usize,
    /// `None` until the first partition event; afterwards one writer per
    /// bucket: index 0 holds the *overflow* of bucket-0 keys that could
    /// not stay resident (they redistribute under the next level's hash),
    /// indices 1..fanout hold their buckets' records.
    spill: Option<Vec<Box<dyn RunWriter>>>,
    /// Bucket-0 keys with records in run 0 (the bucket-0 overflow). A
    /// resident key in this set is incomplete: at emit time its partial
    /// state is flushed to run 0 for the child pass to merge, instead of
    /// being emitted here. Without this, a key whose admission *flips*
    /// mid-stream (possible once a shed or a governor limit-raise frees
    /// budget) would get two Finals — one here, one from the run-0 child.
    run0_keys: ByteMap<()>,
    records_in: u64,
    groups_out: u64,
    spills: u64,
    passes: u64,
    profile: Profile,
    io_base: IoStats,
    trace: LocalTracer,
}

impl std::fmt::Debug for HybridHashGrouper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridHashGrouper")
            .field("level", &self.level)
            .field("resident_keys", &self.resident.len())
            .field("partitioned", &self.spill.is_some())
            .finish()
    }
}

impl HybridHashGrouper {
    /// Create a hybrid-hash grouper with bucket fanout `fanout` (≥ 2).
    pub fn new(
        store: Arc<dyn SpillStore>,
        budget: MemoryBudget,
        fanout: usize,
        agg: Arc<dyn Aggregator>,
    ) -> Result<Self> {
        Self::at_level(store, budget, fanout, agg, SeededFamily::default(), 0)
    }

    /// Like [`Self::new`] but probing with an explicit hash family (see
    /// `EngineConfigBuilder::hash_family`).
    pub fn with_family(
        store: Arc<dyn SpillStore>,
        budget: MemoryBudget,
        fanout: usize,
        agg: Arc<dyn Aggregator>,
        family: SeededFamily,
    ) -> Result<Self> {
        Self::at_level(store, budget, fanout, agg, family, 0)
    }

    fn at_level(
        store: Arc<dyn SpillStore>,
        budget: MemoryBudget,
        fanout: usize,
        agg: Arc<dyn Aggregator>,
        family: SeededFamily,
        level: u32,
    ) -> Result<Self> {
        if fanout < 2 {
            return Err(Error::Config(format!(
                "hybrid hash fanout must be ≥ 2, got {fanout}"
            )));
        }
        if level > MAX_DEPTH {
            return Err(Error::InvalidState(format!(
                "hybrid hash recursion exceeded depth {MAX_DEPTH}"
            )));
        }
        let io_base = store.stats();
        let hasher = family.member(level as u64);
        Ok(HybridHashGrouper {
            store,
            budget,
            agg,
            family,
            hasher,
            fanout,
            level,
            resident: ByteMap::default(),
            reserved: 0,
            peak_reserved: 0,
            spill: None,
            run0_keys: ByteMap::default(),
            records_in: 0,
            groups_out: 0,
            spills: 0,
            passes: 0,
            profile: Profile::new(),
            io_base,
            trace: LocalTracer::disabled(),
        })
    }

    /// Attach a trace buffer; partition/reload events land on its track.
    pub fn set_tracer(&mut self, trace: LocalTracer) {
        self.trace = trace;
    }

    fn state_cost(key: &[u8], state: &[u8]) -> usize {
        key.len() + state.len() + STATE_OVERHEAD
    }

    /// Update or create the resident state for `key`, charging the budget
    /// for growth. Returns `false` (leaving state untouched) if the key is
    /// new and the budget cannot take it.
    fn try_absorb(&mut self, key: &[u8], payload: &[u8], tag: u8) -> Result<bool> {
        if let Some(state) = self.resident.get_mut(key) {
            let before = state.len();
            match tag {
                TAG_RAW => self.agg.update(key, state, payload),
                _ => self.agg.merge(key, state, payload),
            }
            let after = state.len();
            if after > before {
                // In-place growth of an existing resident state must not
                // fail mid-update; force the charge (soft limit) — the
                // overshoot makes the next new key trigger partitioning.
                let diff = after - before;
                self.budget.force_grant(diff);
                self.reserved += diff;
            } else if before > after {
                self.budget.release(before - after);
                self.reserved -= before - after;
            }
            self.peak_reserved = self.peak_reserved.max(self.reserved);
            return Ok(true);
        }
        // New key.
        let state = match tag {
            TAG_RAW => self.agg.init(key, payload),
            _ => payload.to_vec(),
        };
        let cost = Self::state_cost(key, &state);
        // Escalate to the governor (if leased) before partitioning or
        // spilling the record. The *first* key of a level is exempt and
        // force-charged (soft limit): recursion only terminates if every
        // level can keep at least one group resident — under a fully
        // subscribed shared pool a denied first key would re-spill a
        // single-key bucket unchanged, level after level, until the
        // depth cap trips.
        if !self.budget.try_grant_or_request(cost) {
            if !self.resident.is_empty() {
                return Ok(false);
            }
            self.budget.force_grant(cost);
        }
        self.reserved += cost;
        self.peak_reserved = self.peak_reserved.max(self.reserved);
        self.resident.insert(key.to_vec(), state);
        Ok(true)
    }

    /// Bucket for a precomputed key fingerprint at this recursion level
    /// (0 = resident).
    fn bucket_fp(&self, fp: u64) -> usize {
        self.hasher.bucket_fp(fp, self.fanout)
    }

    /// First budget exhaustion: open spill writers and evict every
    /// resident state whose key does not hash to bucket 0.
    fn partition(&mut self) -> Result<()> {
        let hash_start = std::time::Instant::now();
        let mut writers = Vec::with_capacity(self.fanout);
        for _ in 0..self.fanout {
            writers.push(self.store.begin_run()?);
        }
        let evicted: Vec<(Vec<u8>, usize)> = self
            .resident
            .keys()
            .map(|k| (k.clone(), self.hasher.bucket(k, self.fanout)))
            .filter(|(_, b)| *b != 0)
            .collect();
        self.trace.instant(
            "partition",
            "spill",
            &[
                ("level", self.level as f64),
                ("evicted_keys", evicted.len() as f64),
            ],
        );
        for (key, b) in evicted {
            let state = self.resident.remove(&key).expect("key just listed");
            let mut payload = Vec::with_capacity(1 + state.len());
            payload.push(TAG_STATE);
            payload.extend_from_slice(&state);
            writers[b].write_record(&key, &payload)?;
            let cost = Self::state_cost(&key, &state);
            self.budget.release(cost);
            self.reserved -= cost;
        }
        self.spill = Some(writers);
        self.spills += 1;
        self.profile.add_time(Phase::MapHash, hash_start.elapsed());
        Ok(())
    }

    fn spill_record(&mut self, key: &[u8], fp: u64, value: &[u8], tag: u8) -> Result<()> {
        // Bucket-0 keys that could not stay resident overflow into run 0:
        // keeping them separate from bucket 1..B is what guarantees each
        // child sees at most ~1/fanout of this level's keys (merging them
        // into another bucket would let tiny budgets recurse almost
        // without shrinking).
        let b = self.bucket_fp(fp);
        if b == 0 {
            self.run0_keys.insert(key.to_vec(), ());
        }
        let writers = self.spill.as_mut().expect("partitioned");
        let mut payload = Vec::with_capacity(1 + value.len());
        payload.push(tag);
        payload.extend_from_slice(value);
        writers[b].write_record(key, &payload)
    }

    /// Push a record whose payload is either a raw value (`tag` =
    /// [`TAG_RAW`]) or a partial aggregate state (`tag` = [`TAG_STATE`]).
    /// Used by `freq_hash` to hand off its cold buckets, and internally
    /// for recursion. Callers must count `records_in` themselves if they
    /// care about it.
    pub(crate) fn push_tagged(&mut self, key: &[u8], payload: &[u8], tag: u8) -> Result<()> {
        self.push_tagged_fp(key, fingerprint(key), payload, tag)
    }

    /// [`Self::push_tagged`] with the key's fingerprint already computed —
    /// the batched entry points hash each record once and reuse the value
    /// for routing and probing.
    pub(crate) fn push_tagged_fp(
        &mut self,
        key: &[u8],
        fp: u64,
        payload: &[u8],
        tag: u8,
    ) -> Result<()> {
        if self.spill.is_none() {
            if self.try_absorb(key, payload, tag)? {
                return Ok(());
            }
            self.partition()?;
            // Fall through: route the record that triggered partitioning.
        }
        // Partitioned mode: bucket 0 keys update resident state when
        // possible; everything else goes to its bucket's run.
        if self.bucket_fp(fp) == 0 && self.try_absorb(key, payload, tag)? {
            return Ok(());
        }
        self.spill_record(key, fp, payload, tag)
    }

    /// Emit all resident groups and drop their budget reservation.
    /// Residents with records in run 0 are incomplete — their partial
    /// state goes to run 0 for the child pass to merge and emit exactly
    /// once.
    fn emit_resident(&mut self, sink: &mut dyn Sink) -> Result<()> {
        let reduce_start = std::time::Instant::now();
        let resident = std::mem::take(&mut self.resident);
        for (key, state) in resident {
            if !self.run0_keys.is_empty() && self.run0_keys.contains_key(&key) {
                let mut payload = Vec::with_capacity(1 + state.len());
                payload.push(TAG_STATE);
                payload.extend_from_slice(&state);
                self.spill.as_mut().expect("run0_keys implies partitioned")[0]
                    .write_record(&key, &payload)?;
                continue;
            }
            let out = self.agg.finish(&key, state);
            sink.emit(&key, &out, EmitKind::Final);
            self.groups_out += 1;
        }
        self.budget.release(self.reserved);
        self.reserved = 0;
        self.profile
            .add_time(Phase::ReduceFn, reduce_start.elapsed());
        Ok(())
    }
}

impl GroupBy for HybridHashGrouper {
    fn push_batch(&mut self, batch: &SegmentBuf, _sink: &mut dyn Sink) -> Result<()> {
        self.records_in += batch.len() as u64;
        for (key, value) in batch.iter() {
            // Hash once per record; the fingerprint is reused for bucket
            // routing here and (post-partition) for spill routing.
            let fp = fingerprint(key);
            self.push_tagged_fp(key, fp, value, TAG_RAW)?;
        }
        // Advertise how much one shed would free (the whole resident
        // table) so the governor's LargestBucket policy can rank victims.
        self.budget.publish_shed_unit(self.reserved);
        Ok(())
    }

    fn shed(&mut self, target_bytes: usize) -> Result<usize> {
        let start = self.reserved;
        if self.spill.is_none() {
            if self.resident.is_empty() {
                return Ok(0);
            }
            // Partitioning *is* the natural shed: every non-bucket-0
            // state moves to its bucket's run.
            self.partition()?;
        }
        let mut freed = start - self.reserved;
        if freed < target_bytes && !self.resident.is_empty() {
            // Still short: evict bucket-0 residents into run 0 (their
            // overflow run) as partial states. `run0_keys` keeps any
            // later re-admission of these keys correct.
            let mut victims: Vec<Vec<u8>> = Vec::new();
            let mut planned = freed;
            for (k, v) in self.resident.iter() {
                if planned >= target_bytes {
                    break;
                }
                planned += Self::state_cost(k, v);
                victims.push(k.clone());
            }
            for k in victims {
                let state = self.resident.remove(&k).expect("key just listed");
                let mut payload = Vec::with_capacity(1 + state.len());
                payload.push(TAG_STATE);
                payload.extend_from_slice(&state);
                self.run0_keys.insert(k.clone(), ());
                self.spill.as_mut().expect("partitioned")[0].write_record(&k, &payload)?;
                let cost = Self::state_cost(&k, &state);
                self.budget.release(cost);
                self.reserved -= cost;
                freed += cost;
            }
        }
        self.budget.publish_shed_unit(self.reserved);
        Ok(freed)
    }

    fn finish(&mut self, sink: &mut dyn Sink) -> Result<OpStats> {
        self.emit_resident(sink)?;

        let mut groups_out = self.groups_out;
        let mut spills = self.spills;
        let mut passes = self.passes;
        let mut profile = self.profile.clone();

        if let Some(writers) = self.spill.take() {
            let metas: Vec<RunMeta> = writers
                .into_iter()
                .map(|w| w.finish())
                .collect::<Result<_>>()?;
            for meta in metas {
                if meta.records == 0 {
                    self.store.delete_run(meta.id)?;
                    continue;
                }
                passes += 1;
                self.trace.instant(
                    "bucket_reload",
                    "spill",
                    &[
                        ("level", self.level as f64),
                        ("bytes", meta.bytes as f64),
                        ("records", meta.records as f64),
                    ],
                );
                // Recurse with the next hash function.
                let mut child = HybridHashGrouper::at_level(
                    Arc::clone(&self.store),
                    self.budget.clone(),
                    self.fanout,
                    Arc::clone(&self.agg),
                    self.family.clone(),
                    self.level + 1,
                )?;
                child.set_tracer(self.trace.fork());
                {
                    let mut reader = self.store.open_run(meta.id)?;
                    while let Some(rec) = reader.next_record()? {
                        let (tag, payload) = rec
                            .value
                            .split_first()
                            .ok_or_else(|| Error::Corrupt("untagged spill record".into()))?;
                        // Borrow juggling: copy key/payload out of the
                        // reader's scratch before pushing into the child.
                        let key = rec.key.to_vec();
                        let payload = payload.to_vec();
                        let tag = *tag;
                        child.push_tagged(&key, &payload, tag)?;
                    }
                }
                self.store.delete_run(meta.id)?;
                let child_stats = child.finish(sink)?;
                groups_out += child_stats.groups_out;
                spills += child_stats.spills;
                passes += child_stats.passes;
                profile.merge(&child_stats.profile);
            }
        }

        let io_now = self.store.stats();
        Ok(OpStats {
            records_in: self.records_in,
            groups_out,
            early_emits: 0, // hybrid hash is blocking, like sort-merge
            io: IoStats {
                bytes_written: io_now.bytes_written - self.io_base.bytes_written,
                bytes_read: io_now.bytes_read - self.io_base.bytes_read,
                runs_created: io_now.runs_created - self.io_base.runs_created,
                runs_deleted: io_now.runs_deleted - self.io_base.runs_deleted,
            },
            profile,
            peak_mem: self.peak_reserved,
            spills,
            passes,
        })
    }

    fn name(&self) -> &'static str {
        "hybrid-hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{CountAgg, ListAgg};
    use crate::test_support::{count_truth, dec_u64, pairs, run_op};
    use onepass_core::io::SharedMemStore;

    fn records(n: u32, distinct: u32) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    format!("key{:05}", i.wrapping_mul(2_654_435_761) % distinct).into_bytes(),
                    format!("v{i}").into_bytes(),
                )
            })
            .collect()
    }

    fn grouper(budget: usize, fanout: usize) -> (HybridHashGrouper, SharedMemStore) {
        let store = SharedMemStore::new();
        let g = HybridHashGrouper::new(
            Arc::new(store.clone()),
            MemoryBudget::new(budget),
            fanout,
            Arc::new(CountAgg),
        )
        .unwrap();
        (g, store)
    }

    #[test]
    fn in_memory_when_data_fits() {
        let (mut g, store) = grouper(1 << 20, 8);
        let recs = records(500, 20);
        let (out, stats, _) = run_op(&mut g, pairs(&recs));
        assert_eq!(out.len(), 20);
        for (k, c) in count_truth(pairs(&recs)) {
            assert_eq!(dec_u64(&out[&k]), c);
        }
        assert_eq!(
            stats.io.bytes_written, 0,
            "in-memory hybrid hash spills nothing"
        );
        assert_eq!(store.live_runs(), 0);
    }

    #[test]
    fn partitions_and_recurses_under_pressure() {
        let (mut g, store) = grouper(1200, 4);
        let recs = records(2000, 300);
        let (out, stats, _) = run_op(&mut g, pairs(&recs));
        assert_eq!(out.len(), 300);
        for (k, c) in count_truth(pairs(&recs)) {
            assert_eq!(dec_u64(&out[&k]), c, "count mismatch for {k:?}");
        }
        assert!(
            stats.spills >= 1,
            "budget pressure must trigger partitioning"
        );
        assert!(stats.io.bytes_written > 0);
        assert!(stats.passes >= 1, "spilled buckets must be recursed");
        assert_eq!(store.live_runs(), 0, "all runs must be cleaned up");
    }

    #[test]
    fn no_sort_cpu_is_charged() {
        let (mut g, _) = grouper(900, 4);
        let recs = records(1500, 200);
        let (_, stats, _) = run_op(&mut g, pairs(&recs));
        assert_eq!(
            stats.profile.time(Phase::MapSort),
            std::time::Duration::ZERO,
            "hash grouping must never sort"
        );
    }

    #[test]
    fn heavy_single_key_stays_resident() {
        // One key dominating the stream must not cause unbounded
        // recursion: its state lives in memory and absorbs everything.
        let (mut g, _) = grouper(800, 4);
        let recs: Vec<_> = (0..5000u32)
            .map(|i| (b"hot".to_vec(), i.to_le_bytes().to_vec()))
            .collect();
        let (out, stats, _) = run_op(&mut g, pairs(&recs));
        assert_eq!(out.len(), 1);
        assert_eq!(dec_u64(&out[b"hot".as_slice()]), 5000);
        assert_eq!(stats.io.bytes_written, 0);
    }

    #[test]
    fn list_agg_under_pressure_collects_everything() {
        let store = SharedMemStore::new();
        let mut g = HybridHashGrouper::new(
            Arc::new(store.clone()),
            MemoryBudget::new(2500),
            4,
            Arc::new(ListAgg),
        )
        .unwrap();
        let recs = records(400, 80);
        let (out, _, _) = run_op(&mut g, pairs(&recs));
        assert_eq!(out.len(), 80);
        let total: usize = out.values().map(|v| ListAgg::decode(v).len()).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn fanout_below_two_rejected() {
        let store: Arc<dyn SpillStore> = Arc::new(SharedMemStore::new());
        assert!(
            HybridHashGrouper::new(store, MemoryBudget::unlimited(), 1, Arc::new(CountAgg))
                .is_err()
        );
    }

    #[test]
    fn empty_input() {
        let (mut g, _) = grouper(1024, 4);
        let (out, stats, _) = run_op(&mut g, pairs(&[]));
        assert!(out.is_empty());
        assert_eq!(stats.records_in, 0);
    }

    #[test]
    fn recursion_terminates_on_adversarial_distincts() {
        // Millions of distinct keys relative to the budget: recursion
        // must keep splitting (independent hash per level) and finish.
        let store = SharedMemStore::new();
        let mut g = HybridHashGrouper::new(
            Arc::new(store.clone()),
            MemoryBudget::new(600),
            2, // minimal fanout: deepest possible recursion
            Arc::new(CountAgg),
        )
        .unwrap();
        let recs: Vec<_> = (0..3000u32)
            .map(|i| (i.to_le_bytes().to_vec(), b"v".to_vec()))
            .collect();
        let (out, stats, _) = run_op(&mut g, pairs(&recs));
        assert_eq!(out.len(), 3000);
        assert!(stats.passes > 1, "expected recursive passes");
        assert_eq!(store.live_runs(), 0);
    }

    #[test]
    fn budget_fully_released() {
        let budget = MemoryBudget::new(1500);
        let store = SharedMemStore::new();
        let mut g =
            HybridHashGrouper::new(Arc::new(store), budget.clone(), 4, Arc::new(CountAgg)).unwrap();
        let recs = records(1000, 150);
        let _ = run_op(&mut g, pairs(&recs));
        assert_eq!(budget.used(), 0);
    }
}
