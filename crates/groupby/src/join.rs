//! Equi-join as a group-by aggregate — the two-input stage type.
//!
//! A hash equi-join *is* a group-by on the join key: tag each input
//! record with its side, group by key, and emit the cross product of
//! the two sides per group. Encoding the side in the value
//! ([`TAG_BUILD`] / [`TAG_PROBE`], see [`encode_tagged`]) lets the join
//! ride every existing [`GroupBy`](crate::GroupBy) backend unchanged —
//! in particular Shapiro's hybrid hash
//! ([`HybridHashGrouper`](crate::HybridHashGrouper)), the classic join
//! algorithm the backend was named for: the build side's resident
//! bucket stays in memory, overflow buckets spill and recurse, and the
//! probe side streams through.
//!
//! [`JoinAgg`] is holistic (state linear in group size, like
//! [`ListAgg`](crate::ListAgg)) but still *mergeable*: partial states
//! concatenate, and [`JoinAgg::finish`] sorts both sides before taking
//! the cross product, so output bytes are independent of arrival and
//! merge order — the determinism contract the plan-equivalence suite
//! relies on.

use crate::aggregate::Aggregator;

/// Value tag for the build (dimension) side of a join.
pub const TAG_BUILD: u8 = 0;
/// Value tag for the probe (fact) side of a join.
pub const TAG_PROBE: u8 = 1;

/// Prefix `payload` with its side tag: `[u8 tag][payload]`.
pub fn encode_tagged(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(1 + payload.len());
    v.push(tag);
    v.extend_from_slice(payload);
    v
}

/// Split a tagged value back into `(tag, payload)`; `None` if empty.
pub fn decode_tagged(value: &[u8]) -> Option<(u8, &[u8])> {
    value.split_first().map(|(&t, rest)| (t, rest))
}

/// Inner equi-join per key group.
///
/// Input values are tagged ([`encode_tagged`]); state is a framed list
/// of tagged values (`[u32 len][tag+payload]`…, concatenation-mergeable);
/// the final output is the per-key cross product as framed
/// `(build, probe)` pairs — decode with [`JoinAgg::decode_joined`].
/// Keys with only one side present produce an empty output (inner-join
/// semantics).
#[derive(Debug, Default, Clone, Copy)]
pub struct JoinAgg;

impl JoinAgg {
    fn frame(out: &mut Vec<u8>, entry: &[u8]) {
        out.extend_from_slice(&(entry.len() as u32).to_le_bytes());
        out.extend_from_slice(entry);
    }

    fn unframe(buf: &[u8]) -> Vec<&[u8]> {
        let mut entries = Vec::new();
        let mut i = 0;
        while i + 4 <= buf.len() {
            let len = u32::from_le_bytes(buf[i..i + 4].try_into().unwrap()) as usize;
            let end = (i + 4 + len).min(buf.len());
            entries.push(&buf[i + 4..end]);
            i = end;
        }
        entries
    }

    /// Decode a final output into `(build, probe)` payload pairs.
    pub fn decode_joined(out: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let entries = Self::unframe(out);
        entries
            .chunks_exact(2)
            .map(|p| (p[0].to_vec(), p[1].to_vec()))
            .collect()
    }
}

impl Aggregator for JoinAgg {
    fn init(&self, _key: &[u8], value: &[u8]) -> Vec<u8> {
        let mut state = Vec::with_capacity(4 + value.len());
        Self::frame(&mut state, value);
        state
    }

    fn update(&self, _key: &[u8], state: &mut Vec<u8>, value: &[u8]) {
        Self::frame(state, value);
    }

    fn merge(&self, _key: &[u8], state: &mut Vec<u8>, other: &[u8]) {
        state.extend_from_slice(other);
    }

    fn finish(&self, _key: &[u8], state: Vec<u8>) -> Vec<u8> {
        let mut build = Vec::new();
        let mut probe = Vec::new();
        for entry in Self::unframe(&state) {
            match decode_tagged(entry) {
                Some((TAG_BUILD, payload)) => build.push(payload),
                Some((TAG_PROBE, payload)) => probe.push(payload),
                _ => {}
            }
        }
        build.sort_unstable();
        probe.sort_unstable();
        let mut out = Vec::new();
        for b in &build {
            for p in &probe {
                Self::frame(&mut out, b);
                Self::frame(&mut out, p);
            }
        }
        out
    }

    fn combinable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::run_op;
    use crate::HybridHashGrouper;
    use onepass_core::io::SharedMemStore;
    use onepass_core::memory::MemoryBudget;
    use std::sync::Arc;

    fn tagged_records() -> Vec<(Vec<u8>, Vec<u8>)> {
        vec![
            (b"k1".to_vec(), encode_tagged(TAG_BUILD, b"dim-a")),
            (b"k1".to_vec(), encode_tagged(TAG_PROBE, b"f1")),
            (b"k1".to_vec(), encode_tagged(TAG_PROBE, b"f2")),
            (b"k2".to_vec(), encode_tagged(TAG_PROBE, b"orphan")),
            (b"k3".to_vec(), encode_tagged(TAG_BUILD, b"dim-b")),
        ]
    }

    #[test]
    fn cross_product_per_key_through_hybrid_hash() {
        let mut op = HybridHashGrouper::new(
            Arc::new(SharedMemStore::new()),
            MemoryBudget::new(1 << 20),
            4,
            Arc::new(JoinAgg),
        )
        .unwrap();
        let records = tagged_records();
        let (out, _, _) = run_op(
            &mut op,
            records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        );
        let k1 = JoinAgg::decode_joined(&out[b"k1".as_slice()]);
        assert_eq!(
            k1,
            vec![
                (b"dim-a".to_vec(), b"f1".to_vec()),
                (b"dim-a".to_vec(), b"f2".to_vec()),
            ]
        );
        // One-sided keys join to nothing.
        assert!(JoinAgg::decode_joined(&out[b"k2".as_slice()]).is_empty());
        assert!(JoinAgg::decode_joined(&out[b"k3".as_slice()]).is_empty());
    }

    #[test]
    fn finish_is_order_insensitive() {
        let agg = JoinAgg;
        let values = [
            encode_tagged(TAG_PROBE, b"p2"),
            encode_tagged(TAG_BUILD, b"b1"),
            encode_tagged(TAG_PROBE, b"p1"),
            encode_tagged(TAG_BUILD, b"b2"),
        ];
        let fold = |order: &[usize]| {
            let mut state = agg.init(b"k", &values[order[0]]);
            for &i in &order[1..] {
                agg.update(b"k", &mut state, &values[i]);
            }
            agg.finish(b"k", state)
        };
        let a = fold(&[0, 1, 2, 3]);
        let b = fold(&[3, 2, 1, 0]);
        assert_eq!(a, b);
        assert_eq!(JoinAgg::decode_joined(&a).len(), 4);
    }

    #[test]
    fn partial_states_merge_like_one_state() {
        let agg = JoinAgg;
        let mut a = agg.init(b"k", &encode_tagged(TAG_BUILD, b"b"));
        let s = agg.init(b"k", &encode_tagged(TAG_PROBE, b"p1"));
        let mut one = a.clone();
        agg.update(b"k", &mut one, &encode_tagged(TAG_PROBE, b"p1"));
        agg.merge(b"k", &mut a, &s);
        assert_eq!(agg.finish(b"k", a), agg.finish(b"k", one));
    }
}
