//! External multi-pass merge — the reduce-side half of Hadoop's sort-merge.
//!
//! §II-A: "As the reducer's buffer fills up, these sorted pieces of data
//! are merged and written to a file on disk. A background thread merges
//! these on-disk files progressively whenever the number of such files
//! exceeds a threshold F. […] it completes by merging these on-disk files
//! and feeding sorted data directly into the reduce function."
//!
//! [`MultiPassMerger`] reproduces exactly that policy: sorted runs are
//! registered as they are produced; whenever the on-disk run count reaches
//! the merge factor `F`, the `F` smallest runs are merged into one (each
//! such pass re-reads and re-writes every byte it touches — the I/O
//! amplification the paper measures as 370 GB for sessionization); the
//! final merge streams groups straight to the consumer without writing.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use onepass_core::error::{Error, Result};
use onepass_core::io::{RunMeta, RunReader, SpillStore};
use onepass_core::metrics::{Phase, Profile};
use onepass_core::SegmentBuf;

/// Bytes of arena data pulled from each run per [`RunReader::read_batch`]
/// call. One allocation per batch replaces two allocations per record in
/// the merge inner loop.
const MERGE_BATCH_BYTES: usize = 256 * 1024;

/// Policy + bookkeeping for multi-pass merging of sorted runs.
pub struct MultiPassMerger {
    store: Arc<dyn SpillStore>,
    factor: usize,
    runs: Vec<RunMeta>,
    profile: Profile,
    merge_passes: u64,
}

impl std::fmt::Debug for MultiPassMerger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiPassMerger")
            .field("factor", &self.factor)
            .field("runs", &self.runs.len())
            .field("merge_passes", &self.merge_passes)
            .finish()
    }
}

impl MultiPassMerger {
    /// Create a merger over `store` with merge factor `factor` (≥ 2).
    pub fn new(store: Arc<dyn SpillStore>, factor: usize) -> Result<Self> {
        if factor < 2 {
            return Err(Error::Config(format!(
                "merge factor must be ≥ 2, got {factor}"
            )));
        }
        Ok(MultiPassMerger {
            store,
            factor,
            runs: Vec::new(),
            profile: Profile::new(),
            merge_passes: 0,
        })
    }

    /// Register a sorted run. If the on-disk run count reaches `F`, a
    /// background-style merge pass combines the `F` smallest runs into one
    /// — matching Hadoop's progressive merging *before* all input arrives.
    pub fn add_run(&mut self, meta: RunMeta) -> Result<()> {
        self.runs.push(meta);
        while self.runs.len() >= self.factor {
            self.merge_pass(self.factor)?;
        }
        Ok(())
    }

    /// Runs currently on disk.
    pub fn runs(&self) -> &[RunMeta] {
        &self.runs
    }

    /// Completed intermediate merge passes.
    pub fn merge_passes(&self) -> u64 {
        self.merge_passes
    }

    /// Accumulated merge CPU profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Merge the `width` smallest runs into one new on-disk run.
    fn merge_pass(&mut self, width: usize) -> Result<()> {
        let width = width.min(self.runs.len());
        if width < 2 {
            return Ok(());
        }
        // Merge the smallest runs first (Hadoop's io.sort.factor policy):
        // sort descending and take from the tail so removal is O(1).
        self.runs.sort_by_key(|r| std::cmp::Reverse(r.bytes));
        let victims: Vec<RunMeta> = self.runs.split_off(self.runs.len() - width);

        let timer_start = std::time::Instant::now();
        let mut writer = self.store.begin_run()?;
        {
            let mut cursor = MergeCursor::open(self.store.as_ref(), &victims)?;
            while let Some((batch, i)) = cursor.next_pair()? {
                let (key, value) = batch.get(i);
                writer.write_record(key, value)?;
            }
        }
        let merged = writer.finish()?;
        for v in &victims {
            self.store.delete_run(v.id)?;
        }
        self.profile.add_time(Phase::Merge, timer_start.elapsed());
        self.merge_passes += 1;
        self.runs.push(merged);
        Ok(())
    }

    /// Final merge: ensure at most `F` runs remain on disk (merging in
    /// passes if needed — §II-A: "it will perform a multi-pass merge if
    /// the on-disk files exceed F"), then return a streaming grouped
    /// iterator over the single logical sorted sequence.
    pub fn into_grouped(mut self) -> Result<GroupedMerge> {
        while self.runs.len() > self.factor {
            self.merge_pass(self.factor)?;
        }
        let cursor = MergeCursor::open(self.store.as_ref(), &self.runs)?;
        Ok(GroupedMerge {
            cursor,
            pending: None,
            store: Arc::clone(&self.store),
            runs: std::mem::take(&mut self.runs),
            profile: std::mem::take(&mut self.profile),
            merge_passes: self.merge_passes,
        })
    }
}

/// Heap entry of the k-way merge: the current record of one reader's
/// in-flight batch. Ordering by (key, reader index) keeps the merge stable
/// across runs; cloning is two `Arc` bumps, never a payload copy.
struct MergeHead {
    batch: SegmentBuf,
    idx: usize,
    reader: usize,
}

impl MergeHead {
    fn key(&self) -> &[u8] {
        self.batch.key(self.idx)
    }
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.reader == other.reader && self.key() == other.key()
    }
}

impl Eq for MergeHead {}

impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeHead {
    /// Reversed (key, reader) ordering so `BinaryHeap`'s max-heap pops the
    /// smallest head first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key()
            .cmp(self.key())
            .then_with(|| other.reader.cmp(&self.reader))
    }
}

/// A `(key, values)` group produced by the final merge.
pub type Group = (Vec<u8>, Vec<Vec<u8>>);

/// Streaming k-way merge over a set of sorted runs. Each reader is pulled
/// one arena batch at a time; records are served as `(batch, index)`
/// handles pointing into those arenas.
struct MergeCursor {
    readers: Vec<Box<dyn RunReader>>,
    /// Min-heap of the current head record of each non-exhausted reader.
    heap: BinaryHeap<MergeHead>,
}

impl MergeCursor {
    fn open(store: &dyn SpillStore, runs: &[RunMeta]) -> Result<Self> {
        let mut readers = Vec::with_capacity(runs.len());
        for r in runs {
            readers.push(store.open_run(r.id)?);
        }
        let mut cursor = MergeCursor {
            readers,
            heap: BinaryHeap::new(),
        };
        for i in 0..cursor.readers.len() {
            cursor.refill(i)?;
        }
        Ok(cursor)
    }

    /// Pull the next batch from `reader` (if any) and seat its first record
    /// on the heap.
    fn refill(&mut self, reader: usize) -> Result<()> {
        if let Some(batch) = self.readers[reader].read_batch(MERGE_BATCH_BYTES)? {
            self.heap.push(MergeHead {
                batch,
                idx: 0,
                reader,
            });
        }
        Ok(())
    }

    fn next_pair(&mut self) -> Result<Option<(SegmentBuf, usize)>> {
        let MergeHead { batch, idx, reader } = match self.heap.pop() {
            None => return Ok(None),
            Some(head) => head,
        };
        if idx + 1 < batch.len() {
            self.heap.push(MergeHead {
                batch: batch.clone(),
                idx: idx + 1,
                reader,
            });
        } else {
            self.refill(reader)?;
        }
        Ok(Some((batch, idx)))
    }
}

/// Iterator over `(key, values)` groups produced by the final merge.
pub struct GroupedMerge {
    cursor: MergeCursor,
    pending: Option<(SegmentBuf, usize)>,
    store: Arc<dyn SpillStore>,
    runs: Vec<RunMeta>,
    profile: Profile,
    merge_passes: u64,
}

impl GroupedMerge {
    /// Next group: the key plus all of its values, in merge order.
    /// Returns `None` after the last group. Bytes are copied out of the
    /// batch arenas only here, at group-assembly time.
    pub fn next_group(&mut self) -> Result<Option<Group>> {
        let (batch, idx) = match self.pending.take() {
            Some(head) => head,
            None => match self.cursor.next_pair()? {
                Some(head) => head,
                None => return Ok(None),
            },
        };
        let key = batch.key(idx).to_vec();
        let mut values = vec![batch.value(idx).to_vec()];
        loop {
            match self.cursor.next_pair()? {
                None => break,
                Some((b, i)) => {
                    if b.key(i) == key.as_slice() {
                        values.push(b.value(i).to_vec());
                    } else {
                        self.pending = Some((b, i));
                        break;
                    }
                }
            }
        }
        Ok(Some((key, values)))
    }

    /// Intermediate merge passes that were performed.
    pub fn merge_passes(&self) -> u64 {
        self.merge_passes
    }

    /// Merge CPU profile accumulated so far.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Delete the input runs (call after consuming all groups).
    pub fn cleanup(&mut self) -> Result<()> {
        for r in self.runs.drain(..) {
            self.store.delete_run(r.id)?;
        }
        Ok(())
    }
}

impl Drop for GroupedMerge {
    fn drop(&mut self) {
        let _ = self.cleanup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onepass_core::io::SharedMemStore;

    /// Write `pairs` (must be pre-sorted by key) as one run.
    fn write_run(store: &SharedMemStore, pairs: &[(&[u8], &[u8])]) -> RunMeta {
        let mut w = store.begin_run().unwrap();
        for (k, v) in pairs {
            w.write_record(k, v).unwrap();
        }
        w.finish().unwrap()
    }

    fn collect_groups(mut g: GroupedMerge) -> Vec<(Vec<u8>, Vec<Vec<u8>>)> {
        let mut out = Vec::new();
        while let Some(grp) = g.next_group().unwrap() {
            out.push(grp);
        }
        out
    }

    #[test]
    fn merges_two_runs_into_sorted_groups() {
        let store = SharedMemStore::new();
        let mut m = MultiPassMerger::new(Arc::new(store.clone()), 10).unwrap();
        m.add_run(write_run(&store, &[(b"a", b"1"), (b"c", b"2")]))
            .unwrap();
        m.add_run(write_run(&store, &[(b"a", b"3"), (b"b", b"4")]))
            .unwrap();
        let groups = collect_groups(m.into_grouped().unwrap());
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, b"a".to_vec());
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[1].0, b"b".to_vec());
        assert_eq!(groups[2].0, b"c".to_vec());
    }

    #[test]
    fn background_merge_triggers_at_factor() {
        let store = SharedMemStore::new();
        let mut m = MultiPassMerger::new(Arc::new(store.clone()), 3).unwrap();
        for i in 0..3u8 {
            m.add_run(write_run(&store, &[(&[i], b"v")])).unwrap();
        }
        // Three runs hit F=3: they merge into one.
        assert_eq!(m.runs().len(), 1);
        assert_eq!(m.merge_passes(), 1);
        // The merged run plus two more triggers another pass.
        for i in 10..12u8 {
            m.add_run(write_run(&store, &[(&[i], b"v")])).unwrap();
        }
        assert_eq!(m.runs().len(), 1);
        assert_eq!(m.merge_passes(), 2);
    }

    #[test]
    fn merge_io_amplification_is_accounted() {
        let store = SharedMemStore::new();
        let mut m = MultiPassMerger::new(Arc::new(store.clone()), 2).unwrap();
        let r1 = write_run(&store, &[(b"a", b"xx")]);
        let r2 = write_run(&store, &[(b"b", b"yy")]);
        let base = store.stats();
        m.add_run(r1).unwrap();
        m.add_run(r2).unwrap(); // F=2 -> immediate merge pass
        let st = store.stats();
        // The pass re-read both runs and re-wrote their contents.
        assert_eq!(st.bytes_read - base.bytes_read, r1.bytes + r2.bytes);
        assert_eq!(st.bytes_written - base.bytes_written, r1.bytes + r2.bytes);
    }

    #[test]
    fn final_merge_reduces_to_factor_first() {
        let store = SharedMemStore::new();
        // factor 4: adding 3 runs does not trigger background merges...
        let mut m = MultiPassMerger::new(Arc::new(store.clone()), 4).unwrap();
        for i in 0..3u8 {
            m.add_run(write_run(&store, &[(&[i], b"v")])).unwrap();
        }
        assert_eq!(m.runs().len(), 3);
        assert_eq!(m.merge_passes(), 0);
        // ...and the final merge streams them without an extra pass.
        let g = m.into_grouped().unwrap();
        assert_eq!(g.merge_passes(), 0);
        assert_eq!(collect_groups(g).len(), 3);
    }

    #[test]
    fn empty_merger_yields_no_groups() {
        let store = SharedMemStore::new();
        let m = MultiPassMerger::new(Arc::new(store.clone()), 5).unwrap();
        let groups = collect_groups(m.into_grouped().unwrap());
        assert!(groups.is_empty());
    }

    #[test]
    fn cleanup_deletes_input_runs() {
        let store = SharedMemStore::new();
        let mut m = MultiPassMerger::new(Arc::new(store.clone()), 10).unwrap();
        m.add_run(write_run(&store, &[(b"k", b"v")])).unwrap();
        {
            let g = m.into_grouped().unwrap();
            drop(g); // Drop impl cleans up
        }
        assert_eq!(store.live_runs(), 0);
    }

    #[test]
    fn factor_below_two_is_rejected() {
        let store: Arc<dyn SpillStore> = Arc::new(SharedMemStore::new());
        assert!(MultiPassMerger::new(store, 1).is_err());
    }

    #[test]
    fn duplicate_keys_across_many_runs_group_once() {
        let store = SharedMemStore::new();
        let mut m = MultiPassMerger::new(Arc::new(store.clone()), 3).unwrap();
        for i in 0..7u32 {
            let v = i.to_le_bytes();
            m.add_run(write_run(&store, &[(b"dup", &v), (b"z", &v)]))
                .unwrap();
        }
        let groups = collect_groups(m.into_grouped().unwrap());
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, b"dup".to_vec());
        assert_eq!(groups[0].1.len(), 7);
        assert_eq!(groups[1].1.len(), 7);
    }
}
