//! Failure-injection tests: every operator must surface spill-store
//! failures as `Err` — never panic, hang, or silently emit partial
//! results as if they were complete.

use std::sync::Arc;

use onepass_core::io::{FaultInjectStore, SharedMemStore, SpillStore};
use onepass_core::memory::MemoryBudget;
use onepass_core::Error;
use onepass_groupby::{
    CountAgg, FreqHashGrouper, GroupBy, HybridHashGrouper, IncHashGrouper, SortMergeGrouper,
    VecSink,
};

fn records(n: u32) -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..n)
        .map(|i| {
            (
                format!("key{:05}", i % 200).into_bytes(),
                format!("v{i}").into_bytes(),
            )
        })
        .collect()
}

/// Drive an operator over spilling-sized input with a store that fails
/// after `ops` operations; returns the first error (push or finish).
fn drive_with_faults(
    mk: &dyn Fn(Arc<dyn SpillStore>) -> Box<dyn GroupBy>,
    ops: u64,
) -> Result<(), Error> {
    let store: Arc<dyn SpillStore> =
        Arc::new(FaultInjectStore::new(Arc::new(SharedMemStore::new()), ops));
    let mut g = mk(store);
    let mut sink = VecSink::default();
    // Small batches so the fault budget can expire mid-stream, not just
    // at finish.
    for chunk in records(3000).chunks(64) {
        let batch =
            onepass_core::SegmentBuf::from_pairs(chunk.iter().map(|(k, v)| (&k[..], &v[..])));
        g.push_batch(&batch, &mut sink)?;
    }
    g.finish(&mut sink)?;
    Ok(())
}

type OpFactory = Box<dyn Fn(Arc<dyn SpillStore>) -> Box<dyn GroupBy>>;

fn operators() -> Vec<(&'static str, OpFactory)> {
    let budget = || MemoryBudget::new(4 * 1024); // forces spilling
    vec![
        (
            "sort-merge",
            Box::new(move |s: Arc<dyn SpillStore>| {
                Box::new(SortMergeGrouper::new(s, budget(), 3, Arc::new(CountAgg)).unwrap())
                    as Box<dyn GroupBy>
            }) as OpFactory,
        ),
        (
            "hybrid-hash",
            Box::new(move |s: Arc<dyn SpillStore>| {
                Box::new(HybridHashGrouper::new(s, budget(), 4, Arc::new(CountAgg)).unwrap())
            }),
        ),
        (
            "inc-hash",
            Box::new(move |s: Arc<dyn SpillStore>| {
                Box::new(IncHashGrouper::new(s, budget(), Arc::new(CountAgg)))
            }),
        ),
        (
            "freq-hash",
            Box::new(move |s: Arc<dyn SpillStore>| {
                Box::new(FreqHashGrouper::new(s, budget(), Arc::new(CountAgg)))
            }),
        ),
    ]
}

#[test]
fn all_operators_propagate_spill_failures() {
    for (name, mk) in operators() {
        // A handful of fault budgets hitting different phases: first
        // spill, mid-stream, and during finish.
        for ops in [0u64, 1, 5, 50, 500] {
            let result = drive_with_faults(mk.as_ref(), ops);
            assert!(
                matches!(result, Err(Error::Io(_))),
                "{name} with fault budget {ops}: expected Err(Io), got {result:?}"
            );
        }
    }
}

#[test]
fn all_operators_succeed_with_enough_budget() {
    for (name, mk) in operators() {
        let result = drive_with_faults(mk.as_ref(), u64::MAX);
        assert!(result.is_ok(), "{name} failed without faults: {result:?}");
    }
}

#[test]
fn failure_mid_job_does_not_double_emit() {
    // Even when finish fails, any output already emitted must not
    // contain duplicate finals.
    let store: Arc<dyn SpillStore> =
        Arc::new(FaultInjectStore::new(Arc::new(SharedMemStore::new()), 200));
    let mut g = FreqHashGrouper::new(store, MemoryBudget::new(4 * 1024), Arc::new(CountAgg));
    let mut sink = VecSink::default();
    for chunk in records(3000).chunks(64) {
        let batch =
            onepass_core::SegmentBuf::from_pairs(chunk.iter().map(|(k, v)| (&k[..], &v[..])));
        if g.push_batch(&batch, &mut sink).is_err() {
            break;
        }
    }
    let _ = g.finish(&mut sink);
    let mut finals: Vec<&Vec<u8>> = sink
        .emitted
        .iter()
        .filter(|(_, _, kind)| *kind == onepass_groupby::EmitKind::Final)
        .map(|(k, _, _)| k)
        .collect();
    let before = finals.len();
    finals.sort();
    finals.dedup();
    assert_eq!(
        finals.len(),
        before,
        "duplicate final emissions after failure"
    );
}
