//! Property tests: every group-by operator computes the same exact
//! grouping as a reference in-memory implementation, regardless of memory
//! budget (i.e. spilling/recursion/eviction never lose or duplicate data).

use std::collections::BTreeMap;
use std::sync::Arc;

use onepass_core::io::SharedMemStore;
use onepass_core::memory::MemoryBudget;
use onepass_groupby::{
    Aggregator, CountAgg, EmitKind, FreqHashGrouper, GroupBy, HybridHashGrouper, IncHashGrouper,
    ListAgg, SortMergeGrouper, SumAgg, VecSink,
};
use proptest::prelude::*;

type Records = Vec<(Vec<u8>, Vec<u8>)>;

fn skewed_stream() -> impl Strategy<Value = Records> {
    prop::collection::vec(
        (0u32..64, 0u64..1000).prop_map(|(k, v)| {
            // Square-down so low key ids dominate (Zipf-ish skew).
            let key = format!("k{}", k * k / 24).into_bytes();
            (key, v.to_le_bytes().to_vec())
        }),
        0..400,
    )
}

fn finals(sink: &VecSink) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut out = BTreeMap::new();
    for (k, v, kind) in &sink.emitted {
        if *kind == EmitKind::Final {
            let dup = out.insert(k.clone(), v.clone());
            assert!(dup.is_none(), "duplicate final for {k:?}");
        }
    }
    out
}

fn run(mut op: Box<dyn GroupBy>, recs: &Records) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut sink = VecSink::default();
    let batch = onepass_core::SegmentBuf::from_pairs(recs.iter().map(|(k, v)| (&k[..], &v[..])));
    op.push_batch(&batch, &mut sink).unwrap();
    op.finish(&mut sink).unwrap();
    finals(&sink)
}

fn reference(agg: &dyn Aggregator, recs: &Records) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut states: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for (k, v) in recs {
        match states.get_mut(k) {
            Some(s) => agg.update(k, s, v),
            None => {
                states.insert(k.clone(), agg.init(k, v));
            }
        }
    }
    states
        .into_iter()
        .map(|(k, s)| {
            let out = agg.finish(&k, s.clone());
            (k, out)
        })
        .collect()
}

fn all_ops(budget_bytes: usize) -> Vec<(&'static str, Box<dyn GroupBy>)> {
    let mk_budget = || MemoryBudget::new(budget_bytes);
    vec![
        (
            "sort-merge",
            Box::new(
                SortMergeGrouper::new(
                    Arc::new(SharedMemStore::new()),
                    mk_budget(),
                    4,
                    Arc::new(SumAgg),
                )
                .unwrap(),
            ) as Box<dyn GroupBy>,
        ),
        (
            "hybrid-hash",
            Box::new(
                HybridHashGrouper::new(
                    Arc::new(SharedMemStore::new()),
                    mk_budget(),
                    4,
                    Arc::new(SumAgg),
                )
                .unwrap(),
            ),
        ),
        (
            "inc-hash",
            Box::new(IncHashGrouper::new(
                Arc::new(SharedMemStore::new()),
                mk_budget(),
                Arc::new(SumAgg),
            )),
        ),
        (
            "freq-hash",
            Box::new(FreqHashGrouper::new(
                Arc::new(SharedMemStore::new()),
                mk_budget(),
                Arc::new(SumAgg),
            )),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_operators_match_reference_sum(recs in skewed_stream(), budget_kb in 1usize..24) {
        let expect = reference(&SumAgg, &recs);
        for (name, op) in all_ops(budget_kb * 256) {
            let got = run(op, &recs);
            prop_assert_eq!(&got, &expect, "{} diverged from reference", name);
        }
    }

    #[test]
    fn count_agg_multiset_preserved(recs in skewed_stream(), budget_kb in 1usize..16) {
        // With CountAgg the sum over all groups must equal the record count
        // for every operator — no record lost or double-counted.
        let n = recs.len() as u64;
        for (name, op) in [("sort-merge", Box::new(SortMergeGrouper::new(
                Arc::new(SharedMemStore::new()),
                MemoryBudget::new(budget_kb * 256), 3, Arc::new(CountAgg)).unwrap()) as Box<dyn GroupBy>),
            ("hybrid-hash", Box::new(HybridHashGrouper::new(
                Arc::new(SharedMemStore::new()),
                MemoryBudget::new(budget_kb * 256), 5, Arc::new(CountAgg)).unwrap())),
            ("inc-hash", Box::new(IncHashGrouper::new(
                Arc::new(SharedMemStore::new()),
                MemoryBudget::new(budget_kb * 256), Arc::new(CountAgg)))),
            ("freq-hash", Box::new(FreqHashGrouper::new(
                Arc::new(SharedMemStore::new()),
                MemoryBudget::new(budget_kb * 256), Arc::new(CountAgg))))] {
            let got = run(op, &recs);
            let total: u64 = got
                .values()
                .map(|v| u64::from_le_bytes(v.as_slice().try_into().unwrap()))
                .sum();
            prop_assert_eq!(total, n, "{} lost or duplicated records", name);
        }
    }

    #[test]
    fn list_agg_preserves_value_multiset(recs in skewed_stream(), budget_kb in 2usize..16) {
        // ListAgg groups must contain exactly the values pushed, as a
        // multiset per key (element order across spills is unspecified).
        let mut expect: BTreeMap<Vec<u8>, Vec<Vec<u8>>> = BTreeMap::new();
        for (k, v) in &recs {
            expect.entry(k.clone()).or_default().push(v.clone());
        }
        for e in expect.values_mut() {
            e.sort();
        }
        for (name, op) in [("sort-merge", Box::new(SortMergeGrouper::new(
                Arc::new(SharedMemStore::new()),
                MemoryBudget::new(budget_kb * 512), 3, Arc::new(ListAgg)).unwrap()) as Box<dyn GroupBy>),
            ("hybrid-hash", Box::new(HybridHashGrouper::new(
                Arc::new(SharedMemStore::new()),
                MemoryBudget::new(budget_kb * 512), 4, Arc::new(ListAgg)).unwrap())),
            ("inc-hash", Box::new(IncHashGrouper::new(
                Arc::new(SharedMemStore::new()),
                MemoryBudget::new(budget_kb * 512), Arc::new(ListAgg)))),
            ("freq-hash", Box::new(FreqHashGrouper::new(
                Arc::new(SharedMemStore::new()),
                MemoryBudget::new(budget_kb * 512), Arc::new(ListAgg))))] {
            let got = run(op, &recs);
            let got_decoded: BTreeMap<Vec<u8>, Vec<Vec<u8>>> = got
                .into_iter()
                .map(|(k, v)| {
                    let mut items = ListAgg::decode(&v);
                    items.sort();
                    (k, items)
                })
                .collect();
            prop_assert_eq!(&got_decoded, &expect, "{} corrupted a value list", name);
        }
    }
}
