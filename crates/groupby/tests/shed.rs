//! `GroupBy::shed` correctness: shedding mid-stream at arbitrary points
//! must free budget bytes AND leave final output byte-identical to an
//! unshed run — for every backend. The nasty cases are re-admission after
//! a shed (a shed key's records keep arriving), which must not produce
//! duplicate Final emissions.

use std::collections::BTreeMap;
use std::sync::Arc;

use onepass_core::io::SharedMemStore;
use onepass_core::memory::MemoryBudget;
use onepass_groupby::{
    CountAgg, EmitKind, FreqHashGrouper, GroupBy, HybridHashGrouper, IncHashGrouper,
    SortMergeGrouper, VecSink,
};

fn records(n: u32, distinct: u32) -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..n)
        .map(|i| {
            (
                format!("key{:05}", i.wrapping_mul(2_654_435_761) % distinct).into_bytes(),
                format!("v{i}").into_bytes(),
            )
        })
        .collect()
}

fn truth(recs: &[(Vec<u8>, Vec<u8>)]) -> BTreeMap<Vec<u8>, u64> {
    let mut t: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for (k, _) in recs {
        *t.entry(k.clone()).or_default() += 1;
    }
    t
}

/// Push `recs` in batches of `every` records, shedding `target` bytes at
/// each batch boundary, then finish. Asserts no duplicate finals and
/// exact counts.
fn run_with_sheds(op: &mut dyn GroupBy, recs: &[(Vec<u8>, Vec<u8>)], every: usize, target: usize) {
    let mut sink = VecSink::default();
    let mut shed_calls = 0u32;
    let mut shed_freed = 0usize;
    for chunk in recs.chunks(every) {
        let batch =
            onepass_core::SegmentBuf::from_pairs(chunk.iter().map(|(k, v)| (&k[..], &v[..])));
        op.push_batch(&batch, &mut sink).unwrap();
        shed_freed += op.shed(target).unwrap();
        shed_calls += 1;
    }
    op.finish(&mut sink).unwrap();
    assert!(shed_calls > 0);
    assert!(
        shed_freed > 0,
        "{}: repeated sheds never freed anything",
        op.name()
    );

    let mut out: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for (k, v, kind) in &sink.emitted {
        if *kind == EmitKind::Final {
            let prev = out.insert(
                k.clone(),
                u64::from_le_bytes(v.as_slice().try_into().unwrap()),
            );
            assert!(
                prev.is_none(),
                "{}: duplicate Final for key {:?} after shed",
                op.name(),
                String::from_utf8_lossy(k)
            );
        }
    }
    let want = truth(recs);
    assert_eq!(out.len(), want.len(), "{}: group count mismatch", op.name());
    for (k, c) in want {
        assert_eq!(
            out[&k],
            c,
            "{}: count mismatch for {:?}",
            op.name(),
            String::from_utf8_lossy(&k)
        );
    }
}

#[test]
fn sortmerge_shed_is_correct() {
    let store = SharedMemStore::new();
    let budget = MemoryBudget::new(1 << 16);
    let mut g =
        SortMergeGrouper::new(Arc::new(store), budget.clone(), 4, Arc::new(CountAgg)).unwrap();
    run_with_sheds(&mut g, &records(3000, 250), 500, 1 << 12);
    assert_eq!(budget.used(), 0);
}

#[test]
fn inc_hash_shed_is_correct() {
    // Ample budget: without the shed_keys re-admission gate every shed key
    // would be re-admitted and double-emitted.
    let store = SharedMemStore::new();
    let budget = MemoryBudget::new(1 << 16);
    let mut g = IncHashGrouper::new(Arc::new(store), budget.clone(), Arc::new(CountAgg));
    run_with_sheds(&mut g, &records(3000, 250), 400, 1 << 12);
    assert_eq!(budget.used(), 0);
}

#[test]
fn inc_hash_shed_under_pressure_is_correct() {
    let store = SharedMemStore::new();
    let budget = MemoryBudget::new(1800);
    let mut g = IncHashGrouper::new(Arc::new(store), budget.clone(), Arc::new(CountAgg));
    run_with_sheds(&mut g, &records(2500, 300), 300, 600);
    assert_eq!(budget.used(), 0);
}

#[test]
fn hybrid_shed_before_partition_is_correct() {
    // Budget never exhausts on its own: the shed itself forces the
    // partition, then seals bucket 0.
    let store = SharedMemStore::new();
    let budget = MemoryBudget::new(1 << 16);
    let mut g =
        HybridHashGrouper::new(Arc::new(store), budget.clone(), 4, Arc::new(CountAgg)).unwrap();
    run_with_sheds(&mut g, &records(3000, 250), 700, 1 << 14);
    assert_eq!(budget.used(), 0);
}

#[test]
fn hybrid_shed_after_partition_is_correct() {
    // Tight budget: the operator partitions by itself first, later sheds
    // evict already-resident bucket-0 states into run 0.
    let store = SharedMemStore::new();
    let budget = MemoryBudget::new(2000);
    let mut g =
        HybridHashGrouper::new(Arc::new(store), budget.clone(), 4, Arc::new(CountAgg)).unwrap();
    run_with_sheds(&mut g, &records(2500, 400), 300, 800);
    assert_eq!(budget.used(), 0);
}

#[test]
fn freq_hash_shed_is_correct() {
    let store = SharedMemStore::new();
    let budget = MemoryBudget::new(1 << 14);
    let mut g = FreqHashGrouper::new(Arc::new(store), budget.clone(), Arc::new(CountAgg));
    run_with_sheds(&mut g, &records(4000, 500), 600, 1 << 12);
    assert_eq!(budget.used(), 0);
}

#[test]
fn shed_with_no_state_frees_nothing() {
    let store = SharedMemStore::new();
    let mut g = IncHashGrouper::new(
        Arc::new(store),
        MemoryBudget::new(1 << 16),
        Arc::new(CountAgg),
    );
    assert_eq!(g.shed(4096).unwrap(), 0);
}
